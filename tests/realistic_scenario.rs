//! Capstone scenario: every substrate at once — activity-driven workload
//! (listening sessions fanned out through the social graph), diurnal
//! connectivity (overnight radio silence), personalized presentation
//! utility, and a learned content-utility model — RichNote vs UTIL.

use richnote::forest::dataset::Dataset;
use richnote::forest::forest::{RandomForest, RandomForestConfig};
use richnote::sim::simulator::{
    forest_utility, NetworkKind, PolicyKind, PopulationSim, SimulationConfig,
};
use richnote::trace::activity::{ActivityConfig, ActivityTraceGenerator};
use richnote::trace::generator::classifier_rows;
use std::sync::Arc;

#[test]
fn full_stack_scenario_preserves_the_headline_claims() {
    // Activity-driven workload over 3 days.
    let (trace, activity) = ActivityTraceGenerator::new(ActivityConfig {
        seed: 99,
        n_users: 120,
        days: 3,
        ..ActivityConfig::default()
    })
    .generate();
    assert!(!activity.is_empty());
    let trace = Arc::new(trace);

    // Learned utility model from a disjoint activity trace.
    let (train, _) = ActivityTraceGenerator::new(ActivityConfig {
        seed: 100,
        n_users: 120,
        days: 3,
        ..ActivityConfig::default()
    })
    .generate();
    let (rows, labels) = classifier_rows(&train.items);
    let data = Dataset::new(rows, labels).expect("labeled rows");
    let forest = Arc::new(RandomForest::fit(&data, &RandomForestConfig::default(), 1));

    let users = trace.top_users(30);
    // A tight budget: the regime the paper designs for, where adaptive
    // presentation selection clearly dominates fixed levels.
    let run = |policy: PolicyKind| {
        let cfg = SimulationConfig {
            policy,
            network: NetworkKind::Diurnal,
            rounds: 72,
            taste_spread: 0.3,
            ..SimulationConfig::weekly(policy, 3)
        };
        let sim = PopulationSim::new(trace.clone(), forest_utility(forest.clone()), cfg);
        sim.run(&users).0
    };

    let richnote = run(PolicyKind::richnote_default());
    let util = run(PolicyKind::Util { level: 3 });

    // Headline claims survive the realistic stack:
    // 1. near-complete delivery despite overnight gaps;
    assert!(richnote.delivery_ratio() > 0.9, "RichNote delivery {}", richnote.delivery_ratio());
    // 2. more utility than the fixed-level baseline;
    assert!(
        richnote.total_utility > util.total_utility,
        "RichNote {} vs UTIL {}",
        richnote.total_utility,
        util.total_utility
    );
    // 3. lower queuing delay;
    assert!(
        richnote.mean_delay_secs() < util.mean_delay_secs(),
        "delay {} vs {}",
        richnote.mean_delay_secs(),
        util.mean_delay_secs()
    );
    // 4. higher recall.
    assert!(richnote.recall() > util.recall(), "recall {} vs {}", richnote.recall(), util.recall());
}

#[test]
fn personalization_changes_outcomes_only_in_aggregate_utility_scale() {
    let (trace, _) = ActivityTraceGenerator::new(ActivityConfig {
        seed: 7,
        n_users: 80,
        days: 2,
        ..ActivityConfig::default()
    })
    .generate();
    let trace = Arc::new(trace);
    let users = trace.top_users(20);
    let run = |spread: f64| {
        let cfg = SimulationConfig {
            rounds: 48,
            taste_spread: spread,
            ..SimulationConfig::weekly(PolicyKind::richnote_default(), 20)
        };
        let sim =
            PopulationSim::new(trace.clone(), richnote::sim::simulator::constant_utility(0.6), cfg);
        sim.run(&users).0
    };
    let uniform = run(0.0);
    let diverse = run(0.5);
    // Delivery is unaffected (personalization reshapes utility, not
    // feasibility)...
    assert_eq!(uniform.delivered, diverse.delivered);
    // ...but realized utility shifts.
    assert_ne!(uniform.total_utility, diverse.total_utility);
}
