//! Property-based tests of the round scheduling policies: budget safety,
//! conservation (every enqueued item is delivered at most once), delay
//! sanity and utility ordering under randomized workloads.

use proptest::prelude::*;
use richnote::core::content::{ContentFeatures, ContentItem, ContentKind, Interaction};
use richnote::core::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
use richnote::core::presentation::AudioPresentationSpec;
use richnote::core::scheduler::{
    FifoScheduler, LinearCost, NotificationScheduler, QueuedNotification, RichNoteScheduler,
    RoundContext, UtilScheduler,
};
use std::collections::HashSet;

const COST: LinearCost = LinearCost { fixed: 3.5, per_byte: 2.5e-5 };

fn notification(id: u64, uc: f64, at: f64) -> QueuedNotification {
    QueuedNotification {
        item: ContentItem {
            id: ContentId::new(id),
            recipient: UserId::new(1),
            sender: None,
            kind: ContentKind::FriendFeed,
            track: TrackId::new(id),
            album: AlbumId::new(id),
            artist: ArtistId::new(id),
            arrival: at,
            track_secs: 276.0,
            features: ContentFeatures::default(),
            interaction: Interaction::NoActivity,
        },
        ladder: std::sync::Arc::new(AudioPresentationSpec::paper_default().ladder()),
        content_utility: uc,
        enqueued_at: at,
    }
}

/// A randomized workload: per-round batches of (utility) arrivals.
fn workload() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.01f64..1.0, 0..6), 1..20)
}

fn run_policy(
    scheduler: &mut dyn NotificationScheduler,
    rounds: &[Vec<f64>],
    grant: u64,
) -> Vec<richnote::core::scheduler::DeliveredNotification> {
    let mut out = Vec::new();
    let mut next_id = 0u64;
    for (r, batch) in rounds.iter().enumerate() {
        let now = r as f64 * 3_600.0;
        for &uc in batch {
            scheduler.enqueue(notification(next_id, uc, now));
            next_id += 1;
        }
        let ctx = RoundContext::builder(&COST)
            .round(r as u64)
            .now(now + 3_600.0)
            .link_capacity(900_000_000)
            .data_grant(grant)
            .energy_grant(3_000.0)
            .build();
        out.extend(scheduler.run_round(&ctx));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn policies_never_exceed_cumulative_budget(
        rounds in workload(),
        grant in 1_000u64..2_000_000,
    ) {
        let total_grant = grant * rounds.len() as u64;
        for policy in 0..3usize {
            let mut s: Box<dyn NotificationScheduler> = match policy {
                0 => Box::new(RichNoteScheduler::builder().build()),
                1 => Box::new(FifoScheduler::builder().fixed_level(3).build()),
                _ => Box::new(UtilScheduler::builder().fixed_level(3).build()),
            };
            let delivered = run_policy(&mut *s, &rounds, grant);
            let bytes: u64 = delivered.iter().map(|d| d.size).sum();
            prop_assert!(
                bytes <= total_grant,
                "{}: {bytes} > {total_grant}",
                s.name()
            );
        }
    }

    #[test]
    fn no_item_is_delivered_twice(rounds in workload()) {
        let mut s = RichNoteScheduler::builder().build();
        let total: usize = rounds.iter().map(Vec::len).sum();
        let delivered = run_policy(&mut s, &rounds, 500_000);
        let mut seen = HashSet::new();
        for d in &delivered {
            prop_assert!(seen.insert(d.content), "duplicate delivery of {}", d.content);
        }
        prop_assert!(delivered.len() + s.backlog() == total);
    }

    #[test]
    fn delays_are_never_negative(rounds in workload(), grant in 10_000u64..1_000_000) {
        for policy in 0..3usize {
            let mut s: Box<dyn NotificationScheduler> = match policy {
                0 => Box::new(RichNoteScheduler::builder().build()),
                1 => Box::new(FifoScheduler::builder().fixed_level(2).build()),
                _ => Box::new(UtilScheduler::builder().fixed_level(2).build()),
            };
            let delivered = run_policy(&mut *s, &rounds, grant);
            for d in &delivered {
                prop_assert!(d.queuing_delay() >= 0.0, "{}: {d:?}", s.name());
            }
        }
    }

    #[test]
    fn richnote_round_output_is_utility_sorted(batch in prop::collection::vec(0.01f64..1.0, 1..8)) {
        let mut s = RichNoteScheduler::builder().build();
        for (i, &uc) in batch.iter().enumerate() {
            s.enqueue(notification(i as u64, uc, 0.0));
        }
        let ctx = RoundContext::builder(&COST)
            .now(3_600.0)
            .link_capacity(u64::MAX >> 8)
            .data_grant(10_000_000)
            .energy_grant(3_000.0)
            .build();
        let delivered = s.run_round(&ctx);
        for w in delivered.windows(2) {
            prop_assert!(w[0].utility >= w[1].utility);
        }
    }

    #[test]
    fn offline_rounds_deliver_nothing_and_bank_budget(
        online_pattern in prop::collection::vec(any::<bool>(), 2..12),
    ) {
        let mut s = RichNoteScheduler::builder().build();
        s.enqueue(notification(0, 0.9, 0.0));
        let mut banked = 0u64;
        let grant = 50_000u64;
        for (r, &online) in online_pattern.iter().enumerate() {
            let ctx = RoundContext::builder(&COST)
                .round(r as u64)
                .now((r + 1) as f64 * 3_600.0)
                .online(online)
                .link_capacity(900_000_000)
                .data_grant(grant)
                .energy_grant(3_000.0)
                .build();
            let delivered = s.run_round(&ctx);
            banked += grant;
            if !online {
                prop_assert!(delivered.is_empty());
            } else if !delivered.is_empty() {
                let bytes: u64 = delivered.iter().map(|d| d.size).sum();
                prop_assert!(bytes <= banked);
                banked -= bytes;
            }
        }
    }
}
