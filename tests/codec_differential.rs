//! Differential property tests for the two negotiated wire codecs.
//!
//! The JSON codec is the compatibility floor and the binary codec is the
//! production default, so the two must be observationally identical: any
//! `Request` or `Response` a client can legally send must decode to the
//! same value through either codec. These properties drive randomly
//! generated frames through both paths and require equality, then attack
//! the binary framing with truncations and single-byte garbles and
//! require every failure to surface as the typed `ServerError::Frame`
//! (which the daemon answers with `ErrorCode::BadFrame`) — never a panic,
//! never a hang, never a silent misparse of a short read.

use proptest::prelude::*;
use richnote_core::content::{ContentFeatures, ContentItem, ContentKind, Interaction, SocialTie};
use richnote_core::ids::{AlbumId, ArtistId, ContentId, PlaylistId, TrackId, UserId};
use richnote_pubsub::Topic;
use richnote_server::wire::{Delivery, ErrorCode, Request, Response};
use richnote_server::{codec_for, CodecKind, ServerError};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_interaction() -> impl Strategy<Value = Interaction> {
    (0u8..3, any::<f64>()).prop_map(|(tag, at)| match tag {
        0 => Interaction::Clicked { at },
        1 => Interaction::Hovered,
        _ => Interaction::NoActivity,
    })
}

fn arb_features() -> impl Strategy<Value = ContentFeatures> {
    (
        (0u8..4).prop_map(|t| {
            [SocialTie::None, SocialTie::Follows, SocialTie::Mutual, SocialTie::FavoriteArtist]
                [t as usize]
        }),
        (any::<f64>(), any::<f64>(), any::<f64>()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(tie, (track_popularity, album_popularity, artist_popularity), (weekend, night))| {
                ContentFeatures {
                    tie,
                    track_popularity,
                    album_popularity,
                    artist_popularity,
                    weekend,
                    night,
                }
            },
        )
}

fn arb_item() -> impl Strategy<Value = ContentItem> {
    (
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>(), 0u8..3),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<f64>(), any::<f64>()),
        arb_features(),
        arb_interaction(),
    )
        .prop_map(
            |(
                (id, recipient, has_sender, sender, kind),
                (track, album, artist),
                (arrival, track_secs),
                features,
                interaction,
            )| ContentItem {
                id: ContentId::new(id),
                recipient: UserId::new(recipient),
                sender: has_sender.then(|| UserId::new(sender)),
                kind: ContentKind::ALL[kind as usize],
                track: TrackId::new(track),
                album: AlbumId::new(album),
                artist: ArtistId::new(artist),
                arrival,
                track_secs,
                features,
                interaction,
            },
        )
}

fn arb_topic() -> impl Strategy<Value = Topic> {
    (0u8..3, any::<u64>()).prop_map(|(tag, id)| match tag {
        0 => Topic::FriendFeed(UserId::new(id)),
        1 => Topic::ArtistPage(ArtistId::new(id)),
        _ => Topic::Playlist(PlaylistId::new(id)),
    })
}

/// Short strings with code points from across the BMP (excluding
/// surrogates), exercising the UTF-8 length accounting of both codecs.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(1u32..0xD800, 0..12)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

fn arb_codec_name() -> impl Strategy<Value = Option<String>> {
    (0u8..3).prop_map(|tag| match tag {
        0 => None,
        1 => Some("json".to_string()),
        _ => Some("binary".to_string()),
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0usize..13).prop_flat_map(|variant| match variant {
        0 => (any::<u32>(), any::<u64>(), arb_codec_name())
            .prop_map(|(proto, session, codec)| Request::Hello { proto, session, codec })
            .boxed(),
        1 => (any::<u64>(), arb_topic())
            .prop_map(|(user, topic)| Request::Subscribe { user: UserId::new(user), topic })
            .boxed(),
        2 => (any::<u64>(), arb_topic(), arb_item(), (any::<bool>(), any::<u64>()))
            .prop_map(|(seq, topic, item, (traced, id))| Request::Publish {
                seq,
                topic,
                item,
                trace: traced.then_some(id),
            })
            .boxed(),
        3 => (0u32..u32::MAX).prop_map(|rounds| Request::Tick { rounds }).boxed(),
        4 => (0u32..u32::MAX).prop_map(|rounds| Request::TickReport { rounds }).boxed(),
        5 => Just(Request::Metrics).boxed(),
        6 => Just(Request::Stats).boxed(),
        7 => Just(Request::Health).boxed(),
        8 => Just(Request::TraceDump).boxed(),
        9 => Just(Request::FlightDump).boxed(),
        10 => Just(Request::Checkpoint).boxed(),
        11 => Just(Request::Drain).boxed(),
        _ => Just(Request::Shutdown).boxed(),
    })
}

fn arb_delivery() -> impl Strategy<Value = Delivery> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(
        |(round, user, content, level)| Delivery {
            round,
            user: UserId::new(user),
            content: ContentId::new(content),
            level,
        },
    )
}

/// Every "hot" response — the kinds the binary codec encodes natively.
/// The cold diagnostic payloads (Metrics, StatsSnapshot, Health,
/// TraceDump, FlightDump) ride a JSON escape hatch that is covered by
/// the codec's unit tests.
fn arb_hot_response() -> impl Strategy<Value = Response> {
    const CODES: [ErrorCode; 6] = [
        ErrorCode::ProtoMismatch,
        ErrorCode::Draining,
        ErrorCode::BadFrame,
        ErrorCode::HandshakeRequired,
        ErrorCode::CheckpointFailed,
        ErrorCode::Internal,
    ];
    (0usize..9).prop_flat_map(move |variant| match variant {
        0 => (any::<u32>(), any::<usize>(), any::<u64>(), arb_codec_name())
            .prop_map(|(proto, shards, resume_seq, codec)| Response::Hello {
                proto,
                shards,
                resume_seq,
                codec,
            })
            .boxed(),
        1 => Just(Response::Subscribed).boxed(),
        2 => any::<u64>().prop_map(|seq| Response::PubAck { seq }).boxed(),
        3 => (any::<u64>(), any::<u64>())
            .prop_map(|(rounds, selected)| Response::Ticked { rounds, selected })
            .boxed(),
        4 => (any::<u64>(), prop::collection::vec(arb_delivery(), 0..6))
            .prop_map(|(rounds, deliveries)| Response::TickReport { rounds, deliveries })
            .boxed(),
        5 => (any::<u64>(), any::<u64>())
            .prop_map(|(users, round)| Response::Checkpointed { users, round })
            .boxed(),
        6 => (any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(rounds, users, checkpointed)| Response::Drained {
                rounds,
                users,
                checkpointed,
            })
            .boxed(),
        7 => Just(Response::ShuttingDown).boxed(),
        _ => (0usize..6, arb_string())
            .prop_map(move |(code, message)| Response::Error { code: CODES[code], message })
            .boxed(),
    })
}

// ---------------------------------------------------------------------------
// Round-trip helpers
// ---------------------------------------------------------------------------

fn request_roundtrip(kind: CodecKind, req: &Request) -> Request {
    let mut codec = codec_for(kind);
    let mut buf = Vec::new();
    codec.write_request(&mut buf, req).expect("encode request");
    let mut cursor: &[u8] = &buf;
    let back =
        codec.read_request(&mut cursor).expect("decode request").expect("a frame was written");
    assert!(cursor.is_empty(), "{kind} codec left {} trailing byte(s)", cursor.len());
    back
}

fn response_roundtrip(kind: CodecKind, resp: &Response) -> Response {
    let mut codec = codec_for(kind);
    let mut buf = Vec::new();
    codec.write_response(&mut buf, resp).expect("encode response");
    let mut cursor: &[u8] = &buf;
    let back =
        codec.read_response(&mut cursor).expect("decode response").expect("a frame was written");
    assert!(cursor.is_empty(), "{kind} codec left {} trailing byte(s)", cursor.len());
    back
}

fn binary_request_frame(req: &Request) -> Vec<u8> {
    let mut codec = codec_for(CodecKind::Binary);
    let mut buf = Vec::new();
    codec.write_request(&mut buf, req).expect("encode request");
    buf
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every request decodes to the same value through either codec.
    #[test]
    fn requests_roundtrip_identically_through_both_codecs(req in arb_request()) {
        let via_json = request_roundtrip(CodecKind::Json, &req);
        let via_binary = request_roundtrip(CodecKind::Binary, &req);
        prop_assert_eq!(&via_json, &req);
        prop_assert_eq!(&via_binary, &req);
        prop_assert_eq!(via_json, via_binary);
    }

    /// Every hot response decodes to the same value through either codec.
    #[test]
    fn responses_roundtrip_identically_through_both_codecs(resp in arb_hot_response()) {
        let via_json = response_roundtrip(CodecKind::Json, &resp);
        let via_binary = response_roundtrip(CodecKind::Binary, &resp);
        prop_assert_eq!(&via_json, &resp);
        prop_assert_eq!(&via_binary, &resp);
        prop_assert_eq!(via_json, via_binary);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A binary frame cut short at *every* possible point is a typed
    /// frame error — except the empty stream, which is a clean EOF.
    #[test]
    fn every_truncation_of_a_binary_frame_is_a_typed_frame_error(req in arb_request()) {
        let frame = binary_request_frame(&req);
        let mut codec = codec_for(CodecKind::Binary);
        for cut in 0..frame.len() {
            let mut cursor = &frame[..cut];
            let got = codec.read_request(&mut cursor);
            if cut == 0 {
                prop_assert!(
                    matches!(got, Ok(None)),
                    "empty stream must be clean EOF, got {got:?}"
                );
            } else {
                prop_assert!(
                    matches!(got, Err(ServerError::Frame(_))),
                    "truncation at {cut}/{} must be a Frame error, got {got:?}",
                    frame.len()
                );
            }
        }
    }

    /// Garbling any single byte of a binary frame never panics and never
    /// produces an error outside the typed `Frame` class: the decoder
    /// either still reads *some* frame or reports a bad one.
    #[test]
    fn garbled_binary_frames_fail_closed(
        req in arb_request(),
        pos in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut frame = binary_request_frame(&req);
        let idx = pos % frame.len();
        frame[idx] ^= mask;
        let mut codec = codec_for(CodecKind::Binary);
        let mut cursor: &[u8] = &frame;
        match codec.read_request(&mut cursor) {
            Ok(_) => {}
            Err(ServerError::Frame(_)) => {}
            Err(other) => prop_assert!(
                false,
                "garble at {idx} leaked a non-Frame error: {other:?}"
            ),
        }
    }
}

/// A deterministic corpus of malformed binary frames, each of which must
/// map to the typed `Frame` error the daemon reports as `BadFrame`.
#[test]
fn malformed_binary_corpus_yields_typed_frame_errors() {
    let corpus: &[(&str, Vec<u8>)] = &[
        ("zero-length frame (no tag byte)", vec![0x00]),
        ("unknown request tag", vec![0x01, 0xEE]),
        ("truncated varint length", vec![0x80]),
        ("varint length overflow", vec![0xFF; 11]),
        ("length past MAX_FRAME_BYTES", vec![0xFF, 0xFF, 0xFF, 0xFF, 0x7F]),
        ("tick without its rounds field", vec![0x01, 0x03]),
        ("publish tag with empty body", vec![0x01, 0x02]),
        ("trailing garbage after shutdown", vec![0x03, 0x0C, 0x00, 0x00]),
    ];
    for (label, bytes) in corpus {
        let mut codec = codec_for(CodecKind::Binary);
        let mut cursor: &[u8] = bytes;
        let got = codec.read_request(&mut cursor);
        assert!(
            matches!(got, Err(ServerError::Frame(_))),
            "{label}: expected a typed Frame error, got {got:?}"
        );
    }
}
