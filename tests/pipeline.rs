//! End-to-end pipeline integration: trace generation → classifier training
//! → scheduling → simulation metrics, across every crate in the workspace.

use richnote::forest::cv::cross_validate;
use richnote::forest::dataset::Dataset;
use richnote::forest::forest::{RandomForest, RandomForestConfig};
use richnote::sim::experiments::{EnvConfig, ExperimentEnv};
use richnote::sim::simulator::{forest_utility, PolicyKind, PopulationSim, SimulationConfig};
use richnote::trace::generator::{classifier_rows, TraceConfig, TraceGenerator};
use std::sync::Arc;

fn small_env() -> ExperimentEnv {
    ExperimentEnv::build(EnvConfig::test_small())
}

#[test]
fn trace_to_classifier_to_scheduler_pipeline() {
    // 1. Generate a trace.
    let trace = TraceGenerator::new(TraceConfig {
        seed: 77,
        n_users: 100,
        days: 3,
        mean_notifications_per_user_day: 20.0,
        ..TraceConfig::default()
    })
    .generate();
    assert!(trace.items.len() > 2_000, "trace too small: {}", trace.items.len());

    // 2. Train the classifier on it.
    let (rows, labels) = classifier_rows(&trace.items);
    let data = Dataset::new(rows, labels).expect("labeled rows");
    let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 1);

    // 3. Simulate a different trace with the trained model.
    let eval = Arc::new(
        TraceGenerator::new(TraceConfig {
            seed: 78,
            n_users: 100,
            days: 3,
            mean_notifications_per_user_day: 20.0,
            ..TraceConfig::default()
        })
        .generate(),
    );
    let users = eval.top_users(20);
    let sim = PopulationSim::new(
        eval.clone(),
        forest_utility(Arc::new(forest)),
        SimulationConfig {
            rounds: 72,
            ..SimulationConfig::weekly(PolicyKind::richnote_default(), 20)
        },
    );
    let (agg, per_user) = sim.run(&users);

    // 4. The pipeline produces sane metrics.
    assert_eq!(per_user.len(), 20);
    assert!(agg.delivery_ratio() > 0.9, "delivery {}", agg.delivery_ratio());
    assert!(agg.total_utility > 0.0);
    assert!(agg.precision() > 0.0 && agg.precision() <= 1.0);
    assert!(agg.recall() > 0.0 && agg.recall() <= 1.0);
    assert!(agg.energy_joules > 0.0);
}

#[test]
fn classifier_quality_transfers_across_traces() {
    // Train on one seed, five-fold CV on another: quality must stay in a
    // plausible band (the feature→click mapping is seed-independent).
    let train = TraceGenerator::new(TraceConfig {
        seed: 100,
        n_users: 150,
        days: 4,
        ..TraceConfig::default()
    })
    .generate();
    let (rows, labels) = classifier_rows(&train.items);
    let data = Dataset::new(rows, labels).unwrap();
    let cv = cross_validate(&data, &RandomForestConfig::default(), 5, 9);
    assert!(cv.pooled.accuracy > 0.55, "accuracy {}", cv.pooled.accuracy);
    assert!(cv.pooled.precision > 0.55, "precision {}", cv.pooled.precision);
    // And not implausibly perfect — the taste noise must bite.
    assert!(cv.pooled.accuracy < 0.9, "accuracy {} too high", cv.pooled.accuracy);
}

#[test]
fn richnote_dominates_baselines_in_fixed_scenario() {
    let env = small_env();
    let budget = 10;
    let mut results = Vec::new();
    for policy in [
        PolicyKind::richnote_default(),
        PolicyKind::Fifo { level: 2 },
        PolicyKind::Fifo { level: 3 },
        PolicyKind::Util { level: 2 },
        PolicyKind::Util { level: 3 },
    ] {
        let sim = PopulationSim::new(
            env.trace.clone(),
            env.utility(),
            SimulationConfig {
                rounds: env.cfg.days * 24,
                ..SimulationConfig::weekly(policy, budget)
            },
        );
        let (agg, _) = sim.run(&env.users);
        results.push((policy.name(), agg));
    }

    let richnote = &results[0].1;
    for (name, agg) in &results[1..] {
        assert!(
            richnote.total_utility > agg.total_utility,
            "RichNote {} must beat {name} {}",
            richnote.total_utility,
            agg.total_utility
        );
        assert!(
            richnote.delivery_ratio() >= agg.delivery_ratio(),
            "RichNote delivery {} vs {name} {}",
            richnote.delivery_ratio(),
            agg.delivery_ratio()
        );
        assert!(
            richnote.mean_delay_secs() <= agg.mean_delay_secs(),
            "RichNote delay {} vs {name} {}",
            richnote.mean_delay_secs(),
            agg.mean_delay_secs()
        );
    }
}

#[test]
fn delivered_bytes_never_exceed_budget() {
    let env = small_env();
    for budget_mb in [1u64, 5, 20] {
        for policy in [
            PolicyKind::richnote_default(),
            PolicyKind::Fifo { level: 3 },
            PolicyKind::Util { level: 3 },
        ] {
            let rounds = env.cfg.days * 24;
            let sim = PopulationSim::new(
                env.trace.clone(),
                env.utility(),
                SimulationConfig { rounds, ..SimulationConfig::weekly(policy, budget_mb) },
            );
            let (_, per_user) = sim.run(&env.users);
            let theta = richnote::core::paper::theta_bytes_per_round(budget_mb);
            let cap = theta * rounds;
            for m in &per_user {
                assert!(
                    m.bytes_delivered <= cap,
                    "{}: user {} delivered {} > cap {}",
                    policy.name(),
                    m.user,
                    m.bytes_delivered,
                    cap
                );
            }
        }
    }
}

#[test]
fn oracle_utility_concentrates_deliveries_on_clicked_items() {
    let env = small_env();
    let rounds = env.cfg.days * 24;
    let mk = |utility| {
        let sim = PopulationSim::new(
            env.trace.clone(),
            utility,
            SimulationConfig {
                rounds,
                ..SimulationConfig::weekly(PolicyKind::Util { level: 2 }, 3)
            },
        );
        sim.run(&env.users).0
    };
    let forest = mk(env.utility());
    let oracle = mk(richnote::sim::simulator::oracle_utility());
    // Under a tight budget, UTIL driven by the oracle spends every byte on
    // ground-truth-clicked items, so the clicked share of delivered utility
    // is 100%; the learned model must sit strictly between that ceiling and
    // random selection.
    let share = |m: &richnote::sim::metrics::AggregateMetrics| {
        if m.total_utility == 0.0 {
            0.0
        } else {
            m.clicked_utility / m.total_utility
        }
    };
    assert!((share(&oracle) - 1.0).abs() < 1e-9, "oracle share {}", share(&oracle));
    assert!(
        share(&forest) < share(&oracle),
        "forest share {} must be below the oracle ceiling",
        share(&forest)
    );
    assert!(share(&forest) > 0.2, "forest share {} too low", share(&forest));
}
