//! JSON round-trips of the data structures the harness persists: traces,
//! configurations, metrics and experiment reports.

use richnote::core::content::{ContentFeatures, ContentItem, ContentKind, Interaction};
use richnote::core::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
use richnote::core::presentation::AudioPresentationSpec;
use richnote::sim::metrics::{AggregateMetrics, UserMetrics};
use richnote::sim::simulator::{NetworkKind, PolicyKind, SimulationConfig};
use richnote::trace::generator::{TraceConfig, TraceGenerator};

#[test]
fn content_item_round_trips() {
    let item = ContentItem {
        id: ContentId::new(5),
        recipient: UserId::new(1),
        sender: Some(UserId::new(2)),
        kind: ContentKind::AlbumRelease,
        track: TrackId::new(3),
        album: AlbumId::new(4),
        artist: ArtistId::new(5),
        arrival: 123.5,
        track_secs: 276.0,
        features: ContentFeatures::default(),
        interaction: Interaction::Clicked { at: 456.0 },
    };
    let json = serde_json::to_string(&item).unwrap();
    let back: ContentItem = serde_json::from_str(&json).unwrap();
    assert_eq!(back, item);
}

#[test]
fn trace_round_trips() {
    // Float formatting may lose the last ULP in this serde_json build, so
    // exact struct equality is too strict for a full trace; instead check
    // (a) JSON idempotence and (b) exact equality of all discrete fields.
    let trace = TraceGenerator::new(TraceConfig::small(3)).generate();
    let json = serde_json::to_string(&trace).unwrap();
    let back: richnote::trace::generator::Trace = serde_json::from_str(&json).unwrap();
    // After one (possibly ULP-lossy) parse, further cycles are a fixpoint.
    let json2 = serde_json::to_string(&back).unwrap();
    let back2: richnote::trace::generator::Trace = serde_json::from_str(&json2).unwrap();
    assert_eq!(
        json2,
        serde_json::to_string(&back2).unwrap(),
        "parse/serialize must reach a fixpoint"
    );

    assert_eq!(back.items.len(), trace.items.len());
    assert_eq!(back.graph, trace.graph);
    for (a, b) in trace.items.iter().zip(&back.items) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.recipient, b.recipient);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.features.tie, b.features.tie);
        assert_eq!(a.interaction.is_click(), b.interaction.is_click());
        assert!((a.arrival - b.arrival).abs() < 1e-9);
    }
}

#[test]
fn simulation_config_round_trips() {
    let cfg = SimulationConfig::weekly(PolicyKind::richnote_default(), 30);
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: SimulationConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);

    let cfg2 = SimulationConfig {
        policy: PolicyKind::Util { level: 4 },
        network: NetworkKind::Markov,
        ..SimulationConfig::default()
    };
    let back2: SimulationConfig =
        serde_json::from_str(&serde_json::to_string(&cfg2).unwrap()).unwrap();
    assert_eq!(back2, cfg2);
}

#[test]
fn metrics_round_trip() {
    let mut m = UserMetrics::new(UserId::new(9));
    m.arrived = 5;
    m.delivered = 3;
    m.total_utility = 1.25;
    m.level_histogram[2] = 3;
    let agg = AggregateMetrics::from_users(&[m.clone()]);

    let back_user: UserMetrics = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(back_user, m);
    let back_agg: AggregateMetrics =
        serde_json::from_str(&serde_json::to_string(&agg).unwrap()).unwrap();
    assert_eq!(back_agg, agg);
}

#[test]
fn presentation_spec_round_trips() {
    let spec = AudioPresentationSpec::paper_default();
    let back: AudioPresentationSpec =
        serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.ladder(), spec.ladder());
}

#[test]
fn experiment_reports_serialize() {
    // The fig2 reports are pure data; ensure they serialize cleanly so the
    // repro harness's --json flag always works.
    let r2a = richnote::sim::experiments::fig2::run_fig2a();
    let json = richnote::sim::report::to_json(&r2a);
    assert!(json.contains("useful"));

    let r2b = richnote::sim::experiments::fig2::run_fig2b(5, 100);
    let json = richnote::sim::report::to_json(&r2b);
    assert!(json.contains("log_sse"));
}
