//! Differential property test between the two greedy MCKP solvers.
//!
//! `mckp::select_greedy_with` (single data constraint, the production path
//! after the Lyapunov relaxation moves energy into the objective) and
//! `mckp2::select_greedy2` (hard two-constraint formulation of Eq. 2) must
//! coincide when the energy budget is slack: with `E → ∞` the composite
//! gradient `ΔU / (Δs/B + Δρ/E)` degenerates to `B·ΔU/Δs`, a positive
//! rescaling of the single-constraint gradient, and both solvers break
//! gradient ties on item index — so the *selections themselves* must
//! match, not just the objective values.

use proptest::prelude::*;
use richnote::core::mckp::{select_greedy_with, GreedyOptions, MckpItem};
use richnote::core::mckp2::{select_greedy2, EnergyProfile};

/// Strategy: a small MCKP item with strictly increasing sizes and
/// monotone utilities.
fn mckp_item(id: usize) -> impl Strategy<Value = MckpItem> {
    (1usize..=4, 1u64..25, 0.01f64..1.0).prop_map(move |(levels, step, base)| {
        let mut size = 0u64;
        let mut util = 0.0f64;
        let pairs: Vec<(u64, f64)> = (0..levels)
            .map(|l| {
                size += step + l as u64;
                util += base / (l + 1) as f64;
                (size, util)
            })
            .collect();
        MckpItem::new(id, pairs)
    })
}

fn mckp_items() -> impl Strategy<Value = Vec<MckpItem>> {
    prop::collection::vec(0usize..1, 1..8).prop_flat_map(|slots| {
        slots.into_iter().enumerate().map(|(i, _)| mckp_item(i)).collect::<Vec<_>>()
    })
}

/// A linear energy profile aligned with an item's levels.
fn energy_profile(item: &MckpItem, joules_per_byte: f64) -> EnergyProfile {
    EnergyProfile::new(item.levels().iter().map(|&(s, _)| s as f64 * joules_per_byte).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn two_constraint_greedy_degenerates_to_single_constraint(
        items in mckp_items(),
        budget in 0u64..250,
    ) {
        // Slack energy: orders of magnitude above what any selection can
        // possibly spend, so only the data budget can bind.
        let energy: Vec<EnergyProfile> =
            items.iter().map(|it| energy_profile(it, 1e-3)).collect();
        let one = select_greedy_with(
            &items,
            budget,
            GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
        );
        let two = select_greedy2(&items, &energy, budget, 1e12);

        prop_assert_eq!(&two.levels, &one.levels);
        prop_assert_eq!(two.total_size, one.total_size);
        prop_assert!((two.total_utility - one.total_utility).abs() <= 1e-9);
        prop_assert!(two.total_size <= budget);
    }

    #[test]
    fn tight_energy_budget_only_shrinks_the_selection(
        items in mckp_items(),
        budget in 0u64..250,
        energy_budget in 0.0f64..0.5,
    ) {
        let energy: Vec<EnergyProfile> =
            items.iter().map(|it| energy_profile(it, 1e-2)).collect();
        let slack = select_greedy2(&items, &energy, budget, 1e12);
        let tight = select_greedy2(&items, &energy, budget, energy_budget);

        // The hard energy constraint can only remove value, never add it.
        prop_assert!(tight.total_utility <= slack.total_utility + 1e-9);
        prop_assert!(tight.total_energy <= energy_budget + 1e-9);
        prop_assert!(tight.total_size <= budget);
    }
}
