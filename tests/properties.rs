//! Cross-crate property-based tests (proptest) on the core invariants:
//! MCKP budget safety and near-optimality, ladder monotonicity after
//! Pareto pruning, Lyapunov queue boundedness, energy monotonicity and
//! Markov row-stochasticity.

use proptest::prelude::*;
use richnote::core::ids::ContentId;
use richnote::core::lyapunov::{LyapunovConfig, LyapunovState};
use richnote::core::mckp::{
    select_exact, select_fractional, select_greedy_with, GreedyOptions, MckpItem,
};
use richnote::core::mckp2::{select_greedy2, EnergyProfile};
use richnote::core::presentation::{pareto_frontier, CandidatePresentation, PresentationLadder};
use richnote::core::transport::DeliveryQueue;
use richnote::energy::model::NetworkEnergyModel;
use richnote::net::markov::{MarkovConnectivity, NetworkState};

/// Strategy: a small MCKP item with strictly increasing sizes and
/// monotone concave-ish utilities.
fn mckp_item(id: usize) -> impl Strategy<Value = MckpItem> {
    (1usize..=4, 1u64..20, 0.01f64..1.0).prop_map(move |(levels, step, base)| {
        let mut size = 0u64;
        let mut util = 0.0f64;
        let pairs: Vec<(u64, f64)> = (0..levels)
            .map(|l| {
                size += step + l as u64;
                util += base / (l + 1) as f64;
                (size, util)
            })
            .collect();
        MckpItem::new(id, pairs)
    })
}

fn mckp_items() -> impl Strategy<Value = Vec<MckpItem>> {
    prop::collection::vec(0usize..1, 1..6).prop_flat_map(|slots| {
        slots.into_iter().enumerate().map(|(i, _)| mckp_item(i)).collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_never_exceeds_budget(items in mckp_items(), budget in 0u64..200) {
        for stop in [true, false] {
            let sel = select_greedy_with(
                &items,
                budget,
                GreedyOptions { stop_at_first_overflow: stop, ..Default::default() },
            );
            prop_assert!(sel.total_size <= budget);
            prop_assert!(sel.total_utility >= 0.0);
        }
    }

    #[test]
    fn greedy_matches_exact_within_one_upgrade(items in mckp_items(), budget in 0u64..120) {
        let greedy = select_greedy_with(
            &items,
            budget,
            GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
        );
        let exact = select_exact(&items, budget);
        let frac = select_fractional(&items, budget);
        // Exact dominates greedy; the fractional bound dominates exact.
        prop_assert!(exact.total_utility + 1e-9 >= greedy.total_utility);
        prop_assert!(frac.utility_upper_bound() + 1e-9 >= exact.total_utility);
        // Greedy is within the last fractional upgrade of optimal
        // (Sec. IV's argument) for these monotone-concave instances.
        let gap_bound = frac.fractional.map_or(0.0, |f| f.utility / f.fraction.max(1e-12));
        prop_assert!(
            greedy.total_utility + gap_bound + 1e-6 >= exact.total_utility,
            "greedy {} + bound {} < exact {}", greedy.total_utility, gap_bound, exact.total_utility
        );
    }

    #[test]
    fn greedy_is_monotone_in_budget(items in mckp_items(), budget in 0u64..150) {
        let opts = GreedyOptions { stop_at_first_overflow: false, ..Default::default() };
        let a = select_greedy_with(&items, budget, opts);
        let b = select_greedy_with(&items, budget + 10, opts);
        prop_assert!(b.total_utility + 1e-12 >= a.total_utility);
    }

    #[test]
    fn pareto_frontier_is_strictly_monotone(
        raw in prop::collection::vec((1u64..10_000, 0.0f64..5.0), 0..40)
    ) {
        let cands: Vec<CandidatePresentation> = raw
            .iter()
            .enumerate()
            .map(|(i, &(size, utility))| CandidatePresentation { size, utility, label_id: i })
            .collect();
        let frontier = pareto_frontier(&cands);
        for w in frontier.windows(2) {
            prop_assert!(w[1].size > w[0].size);
            prop_assert!(w[1].utility > w[0].utility);
        }
        // No survivor is dominated by any original candidate.
        for f in &frontier {
            for c in &cands {
                let dominates = (c.size < f.size && c.utility >= f.utility)
                    || (c.size <= f.size && c.utility > f.utility);
                prop_assert!(!dominates, "{c:?} dominates {f:?}");
            }
        }
        // A frontier with >= 1 entry forms a valid ladder.
        if !frontier.is_empty() {
            let ladder = PresentationLadder::new(
                frontier.iter().map(|c| (c.size, c.utility.max(1e-9))).collect(),
            );
            prop_assert!(ladder.is_ok(), "{ladder:?}");
        }
    }

    #[test]
    fn lyapunov_queue_is_bounded_under_bounded_arrivals(
        arrivals in prop::collection::vec(0u64..5_000, 1..200),
        theta in 10_000u64..50_000,
    ) {
        // Each round: bounded arrivals, then a drain of up to θ bytes —
        // mimicking the scheduler delivering within its grant. Q must stay
        // below (max arrival burst + θ) once arrivals ≤ drain capacity.
        let mut state = LyapunovState::new(LyapunovConfig::paper_default());
        let max_burst = *arrivals.iter().max().unwrap_or(&0);
        for &nu in &arrivals {
            state.begin_round(theta, 3_000.0);
            state.on_enqueue(nu);
            // Drain up to θ bytes of backlog.
            let drain = (state.q() as u64).min(theta);
            state.on_deliver(drain, drain, 1.0);
        }
        prop_assert!(state.q() <= (max_burst.max(theta)) as f64 + 5_000.0);
        prop_assert!(state.p() >= 0.0);
    }

    #[test]
    fn two_constraint_greedy_respects_both_budgets(
        items in mckp_items(),
        data_budget in 0u64..150,
        energy_budget in 0.0f64..50.0,
        per_byte in 0.01f64..2.0,
    ) {
        let energy: Vec<EnergyProfile> = items
            .iter()
            .map(|it| EnergyProfile::from_item(it, |s| s as f64 * per_byte))
            .collect();
        let sel = select_greedy2(&items, &energy, data_budget, energy_budget);
        prop_assert!(sel.total_size <= data_budget);
        prop_assert!(sel.total_energy <= energy_budget + 1e-9);
        // Relaxing the energy budget never hurts utility.
        let relaxed = select_greedy2(&items, &energy, data_budget, energy_budget + 100.0);
        prop_assert!(relaxed.total_utility + 1e-12 >= sel.total_utility);
    }

    #[test]
    fn transport_conserves_bytes_and_items(
        sizes in prop::collection::vec(0u64..100_000, 1..20),
        windows in prop::collection::vec((0.1f64..50.0, 0.0f64..10_000.0), 1..30),
    ) {
        let mut q = DeliveryQueue::new();
        let total_bytes: u64 = sizes.iter().sum();
        for (i, &s) in sizes.iter().enumerate() {
            q.push(ContentId::new(i as u64), s, 0.0);
        }
        let mut completed = Vec::new();
        let mut clock = 0.0;
        for (secs, rate) in windows {
            let done = q.advance(clock, secs, rate);
            for d in &done {
                // Completion times are within the window and ordered.
                prop_assert!(d.completed_at >= clock);
                prop_assert!(d.completed_at <= clock + secs + 1e-6);
            }
            completed.extend(done);
            clock += secs;
        }
        // Conservation: every byte is delivered, still pending, or in
        // flight as partial progress of a pending download.
        let delivered_bytes: u64 = completed.iter().map(|d| d.size).sum();
        prop_assert_eq!(
            delivered_bytes + q.pending_bytes() + q.in_flight_bytes(),
            total_bytes
        );
        prop_assert_eq!(completed.len() + q.len(), sizes.len());
        // FIFO: completions happen in enqueue order.
        for w in completed.windows(2) {
            prop_assert!(w[0].content.value() < w[1].content.value());
        }
    }

    #[test]
    fn energy_model_is_monotone_and_positive(bytes in 1u64..100_000_000) {
        for model in [NetworkEnergyModel::cellular(), NetworkEnergyModel::wifi()] {
            let e = model.transfer_energy(bytes);
            let e2 = model.transfer_energy(bytes + 1_000);
            prop_assert!(e > 0.0);
            prop_assert!(e2 > e);
        }
    }

    #[test]
    fn markov_occupancy_matches_state_space(seed in 0u64..500, steps in 1usize..300) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut chain = MarkovConnectivity::paper_default(NetworkState::Off);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let s = chain.step(&mut rng);
            prop_assert!(matches!(
                s,
                NetworkState::Wifi | NetworkState::Cell | NetworkState::Off
            ));
        }
        let pi = chain.stationary();
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ewma_estimate_bounded_by_observed_extremes(
        alpha in 0.01f64..=1.0,
        rates in prop::collection::vec(1.0f64..1e9, 1..60),
    ) {
        use richnote::core::adaptive::EwmaThroughput;
        let mut e = EwmaThroughput::new(alpha);
        for &r in &rates {
            e.observe_rate(r);
        }
        let (lo, hi) = e.bounds().expect("samples were fed");
        let est = e.estimate().expect("samples were fed");
        // A convex combination of samples can never escape the observed
        // extremes (tolerance for accumulated rounding).
        prop_assert!(est >= lo * (1.0 - 1e-12), "estimate {est} below min {lo}");
        prop_assert!(est <= hi * (1.0 + 1e-12), "estimate {est} above max {hi}");
    }

    #[test]
    fn ewma_monotone_response_to_sustained_shift(
        alpha in 0.01f64..=1.0,
        base in 10.0f64..1e6,
        factor in 1.5f64..50.0,
        warmup in 1usize..10,
        sustained in 1usize..40,
    ) {
        use richnote::core::adaptive::EwmaThroughput;
        let mut e = EwmaThroughput::new(alpha);
        for _ in 0..warmup {
            e.observe_rate(base);
        }
        // A sustained shift to a higher rate must move the estimate toward
        // it monotonically, without overshooting.
        let target = base * factor;
        let mut prev = e.estimate().expect("warmed up");
        for _ in 0..sustained {
            e.observe_rate(target);
            let cur = e.estimate().expect("fed");
            prop_assert!(cur >= prev * (1.0 - 1e-12), "estimate regressed: {prev} -> {cur}");
            prop_assert!(cur <= target * (1.0 + 1e-12), "estimate overshot {target}: {cur}");
            prev = cur;
        }
    }
}
