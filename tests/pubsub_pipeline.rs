//! Integration of the pub/sub generation path (Sec. II) with the trace and
//! the scheduler: activity → broker match → notification → delivery.

use richnote::core::content::ContentKind;
use richnote::core::presentation::AudioPresentationSpec;
use richnote::core::scheduler::{
    LinearCost, NotificationScheduler, QueuedNotification, RichNoteScheduler, RoundContext,
};
use richnote::sim::feed::FeedRouter;
use richnote::trace::generator::{TraceConfig, TraceGenerator};
use std::collections::HashMap;

#[test]
fn pubsub_routed_notifications_flow_through_the_scheduler() {
    let trace = TraceGenerator::new(TraceConfig::small(21)).generate();
    let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);

    // Route the first hours of friend-feed activity through the broker and
    // enqueue every matched delivery into the *subscriber's* scheduler.
    let ladder = std::sync::Arc::new(AudioPresentationSpec::paper_default().ladder());
    let mut schedulers: HashMap<u64, RichNoteScheduler> = HashMap::new();
    let mut matched = 0usize;
    let by_id: HashMap<_, _> = trace.items.iter().map(|i| (i.id, i)).collect();

    for item in trace.items.iter().filter(|i| i.arrival < 4.0 * 3_600.0) {
        if item.kind != ContentKind::FriendFeed {
            continue;
        }
        for delivery in router.route(item) {
            matched += 1;
            let original = by_id[&delivery.payload];
            schedulers
                .entry(delivery.subscriber.value())
                .or_insert_with(|| RichNoteScheduler::builder().build())
                .enqueue(QueuedNotification {
                    item: (*original).clone(),
                    ladder: ladder.clone(),
                    content_utility: 0.6,
                    enqueued_at: delivery.delivered_at,
                });
        }
    }
    assert!(matched > 20, "expected pub/sub fan-out, matched {matched}");

    // One generous round per subscriber: everything matched is delivered.
    let cost = LinearCost { fixed: 3.5, per_byte: 2.5e-5 };
    let mut total_delivered = 0usize;
    for scheduler in schedulers.values_mut() {
        let backlog = scheduler.backlog();
        let ctx = RoundContext::builder(&cost)
            .round(4)
            .now(5.0 * 3_600.0)
            .link_capacity(u64::MAX >> 8)
            .data_grant(1_000_000_000)
            .energy_grant(3_000.0)
            .build();
        let delivered = scheduler.run_round(&ctx);
        assert_eq!(delivered.len(), backlog);
        total_delivered += delivered.len();
    }
    assert_eq!(total_delivered, matched);
}

#[test]
fn round_mode_artist_pages_batch_into_the_next_flush() {
    let trace = TraceGenerator::new(TraceConfig::small(22)).generate();
    let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);

    let mut published = 0usize;
    for item in
        trace.items.iter().filter(|i| i.kind == ContentKind::AlbumRelease && i.arrival < 3_600.0)
    {
        assert!(router.route(item).is_empty(), "album releases buffer");
        published += 1;
    }
    assert!(published > 0);

    let flushed = router.flush(3_600.0);
    let (_, matched, buffered) = router.stats();
    assert_eq!(buffered, 0, "hourly flush drains all round-mode buffers");
    assert_eq!(flushed.len() as u64, matched, "every match was buffered, none real-time");
    // Every flushed delivery is stamped at the flush instant.
    for d in &flushed {
        assert_eq!(d.delivered_at, 3_600.0);
        assert!(d.published_at <= 3_600.0);
    }
}
