//! # richnote-pubsub
//!
//! Topic-based publish/subscribe substrate modeling Spotify's hybrid
//! notification engine (Sec. II of the RichNote paper).
//!
//! Topics correspond to **friend feeds**, **artist pages** and **shared
//! playlists**; publications are notifications about friends streaming
//! tracks, album releases, and playlist updates. Delivery happens in one of
//! three modes:
//!
//! * **real-time** — matched publications are handed to the subscriber
//!   immediately (Spotify's friend-feed path);
//! * **batch** — publications are buffered and flushed on a long period
//!   (Spotify's album/playlist path);
//! * **rounds** — RichNote's middle ground: flush on a fixed round length,
//!   tunable per feed frequency.
//!
//! The [`broker::Broker`] is single-threaded and deterministic; a
//! [`broker::SharedBroker`] wrapper provides thread-safe access for
//! concurrent publishers.

pub mod broker;
pub mod topic;

pub use broker::{Broker, Delivery, DeliveryMode, SharedBroker};
pub use topic::{Publication, Topic};
