//! The topic-based broker with real-time, batch and round delivery modes.

use crate::topic::{Publication, Topic};
use richnote_core::ids::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::sync::Mutex;

/// How matched publications reach a subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Hand over immediately on publish.
    Realtime,
    /// Buffer and flush every `period_secs` (Spotify batch mode).
    Batch {
        /// Flush period in seconds.
        period_secs: f64,
    },
    /// RichNote's round-based middle ground: flush every `round_secs`,
    /// typically much shorter than a batch period.
    Rounds {
        /// Round length in seconds.
        round_secs: f64,
    },
}

impl DeliveryMode {
    fn period(&self) -> Option<f64> {
        match *self {
            DeliveryMode::Realtime => None,
            DeliveryMode::Batch { period_secs } => Some(period_secs),
            DeliveryMode::Rounds { round_secs } => Some(round_secs),
        }
    }
}

/// A matched publication handed to one subscriber.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery<P> {
    /// Receiving subscriber.
    pub subscriber: UserId,
    /// Topic the publication matched.
    pub topic: Topic,
    /// Payload.
    pub payload: P,
    /// Original publication time.
    pub published_at: f64,
    /// Time the broker released it to the subscriber.
    pub delivered_at: f64,
}

/// A single-threaded topic-based broker.
///
/// Subscribers register per topic; every **subscription** carries its own
/// delivery mode (Spotify's hybrid engine delivers friend feeds to a user
/// in real time while batching album releases *to the same user*, Sec. II).
/// Publications match subscribers of their topic; real-time subscriptions
/// receive them from [`Broker::publish`] directly, others on
/// [`Broker::flush`].
///
/// ```
/// use richnote_core::ids::UserId;
/// use richnote_pubsub::{Broker, Publication, Topic};
///
/// let mut broker: Broker<&str> = Broker::new();
/// let feed = Topic::FriendFeed(UserId::new(7));
/// broker.subscribe(UserId::new(1), feed);
/// let delivered = broker.publish(Publication::new(feed, "new track", 0.0));
/// assert_eq!(delivered.len(), 1); // friend feeds are real-time by default
/// ```
#[derive(Debug, Clone)]
pub struct Broker<P> {
    subscriptions: HashMap<Topic, HashSet<UserId>>,
    modes: HashMap<(UserId, Topic), DeliveryMode>,
    /// Buffered publications per (subscriber, topic), with last-flush
    /// bookkeeping per subscription.
    buffers: BTreeMap<(u64, Topic), Vec<Delivery<P>>>,
    last_flush: HashMap<(UserId, Topic), f64>,
    published: u64,
    matched: u64,
}

impl<P: Clone> Broker<P> {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Self {
            subscriptions: HashMap::new(),
            modes: HashMap::new(),
            buffers: BTreeMap::new(),
            last_flush: HashMap::new(),
            published: 0,
            matched: 0,
        }
    }

    /// Subscribes `user` to `topic` with an explicit delivery mode.
    pub fn subscribe_with_mode(&mut self, user: UserId, topic: Topic, mode: DeliveryMode) {
        self.subscriptions.entry(topic).or_default().insert(user);
        self.modes.insert((user, topic), mode);
    }

    /// Subscribes `user` to `topic` with the topic's default Spotify mode:
    /// real-time for friend feeds, 6-hour batch otherwise.
    pub fn subscribe(&mut self, user: UserId, topic: Topic) {
        let mode = if topic.default_realtime() {
            DeliveryMode::Realtime
        } else {
            DeliveryMode::Batch { period_secs: 6.0 * 3600.0 }
        };
        self.subscribe_with_mode(user, topic, mode);
    }

    /// Unsubscribes `user` from `topic`. Buffered deliveries are retained.
    pub fn unsubscribe(&mut self, user: UserId, topic: Topic) {
        if let Some(set) = self.subscriptions.get_mut(&topic) {
            set.remove(&user);
            if set.is_empty() {
                self.subscriptions.remove(&topic);
            }
        }
        self.modes.remove(&(user, topic));
    }

    /// Whether `user` subscribes to `topic`.
    pub fn is_subscribed(&self, user: UserId, topic: Topic) -> bool {
        self.subscriptions.get(&topic).is_some_and(|s| s.contains(&user))
    }

    /// Number of distinct subscribed topics.
    pub fn n_topics(&self) -> usize {
        self.subscriptions.len()
    }

    /// Publishes; returns deliveries for real-time subscribers and buffers
    /// the rest.
    pub fn publish(&mut self, publication: Publication<P>) -> Vec<Delivery<P>> {
        self.published += 1;
        let Some(subs) = self.subscriptions.get(&publication.topic) else {
            return Vec::new();
        };
        let mut immediate = Vec::new();
        // Deterministic order: sort subscriber ids.
        let mut ordered: Vec<UserId> = subs.iter().copied().collect();
        ordered.sort_unstable();
        for user in ordered {
            self.matched += 1;
            let delivery = Delivery {
                subscriber: user,
                topic: publication.topic,
                payload: publication.payload.clone(),
                published_at: publication.published_at,
                delivered_at: publication.published_at,
            };
            match self
                .modes
                .get(&(user, publication.topic))
                .copied()
                .unwrap_or(DeliveryMode::Realtime)
            {
                DeliveryMode::Realtime => immediate.push(delivery),
                _ => self
                    .buffers
                    .entry((user.value(), publication.topic))
                    .or_default()
                    .push(delivery),
            }
        }
        immediate
    }

    /// Releases buffered deliveries whose subscription's period has elapsed
    /// by `now`. A subscription flushes when `now ≥ last_flush + period`,
    /// with `last_flush` anchored at time 0 — so a 6-hour batch
    /// subscription first flushes at the 6-hour mark. Delivered items get
    /// `delivered_at = now`.
    pub fn flush(&mut self, now: f64) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        let keys: Vec<(u64, Topic)> = self.buffers.keys().copied().collect();
        for (raw, topic) in keys {
            let user = UserId::new(raw);
            let period = self.modes.get(&(user, topic)).and_then(|m| m.period()).unwrap_or(0.0);
            let last = self.last_flush.get(&(user, topic)).copied().unwrap_or(0.0);
            if now - last >= period {
                if let Some(mut buf) = self.buffers.remove(&(raw, topic)) {
                    for d in &mut buf {
                        d.delivered_at = now;
                    }
                    out.extend(buf);
                    self.last_flush.insert((user, topic), now);
                }
            }
        }
        out
    }

    /// Total publications seen.
    pub fn published_count(&self) -> u64 {
        self.published
    }

    /// Total (publication, subscriber) matches.
    pub fn matched_count(&self) -> u64 {
        self.matched
    }

    /// Buffered deliveries not yet flushed.
    pub fn buffered_count(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }
}

impl<P: Clone> Default for Broker<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// A thread-safe broker handle for concurrent publishers.
///
/// Cloning shares the underlying broker.
#[derive(Debug, Clone)]
pub struct SharedBroker<P> {
    inner: Arc<Mutex<Broker<P>>>,
}

impl<P: Clone> SharedBroker<P> {
    /// Wraps a broker.
    pub fn new(broker: Broker<P>) -> Self {
        Self { inner: Arc::new(Mutex::new(broker)) }
    }

    /// Thread-safe publish.
    pub fn publish(&self, publication: Publication<P>) -> Vec<Delivery<P>> {
        self.inner.lock().unwrap().publish(publication)
    }

    /// Thread-safe subscribe.
    pub fn subscribe(&self, user: UserId, topic: Topic) {
        self.inner.lock().unwrap().subscribe(user, topic);
    }

    /// Thread-safe flush.
    pub fn flush(&self, now: f64) -> Vec<Delivery<P>> {
        self.inner.lock().unwrap().flush(now)
    }

    /// Runs a closure with exclusive access to the broker.
    pub fn with<T>(&self, f: impl FnOnce(&mut Broker<P>) -> T) -> T {
        f(&mut self.inner.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richnote_core::ids::{ArtistId, PlaylistId};

    fn feed(u: u64) -> Topic {
        Topic::FriendFeed(UserId::new(u))
    }

    #[test]
    fn realtime_subscribers_get_publications_immediately() {
        let mut b: Broker<u32> = Broker::new();
        b.subscribe(UserId::new(1), feed(9));
        b.subscribe(UserId::new(2), feed(9));
        let out = b.publish(Publication::new(feed(9), 7, 100.0));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].subscriber, UserId::new(1));
        assert_eq!(out[1].subscriber, UserId::new(2));
        assert!(out.iter().all(|d| d.delivered_at == 100.0));
        assert_eq!(b.buffered_count(), 0);
    }

    #[test]
    fn non_subscribers_get_nothing() {
        let mut b: Broker<u32> = Broker::new();
        b.subscribe(UserId::new(1), feed(9));
        let out = b.publish(Publication::new(feed(8), 7, 0.0));
        assert!(out.is_empty());
        assert_eq!(b.matched_count(), 0);
        assert_eq!(b.published_count(), 1);
    }

    #[test]
    fn batch_subscribers_are_buffered_until_flush() {
        let mut b: Broker<u32> = Broker::new();
        let artist = Topic::ArtistPage(ArtistId::new(5));
        b.subscribe(UserId::new(1), artist);
        let out = b.publish(Publication::new(artist, 42, 10.0));
        assert!(out.is_empty());
        assert_eq!(b.buffered_count(), 1);
        // Default artist-page batch period is 6 h: an early flush is a no-op.
        assert!(b.flush(3_600.0).is_empty());
        let flushed = b.flush(6.0 * 3_600.0);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].delivered_at, 6.0 * 3_600.0);
        assert_eq!(flushed[0].published_at, 10.0);
        assert_eq!(b.buffered_count(), 0);
    }

    #[test]
    fn batch_period_gates_repeat_flushes() {
        let mut b: Broker<u32> = Broker::new();
        let artist = Topic::ArtistPage(ArtistId::new(5));
        b.subscribe_with_mode(UserId::new(1), artist, DeliveryMode::Batch { period_secs: 100.0 });
        b.publish(Publication::new(artist, 1, 0.0));
        assert!(b.flush(50.0).is_empty(), "first period not yet elapsed");
        assert_eq!(b.flush(100.0).len(), 1);
        b.publish(Publication::new(artist, 2, 110.0));
        assert!(b.flush(150.0).is_empty(), "period since last flush not elapsed");
        assert_eq!(b.flush(200.0).len(), 1);
    }

    #[test]
    fn rounds_mode_flushes_each_round() {
        let mut b: Broker<u32> = Broker::new();
        let pl = Topic::Playlist(PlaylistId::new(1));
        b.subscribe_with_mode(UserId::new(1), pl, DeliveryMode::Rounds { round_secs: 60.0 });
        b.publish(Publication::new(pl, 1, 0.0));
        assert!(b.flush(59.0).is_empty());
        assert_eq!(b.flush(60.0).len(), 1);
        b.publish(Publication::new(pl, 2, 90.0));
        assert!(b.flush(119.0).is_empty());
        assert_eq!(b.flush(120.0).len(), 1);
    }

    #[test]
    fn unsubscribe_stops_future_matches() {
        let mut b: Broker<u32> = Broker::new();
        b.subscribe(UserId::new(1), feed(9));
        assert!(b.is_subscribed(UserId::new(1), feed(9)));
        b.unsubscribe(UserId::new(1), feed(9));
        assert!(!b.is_subscribed(UserId::new(1), feed(9)));
        assert!(b.publish(Publication::new(feed(9), 7, 0.0)).is_empty());
        assert_eq!(b.n_topics(), 0);
    }

    #[test]
    fn modes_are_per_subscription_like_spotify_hybrid() {
        // The same user gets friend feeds in real time and artist pages in
        // batch — the hybrid engine of Sec. II.
        let mut b: Broker<u32> = Broker::new();
        b.subscribe(UserId::new(1), Topic::ArtistPage(ArtistId::new(2)));
        b.subscribe(UserId::new(1), feed(9));
        let out = b.publish(Publication::new(feed(9), 7, 0.0));
        assert_eq!(out.len(), 1, "friend feed is real-time");
        let out = b.publish(Publication::new(Topic::ArtistPage(ArtistId::new(2)), 8, 0.0));
        assert!(out.is_empty(), "artist page is batched");
        assert_eq!(b.buffered_count(), 1);
    }

    #[test]
    fn shared_broker_is_send_across_threads() {
        let shared = SharedBroker::new(Broker::<u64>::new());
        for u in 0..8u64 {
            shared.subscribe(UserId::new(u), feed(99));
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    let mut delivered = 0usize;
                    for i in 0..100 {
                        delivered +=
                            s.publish(Publication::new(feed(99), t * 1000 + i, i as f64)).len();
                    }
                    delivered
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4 * 100 * 8);
        assert_eq!(shared.with(|b| b.published_count()), 400);
    }

    #[test]
    fn matched_count_tracks_fanout() {
        let mut b: Broker<u32> = Broker::new();
        for u in 0..5 {
            b.subscribe(UserId::new(u), feed(1));
        }
        b.publish(Publication::new(feed(1), 0, 0.0));
        assert_eq!(b.matched_count(), 5);
    }
}
