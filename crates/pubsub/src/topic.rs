//! Topics and publications.

use richnote_core::ids::{ArtistId, PlaylistId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pub/sub topic, mirroring the three Spotify topic families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// The activity feed of one user (friends subscribe to it).
    FriendFeed(UserId),
    /// An artist's page (release announcements).
    ArtistPage(ArtistId),
    /// A shared playlist (update announcements).
    Playlist(PlaylistId),
}

impl Topic {
    /// Whether Spotify serves this topic in real-time mode by default
    /// (friend feeds) rather than batch mode.
    pub fn default_realtime(&self) -> bool {
        matches!(self, Topic::FriendFeed(_))
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topic::FriendFeed(u) => write!(f, "feed/{u}"),
            Topic::ArtistPage(a) => write!(f, "artist/{a}"),
            Topic::Playlist(p) => write!(f, "playlist/{p}"),
        }
    }
}

/// A publication on a topic carrying an application payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publication<P> {
    /// Topic published to.
    pub topic: Topic,
    /// Application payload (e.g. a content identifier).
    pub payload: P,
    /// Publication time, seconds.
    pub published_at: f64,
}

impl<P> Publication<P> {
    /// Creates a publication.
    pub fn new(topic: Topic, payload: P, published_at: f64) -> Self {
        Self { topic, payload, published_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_pathlike() {
        assert_eq!(Topic::FriendFeed(UserId::new(3)).to_string(), "feed/u3");
        assert_eq!(Topic::ArtistPage(ArtistId::new(4)).to_string(), "artist/ar4");
        assert_eq!(Topic::Playlist(PlaylistId::new(5)).to_string(), "playlist/pl5");
    }

    #[test]
    fn only_friend_feeds_are_realtime_by_default() {
        assert!(Topic::FriendFeed(UserId::new(1)).default_realtime());
        assert!(!Topic::ArtistPage(ArtistId::new(1)).default_realtime());
        assert!(!Topic::Playlist(PlaylistId::new(1)).default_realtime());
    }

    #[test]
    fn topics_are_hashable_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Topic::FriendFeed(UserId::new(1)), 1);
        m.insert(Topic::FriendFeed(UserId::new(1)), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&Topic::FriendFeed(UserId::new(1))], 2);
    }

    #[test]
    fn publication_carries_payload() {
        let p = Publication::new(Topic::Playlist(PlaylistId::new(9)), "hello", 12.5);
        assert_eq!(p.payload, "hello");
        assert_eq!(p.published_at, 12.5);
    }
}
