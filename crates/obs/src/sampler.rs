//! Head sampling of traces: keep 1 in N, parsed from `--trace-sample=1/N`.
//!
//! The keep/skip decision is a pure function of the trace id, so every
//! component that sees a publication (connection thread, shard worker,
//! simulator) independently reaches the same verdict without any shared
//! state — a trace is either recorded at every stage or at none.
//!
//! Sampling is *adaptive* at the edges: callers force-keep anomalous
//! traces (shed notifications, level 0–1 downgrades) regardless of the
//! configured rate, so the interesting traces survive even at 1/1000.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A head-sampling rate: keep 1 in N traces (N = 0 disables tracing).
///
/// Serializes as the bare denominator, parses from `"1/N"` or `"0"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleRate(u64);

impl SampleRate {
    /// Record no traces.
    pub const OFF: SampleRate = SampleRate(0);
    /// Record every trace.
    pub const ALL: SampleRate = SampleRate(1);

    /// Keep 1 in `n` traces (`n = 0` disables).
    pub fn one_in(n: u64) -> Self {
        SampleRate(n)
    }

    /// Parses `"0"` (off) or `"1/N"` with N ≥ 1.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s == "0" {
            return Ok(SampleRate::OFF);
        }
        let Some(denom) = s.strip_prefix("1/") else {
            return Err(format!("bad sample rate {s:?}: expected \"1/N\" or \"0\""));
        };
        match denom.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(SampleRate(n)),
            _ => Err(format!("bad sample rate {s:?}: N must be an integer >= 1")),
        }
    }

    /// Whether tracing is disabled outright.
    pub fn is_off(&self) -> bool {
        self.0 == 0
    }

    /// The N in "1 in N" (0 when off).
    pub fn denominator(&self) -> u64 {
        self.0
    }

    /// The deterministic head decision for `trace`. The id is re-mixed
    /// before the modulo so ids that are themselves sequential or
    /// low-entropy still sample at ~1/N.
    pub fn keeps(&self, trace: u64) -> bool {
        match self.0 {
            0 => false,
            1 => true,
            n => {
                let mut z = trace.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                z ^= z >> 33;
                z.is_multiple_of(n)
            }
        }
    }
}

impl Default for SampleRate {
    fn default() -> Self {
        SampleRate::ALL
    }
}

impl fmt::Display for SampleRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0")
        } else {
            write!(f, "1/{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::derive_trace_id;

    #[test]
    fn parses_and_displays_roundtrip() {
        for s in ["0", "1/1", "1/8", "1/1000"] {
            let rate = SampleRate::parse(s).unwrap();
            assert_eq!(rate.to_string(), s);
        }
        assert!(SampleRate::parse("2/3").is_err());
        assert!(SampleRate::parse("1/0").is_err());
        assert!(SampleRate::parse("1/").is_err());
        assert!(SampleRate::parse("every").is_err());
    }

    #[test]
    fn off_keeps_nothing_and_all_keeps_everything() {
        for trace in [1u64, 42, u64::MAX] {
            assert!(!SampleRate::OFF.keeps(trace));
            assert!(SampleRate::ALL.keeps(trace));
        }
        assert!(SampleRate::OFF.is_off());
        assert!(!SampleRate::ALL.is_off());
    }

    #[test]
    fn one_in_n_keeps_roughly_one_in_n() {
        let rate = SampleRate::one_in(8);
        let kept = (0..8000).map(|i| derive_trace_id(7, i, i)).filter(|&t| rate.keeps(t)).count();
        // ~1000 expected; allow generous slack, the point is "neither 0 nor all".
        assert!((500..2000).contains(&kept), "kept {kept} of 8000 at 1/8");
    }

    #[test]
    fn decision_is_stable_per_trace() {
        let rate = SampleRate::one_in(4);
        for i in 0..100 {
            let t = derive_trace_id(1, i, i);
            assert_eq!(rate.keeps(t), rate.keeps(t));
        }
    }

    #[test]
    fn serializes_as_bare_denominator() {
        let s = serde_json::to_string(&SampleRate::one_in(8)).unwrap();
        let back: SampleRate = serde_json::from_str(&s).unwrap();
        assert_eq!(back, SampleRate::one_in(8));
    }
}
