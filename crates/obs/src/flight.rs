//! The flight recorder: a bounded ring of complete span trees kept for
//! post-mortem dumps.
//!
//! Each shard worker retains the last N span trees it flushed (plus every
//! anomalous tree that bypassed sampling). On a shard panic, a checkpoint
//! failure, or an injected fault, the ring is dumped to a CRC-framed file
//! so the traces leading up to the incident survive the process; at any
//! time it can also be read over the wire via the `FlightDump` request —
//! reads are non-destructive, so a poller like `richnote-top` does not
//! race the post-mortem path.
//!
//! # Dump file format
//!
//! ```text
//! | magic: 8 bytes | crc32: u32 LE | len: u64 LE | JSON: len bytes |
//! | "RNFLT01\n"    | of JSON body  | JSON length | FlightDump      |
//! ```
//!
//! The same magic/CRC/length framing as checkpoint files, so the same
//! torn-write detection applies: a reader rejects bad magic, a length
//! beyond the file, or a CRC mismatch.

use crate::frame::{self, BlobError};
use crate::span::SpanTree;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;

pub use crate::frame::crc32;

/// Magic prefix of a flight-recorder dump file.
pub const FLIGHT_MAGIC: &[u8; 8] = b"RNFLT01\n";

/// A serialized cut of one shard's flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Shard the recorder belongs to.
    pub shard: usize,
    /// Why the dump was taken (`request`, `shard_panic`,
    /// `checkpoint_failure`, `fault_injected`).
    pub reason: String,
    /// Retained span trees, oldest first.
    pub trees: Vec<SpanTree>,
    /// Trees evicted from the ring since it was created.
    pub dropped: u64,
}

/// A bounded ring of span trees with drop accounting.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    trees: VecDeque<SpanTree>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` trees.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0` — use [`FlightRecorder::disabled`] to turn
    /// the recorder off explicitly.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "FlightRecorder capacity must be >= 1; use FlightRecorder::disabled()");
        FlightRecorder { trees: VecDeque::with_capacity(cap.min(4096)), cap, dropped: 0 }
    }

    /// A recorder that retains nothing.
    pub fn disabled() -> Self {
        FlightRecorder { trees: VecDeque::new(), cap: 0, dropped: 0 }
    }

    /// Whether trees are being kept.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether no trees are retained.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Trees evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retains a tree, evicting the oldest when full.
    pub fn record(&mut self, tree: SpanTree) {
        if self.cap == 0 {
            return;
        }
        if self.trees.len() == self.cap {
            self.trees.pop_front();
            self.dropped += 1;
        }
        self.trees.push_back(tree);
    }

    /// A non-destructive cut of the recorder for `shard` with the given
    /// `reason`.
    pub fn dump(&self, shard: usize, reason: &str) -> FlightDump {
        FlightDump {
            shard,
            reason: reason.to_string(),
            trees: self.trees.iter().cloned().collect(),
            dropped: self.dropped,
        }
    }
}

/// Writes a dump as a CRC-framed file, fsyncing before returning so a
/// dump taken on the panic path survives the process dying right after.
pub fn write_flight_file(path: &Path, dump: &FlightDump) -> std::io::Result<()> {
    let body = serde_json::to_string(dump)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    frame::write_blob_file(path, FLIGHT_MAGIC, body.as_bytes())
}

/// Reads and validates a CRC-framed dump file, describing exactly what
/// is wrong when it does not verify.
pub fn read_flight_file(path: &Path) -> Result<FlightDump, String> {
    let blob = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let body = frame::decode_blob(&blob, FLIGHT_MAGIC).map_err(|e| match e {
        BlobError::TruncatedHeader { len } => {
            format!("{}: truncated header ({len} bytes)", path.display())
        }
        BlobError::BadMagic { found } => format!("{}: bad magic {found:?}", path.display()),
        BlobError::LengthMismatch { header, actual } => {
            format!("{}: body is {actual} bytes, header says {header}", path.display())
        }
        BlobError::Crc { want, got } => {
            format!("{}: crc mismatch (want {want:#010x}, got {got:#010x})", path.display())
        }
    })?;
    let text = std::str::from_utf8(body).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(text).map_err(|e| format!("{}: bad JSON: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::span::SpanRecord;

    fn tree(trace: u64) -> SpanTree {
        SpanTree::assemble(&[
            TraceEvent::Span(SpanRecord::publish(trace, 1, 42)),
            TraceEvent::Span(SpanRecord::queued(trace, 0, 0, 5, 42)),
        ])
        .pop()
        .expect("one tree")
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(2);
        for t in 1..=4 {
            r.record(tree(t));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let d = r.dump(3, "request");
        assert_eq!(d.shard, 3);
        assert_eq!(d.trees.iter().map(|t| t.trace).collect::<Vec<_>>(), vec![3, 4]);
        // Reads are non-destructive.
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let mut r = FlightRecorder::disabled();
        r.record(tree(1));
        assert!(r.is_empty());
        assert!(!r.is_enabled());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn dump_file_roundtrips_with_valid_crc() {
        let dir = std::env::temp_dir().join(format!("rnflt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight-shard-0.rnfl");
        let mut r = FlightRecorder::new(4);
        r.record(tree(7));
        r.record(tree(9));
        let dump = r.dump(0, "shard_panic");
        write_flight_file(&path, &dump).unwrap();
        let back = read_flight_file(&path).unwrap();
        assert_eq!(back, dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_dump_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("rnflt-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight-shard-1.rnfl");
        let mut r = FlightRecorder::new(2);
        r.record(tree(5));
        write_flight_file(&path, &r.dump(1, "request")).unwrap();

        let orig = std::fs::read(&path).unwrap();

        // Flip one payload byte: the CRC must catch it.
        let mut blob = orig.clone();
        let last = blob.len() - 2;
        blob[last] ^= 0x40;
        std::fs::write(&path, &blob).unwrap();
        let err = read_flight_file(&path).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");

        // Truncation is caught before the CRC is even computed.
        std::fs::write(&path, &orig[..10]).unwrap();
        let err = read_flight_file(&path).unwrap_err();
        assert!(err.contains("truncated"), "{err}");

        // Wrong magic.
        let mut blob = orig.clone();
        blob[0] = b'X';
        std::fs::write(&path, &blob).unwrap();
        let err = read_flight_file(&path).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
