//! Structured trace events and the bounded per-shard ring that holds them.
//!
//! Events carry only *logical* fields — round indices, virtual-time
//! seconds, ids, levels, gradients — never wall-clock timestamps, so a
//! seeded deterministic run produces an identical event stream across
//! machines and restarts. Wall-clock durations belong in histograms, not
//! traces.

use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A shard began a selection round.
    RoundStart {
        /// Shard index.
        shard: usize,
        /// Round index.
        round: u64,
        /// Virtual time at round start (seconds).
        now_secs: f64,
        /// Notifications queued across the shard's schedulers at start.
        backlog: usize,
    },
    /// A shard finished a selection round.
    RoundEnd {
        /// Shard index.
        shard: usize,
        /// Round index.
        round: u64,
        /// Notifications selected for delivery this round.
        selected: u64,
        /// Bytes of selected presentations this round.
        bytes_spent: u64,
    },
    /// The broker matched a publication to subscribers.
    BrokerMatch {
        /// Publishing session id (0 = dedup opted out).
        session: u64,
        /// Per-session publish sequence number.
        seq: u64,
        /// Number of matched subscribers.
        matched: usize,
    },
    /// A shard ingest queue shed messages under backpressure since the
    /// previous round (reported at round granularity).
    QueueDrop {
        /// Shard index.
        shard: usize,
        /// Round index at which the drops were observed.
        round: u64,
        /// Messages shed since the last report.
        dropped: u64,
    },
    /// The MCKP selector chose a notification for delivery.
    Select {
        /// Shard index (0 in single-process simulation).
        shard: usize,
        /// Round index.
        round: u64,
        /// Receiving user.
        user: u64,
        /// Delivered content id.
        content: u64,
        /// Presentation level chosen.
        level: u8,
        /// Combined utility realized at the chosen level.
        utility: f64,
        /// Greedy gradient of the final upgrade into the chosen level
        /// (the adjusted-utility-per-byte slope that won the knapsack
        /// slot; 0 for level-1 base selections).
        gradient: f64,
    },
    /// A coordinated checkpoint was written (or failed).
    CheckpointWrite {
        /// Round the checkpoint is consistent at.
        round: u64,
        /// Users captured.
        users: u64,
        /// Whether the write succeeded.
        ok: bool,
    },
    /// An injected fault fired.
    FaultInjected {
        /// Fault kind (e.g. `conn_reset`, `shard_panic`, `ckpt_fail`).
        kind: String,
        /// Free-form detail.
        detail: String,
    },
    /// One stage of a per-publication causal trace (see
    /// [`crate::span`]). Span events interleave with the aggregate
    /// events above in the same ring and are grouped back into trees
    /// with [`crate::SpanTree::assemble`].
    Span(SpanRecord),
}

/// A bounded ring buffer of trace events with drop accounting.
///
/// A disabled ring ([`TraceRing::disabled`]) makes pushes no-ops at the
/// cost of one branch, which is what lets the daemon keep
/// `trace_capacity = 0` as the default with no measurable overhead.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0`: a zero-capacity ring can never hold an
    /// event, so asking for one is a configuration bug. Call
    /// [`TraceRing::disabled`] to turn tracing off explicitly.
    pub fn new(cap: usize) -> Self {
        assert!(
            cap > 0,
            "TraceRing capacity must be >= 1; use TraceRing::disabled() to turn tracing off"
        );
        TraceRing { buf: VecDeque::with_capacity(cap.min(4096)), cap, dropped: 0 }
    }

    /// A ring that records nothing: pushes are no-ops.
    pub fn disabled() -> Self {
        TraceRing { buf: VecDeque::new(), cap: 0, dropped: 0 }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.cap > 0
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (oldest-first) since the last [`TraceRing::drain`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Takes every buffered event (oldest first) plus the evicted-count,
    /// resetting both.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        self.drain_up_to(usize::MAX)
    }

    /// Takes up to `max` buffered events (oldest first) plus the
    /// evicted-count, resetting the count. Leftover events stay buffered
    /// for the next call, which is how a ring larger than one wire frame
    /// drains across several bounded responses instead of one oversized
    /// (and therefore rejected) frame.
    pub fn drain_up_to(&mut self, max: usize) -> (Vec<TraceEvent>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        let n = self.buf.len().min(max);
        (self.buf.drain(..n).collect(), dropped)
    }

    /// Renders events as JSON lines (one event per line).
    pub fn to_json_lines(events: &[TraceEvent]) -> String {
        let mut out = String::new();
        for ev in events {
            if let Ok(line) = serde_json::to_string(ev) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> TraceEvent {
        TraceEvent::RoundStart { shard: 0, round, now_secs: round as f64, backlog: 0 }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 2);
        assert_eq!(
            events
                .iter()
                .map(|e| match e {
                    TraceEvent::RoundStart { round, .. } => *round,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn bounded_drain_leaves_the_remainder_buffered() {
        let mut r = TraceRing::new(8);
        for i in 0..6 {
            r.push(ev(i));
        }
        let (first, dropped) = r.drain_up_to(4);
        assert_eq!(dropped, 0);
        assert_eq!(first.len(), 4);
        assert_eq!(r.len(), 2, "undrained events stay for the next call");
        let (second, _) = r.drain_up_to(4);
        assert_eq!(
            second
                .iter()
                .map(|e| match e {
                    TraceEvent::RoundStart { round, .. } => *round,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            vec![4, 5],
            "chunks drain oldest-first with no gaps"
        );
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = TraceRing::new(0);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::disabled();
        assert!(!r.is_enabled());
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn events_roundtrip_and_render_as_json_lines() {
        let events = vec![
            TraceEvent::Select {
                shard: 1,
                round: 4,
                user: 9,
                content: 77,
                level: 3,
                utility: 0.8,
                gradient: 1.25e-5,
            },
            TraceEvent::CheckpointWrite { round: 4, users: 100, ok: true },
            TraceEvent::FaultInjected { kind: "conn_reset".into(), detail: "p=0.02".into() },
            TraceEvent::Span(SpanRecord::queued(0xDEAD_BEEF, 1, 4, 9, 77)),
        ];
        for e in &events {
            let s = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&s).unwrap();
            assert_eq!(&back, e);
        }
        let lines = TraceRing::to_json_lines(&events);
        assert_eq!(lines.lines().count(), 4);
        for line in lines.lines() {
            assert!(serde_json::from_str::<TraceEvent>(line).is_ok(), "{line}");
        }
    }
}
