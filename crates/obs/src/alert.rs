//! Declarative alert rules evaluated over [`MetricsHistory`] in
//! caller-supplied virtual time, plus the shard watchdog.
//!
//! The daemon decides *for* the user under changing conditions, so it
//! must detect its own degradation without an operator watching. Rules
//! close the loop from signal → detection: each one names a metric
//! family (or SLO objective), a window, and a threshold, and walks a
//! `pending → firing → resolved` state machine as evaluations pass.
//!
//! Time is always the caller's: the server evaluates at tick boundaries
//! using `rounds_done × round_secs`, the simulator at its round clock —
//! so a seeded run produces a byte-identical alert timeline, and a
//! replay re-raises exactly the alerts the original run raised.
//!
//! # Rule grammar
//!
//! * [`AlertRuleKind::Threshold`] — the family's current value (gauge or
//!   counter level), or a windowed histogram quantile when `quantile` is
//!   set, compared against `above`.
//! * [`AlertRuleKind::Rate`] — the family's windowed delta per second;
//!   with `per` set, the ratio of this family's windowed delta to the
//!   `per` family's (window length cancels, so the same rule means the
//!   same thing at any sampling cadence).
//! * [`AlertRuleKind::SloBurn`] — the named objective's burn rate (the
//!   worse of fast and slow) from an [`SloReport`].
//!
//! A rule with no matching data (unknown family, empty history, zero
//! denominator) reads as *no value* and the condition is false — absence
//! of evidence never pages.
//!
//! # State machine
//!
//! ```text
//!            cond true                 held for `for_secs`
//! Inactive ------------> Pending --------------------------> Firing
//!    ^                      |  cond false                       |
//!    |                      v                                   v
//!    +------------------ Inactive            cond false --> Resolved
//!    ^                                                          |
//!    +------------- cond false (one step later) ----------------+
//! ```
//!
//! Every transition is an [`AlertEvent`] in the bounded timeline; states
//! export as the `richnote_alert_state` gauge family (0 = inactive,
//! 1 = pending, 2 = firing, 3 = resolved).

use crate::history::{HistoryQuery, MetricsHistory};
use crate::registry::{GaugeHandle, Registry, RegistrySnapshot};
use crate::slo::SloReport;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Transitions kept in the timeline before the oldest are evicted.
const TIMELINE_CAPACITY: usize = 256;

/// What a rule measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlertRuleKind {
    /// The family's newest value — or, with `quantile`, a windowed
    /// histogram quantile — compared against `above`.
    Threshold {
        /// Metric family, e.g. `richnote_stage_duration_us`.
        family: String,
        /// Label pairs a series must carry to match (empty = all).
        labels: Vec<(String, String)>,
        /// Histogram quantile to read (0.5, 0.95, or 0.99); `None` reads
        /// the newest absolute value instead.
        quantile: Option<f64>,
        /// Window length in seconds (used for quantiles).
        window_secs: f64,
        /// Condition: measured value strictly above this fires.
        above: f64,
    },
    /// The family's windowed delta per second, or — with `per` — its
    /// windowed delta divided by the `per` family's windowed delta.
    Rate {
        /// Numerator family, e.g. `richnote_queue_dropped_total`.
        family: String,
        /// Label pairs the numerator series must carry (empty = all).
        labels: Vec<(String, String)>,
        /// Window length in seconds.
        window_secs: f64,
        /// Denominator family; `None` means per-second rate.
        per: Option<String>,
        /// Condition: measured value strictly above this fires.
        above: f64,
    },
    /// The named SLO objective's burn rate (max of fast and slow burn).
    SloBurn {
        /// Objective name, e.g. `shed_rate`.
        objective: String,
        /// Condition: burn rate strictly above this fires.
        above: f64,
    },
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Unique rule name; doubles as the `rule` label of
    /// `richnote_alert_state`.
    pub name: String,
    /// What the rule measures and the threshold.
    pub kind: AlertRuleKind,
    /// How long the condition must hold before `pending` promotes to
    /// `firing` (0 fires on the evaluation that first sees it).
    pub for_secs: f64,
}

impl AlertRule {
    /// Validates the rule, returning the first problem found.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("alert rule name must not be empty".to_string());
        }
        if self.for_secs.is_nan() || self.for_secs < 0.0 {
            return Err(format!("alert rule {}: for_secs must be >= 0", self.name));
        }
        match &self.kind {
            AlertRuleKind::Threshold { family, quantile, window_secs, .. } => {
                if family.is_empty() {
                    return Err(format!("alert rule {}: family must not be empty", self.name));
                }
                if window_secs.is_nan() || *window_secs <= 0.0 {
                    return Err(format!("alert rule {}: window_secs must be > 0", self.name));
                }
                if let Some(q) = quantile {
                    if quantile_of(*q).is_none() {
                        return Err(format!(
                            "alert rule {}: quantile {q} is not one of 0.5, 0.95, 0.99",
                            self.name
                        ));
                    }
                }
            }
            AlertRuleKind::Rate { family, window_secs, per, .. } => {
                if family.is_empty() {
                    return Err(format!("alert rule {}: family must not be empty", self.name));
                }
                if window_secs.is_nan() || *window_secs <= 0.0 {
                    return Err(format!("alert rule {}: window_secs must be > 0", self.name));
                }
                if per.as_deref() == Some("") {
                    return Err(format!("alert rule {}: per must not be empty", self.name));
                }
            }
            AlertRuleKind::SloBurn { objective, .. } => {
                if objective.is_empty() {
                    return Err(format!("alert rule {}: objective must not be empty", self.name));
                }
            }
        }
        Ok(())
    }

    /// The rule's threshold value.
    pub fn threshold(&self) -> f64 {
        match &self.kind {
            AlertRuleKind::Threshold { above, .. }
            | AlertRuleKind::Rate { above, .. }
            | AlertRuleKind::SloBurn { above, .. } => *above,
        }
    }
}

/// Which of the three supported quantiles `q` names.
fn quantile_of(q: f64) -> Option<Quantile> {
    if (q - 0.5).abs() < 1e-9 {
        Some(Quantile::P50)
    } else if (q - 0.95).abs() < 1e-9 {
        Some(Quantile::P95)
    } else if (q - 0.99).abs() < 1e-9 {
        Some(Quantile::P99)
    } else {
        None
    }
}

enum Quantile {
    P50,
    P95,
    P99,
}

/// Lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Condition false; nothing to report.
    Inactive,
    /// Condition true but not yet held for `for_secs`.
    Pending,
    /// Condition held long enough; the alert is live.
    Firing,
    /// Condition cleared after firing; shown once, then inactive.
    Resolved,
}

impl AlertState {
    /// Lowercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Gauge encoding (0 = inactive, 1 = pending, 2 = firing,
    /// 3 = resolved).
    pub fn gauge_value(self) -> f64 {
        match self {
            AlertState::Inactive => 0.0,
            AlertState::Pending => 1.0,
            AlertState::Firing => 2.0,
            AlertState::Resolved => 3.0,
        }
    }
}

/// One state transition in the alert timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Evaluation time (caller-supplied seconds).
    pub at_secs: f64,
    /// The rule that transitioned.
    pub rule: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Measured value at the transition (`None` when no data matched).
    pub value: Option<f64>,
}

/// Point-in-time view of one rule, served over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertSnapshot {
    /// Rule name.
    pub rule: String,
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered (caller-supplied seconds).
    pub since_secs: f64,
    /// Most recently measured value (`None` when no data matched).
    pub value: Option<f64>,
    /// The rule's threshold.
    pub threshold: f64,
}

/// Per-rule runtime bookkeeping.
struct RuleRuntime {
    state: AlertState,
    since_secs: f64,
    value: Option<f64>,
    gauge: GaugeHandle,
}

/// Evaluates a rule set over a history (and optional SLO report) in
/// caller-supplied time, tracking per-rule state, a bounded timeline of
/// transitions, and the `richnote_alert_state` gauge family.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    runtime: Vec<RuleRuntime>,
    timeline: VecDeque<AlertEvent>,
    events_dropped: u64,
    registry: Registry,
}

impl AlertEngine {
    /// An engine over `rules`. Invalid rules are the caller's problem —
    /// validate with [`AlertRule::validate`] at config load.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let mut registry = Registry::new();
        let runtime = rules
            .iter()
            .map(|r| RuleRuntime {
                state: AlertState::Inactive,
                since_secs: 0.0,
                value: None,
                gauge: registry.gauge(
                    "richnote_alert_state",
                    "Alert-rule state (0 inactive, 1 pending, 2 firing, 3 resolved)",
                    &[("rule", r.name.as_str())],
                ),
            })
            .collect();
        AlertEngine { rules, runtime, timeline: VecDeque::new(), events_dropped: 0, registry }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rules currently firing.
    pub fn firing_count(&self) -> u64 {
        self.runtime.iter().filter(|r| r.state == AlertState::Firing).count() as u64
    }

    /// Rules currently pending.
    pub fn pending_count(&self) -> u64 {
        self.runtime.iter().filter(|r| r.state == AlertState::Pending).count() as u64
    }

    /// The bounded transition timeline, oldest first.
    pub fn timeline(&self) -> impl Iterator<Item = &AlertEvent> {
        self.timeline.iter()
    }

    /// Transitions evicted from the timeline since creation.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Point-in-time view of every rule.
    pub fn snapshot(&self) -> Vec<AlertSnapshot> {
        self.rules
            .iter()
            .zip(&self.runtime)
            .map(|(rule, rt)| AlertSnapshot {
                rule: rule.name.clone(),
                state: rt.state,
                since_secs: rt.since_secs,
                value: rt.value,
                threshold: rule.threshold(),
            })
            .collect()
    }

    /// The `richnote_alert_state` gauge family as a snapshot, mergeable
    /// into a daemon-wide registry snapshot.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Evaluates every rule at `now_secs`, returning the transitions this
    /// step produced (also appended to the timeline).
    pub fn evaluate(
        &mut self,
        now_secs: f64,
        history: &MetricsHistory,
        slo: Option<&SloReport>,
    ) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for (rule, rt) in self.rules.iter().zip(self.runtime.iter_mut()) {
            let value = measure(&rule.kind, history, slo);
            rt.value = value;
            let active = value.is_some_and(|v| v > rule.threshold());
            let mut push = |from: AlertState, to: AlertState, since: &mut f64| {
                events.push(AlertEvent {
                    at_secs: now_secs,
                    rule: rule.name.clone(),
                    from,
                    to,
                    value,
                });
                *since = now_secs;
            };
            match (rt.state, active) {
                (AlertState::Inactive | AlertState::Resolved, true) => {
                    push(rt.state, AlertState::Pending, &mut rt.since_secs);
                    rt.state = AlertState::Pending;
                    // A zero (or already-elapsed) hold promotes in the
                    // same evaluation; both transitions land in the
                    // timeline.
                    if now_secs - rt.since_secs >= rule.for_secs {
                        push(AlertState::Pending, AlertState::Firing, &mut rt.since_secs);
                        rt.state = AlertState::Firing;
                    }
                }
                (AlertState::Pending, true) => {
                    if now_secs - rt.since_secs >= rule.for_secs {
                        push(AlertState::Pending, AlertState::Firing, &mut rt.since_secs);
                        rt.state = AlertState::Firing;
                    }
                }
                (AlertState::Pending, false) => {
                    push(AlertState::Pending, AlertState::Inactive, &mut rt.since_secs);
                    rt.state = AlertState::Inactive;
                }
                (AlertState::Firing, false) => {
                    push(AlertState::Firing, AlertState::Resolved, &mut rt.since_secs);
                    rt.state = AlertState::Resolved;
                }
                (AlertState::Resolved, false) => {
                    push(AlertState::Resolved, AlertState::Inactive, &mut rt.since_secs);
                    rt.state = AlertState::Inactive;
                }
                (AlertState::Inactive, false) | (AlertState::Firing, true) => {}
            }
            self.registry.set_gauge(rt.gauge, rt.state.gauge_value());
        }
        for e in &events {
            if self.timeline.len() == TIMELINE_CAPACITY {
                self.timeline.pop_front();
                self.events_dropped += 1;
            }
            self.timeline.push_back(e.clone());
        }
        events
    }
}

/// Measures one rule against the history/SLO inputs; `None` when no data
/// matches (unknown family, empty history, zero denominator, unknown
/// objective).
fn measure(kind: &AlertRuleKind, history: &MetricsHistory, slo: Option<&SloReport>) -> Option<f64> {
    match kind {
        AlertRuleKind::Threshold { family, labels, quantile, window_secs, .. } => {
            let r = history.query(&HistoryQuery {
                family: family.clone(),
                labels: labels.clone(),
                window_secs: *window_secs,
            });
            r.kind?;
            match quantile.map(quantile_of) {
                Some(q) => {
                    let qs = r.total.quantiles?;
                    match q? {
                        Quantile::P50 => Some(qs.p50 as f64),
                        Quantile::P95 => Some(qs.p95 as f64),
                        Quantile::P99 => Some(qs.p99 as f64),
                    }
                }
                None => Some(r.total.last),
            }
        }
        AlertRuleKind::Rate { family, labels, window_secs, per, .. } => {
            let num = history.query(&HistoryQuery {
                family: family.clone(),
                labels: labels.clone(),
                window_secs: *window_secs,
            });
            num.kind?;
            match per {
                Some(denom_family) => {
                    let den = history.query(&HistoryQuery {
                        family: denom_family.clone(),
                        labels: Vec::new(),
                        window_secs: *window_secs,
                    });
                    den.kind?;
                    if den.total.delta > 0.0 {
                        Some(num.total.delta / den.total.delta)
                    } else {
                        None
                    }
                }
                None => Some(num.total.rate),
            }
        }
        AlertRuleKind::SloBurn { objective, .. } => {
            let report = slo?;
            let v = report.verdicts.iter().find(|v| v.name == *objective)?;
            Some(v.fast_burn.max(v.slow_burn))
        }
    }
}

/// The stock rule set the daemon (and simulator) start from: shed rate,
/// ack p99 latency, and ingest-queue contention.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "shed_rate".to_string(),
            kind: AlertRuleKind::Rate {
                family: "richnote_queue_dropped_total".to_string(),
                labels: Vec::new(),
                window_secs: 60.0,
                per: Some("richnote_pubs_total".to_string()),
                above: 0.05,
            },
            for_secs: 0.0,
        },
        AlertRule {
            name: "ack_p99".to_string(),
            kind: AlertRuleKind::Threshold {
                family: "richnote_stage_duration_us".to_string(),
                labels: vec![("stage".to_string(), "ack".to_string())],
                quantile: Some(0.99),
                window_secs: 60.0,
                above: 50_000.0,
            },
            for_secs: 30.0,
        },
        AlertRule {
            name: "queue_contention".to_string(),
            kind: AlertRuleKind::Rate {
                family: "richnote_queue_contended_total".to_string(),
                labels: Vec::new(),
                window_secs: 60.0,
                per: Some("richnote_pubs_total".to_string()),
                above: 0.25,
            },
            for_secs: 30.0,
        },
    ]
}

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Seconds a behind-schedule shard may make no round progress before
    /// it is declared stalled.
    pub stall_secs: f64,
    /// Minimum CPU-time advance (µs) since the last round progress for a
    /// stall to count as *stalled* (spinning) rather than *starved*.
    pub min_cpu_delta_us: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { stall_secs: 10.0, min_cpu_delta_us: 1_000 }
    }
}

/// One shard's vitals as sampled by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardProbe {
    /// Shard index.
    pub shard: usize,
    /// Whether the shard worker answered at all (a dead worker is
    /// *wedged*: its queue accepts nothing and its rounds never advance).
    pub alive: bool,
    /// Rounds the shard has completed.
    pub rounds_done: u64,
    /// Rounds the shard has been asked to complete.
    pub rounds_expected: u64,
    /// Cumulative shard-thread CPU time (µs) from the rsrc counters.
    pub cpu_us: u64,
}

/// One shard's diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogVerdict {
    /// Shard index.
    pub shard: usize,
    /// `wedged` (worker dead), `stalled` (behind schedule, burning CPU,
    /// no progress), or `starved` (behind schedule, no CPU either).
    pub problem: String,
    /// Seconds since the shard last made round progress.
    pub stalled_secs: f64,
    /// Rounds completed at diagnosis.
    pub rounds_done: u64,
    /// Rounds expected at diagnosis.
    pub rounds_expected: u64,
}

/// Per-shard progress memory.
struct ShardMemory {
    last_rounds: u64,
    last_progress_at: f64,
    cpu_at_progress: u64,
    seen: bool,
}

/// Detects shards whose round clock stops while wallclock advances.
///
/// Fed with [`ShardProbe`]s at whatever cadence the caller polls;
/// verdicts are recomputed per observation, so a recovered shard simply
/// stops appearing.
pub struct Watchdog {
    cfg: WatchdogConfig,
    shards: Vec<ShardMemory>,
}

impl Watchdog {
    /// A watchdog over `shards` shards.
    pub fn new(shards: usize, cfg: WatchdogConfig) -> Self {
        let shards = (0..shards)
            .map(|_| ShardMemory {
                last_rounds: 0,
                last_progress_at: 0.0,
                cpu_at_progress: 0,
                seen: false,
            })
            .collect();
        Watchdog { cfg, shards }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Ingests one round of probes at `now_secs` and returns every shard
    /// currently in trouble (empty = all healthy).
    pub fn observe(&mut self, now_secs: f64, probes: &[ShardProbe]) -> Vec<WatchdogVerdict> {
        let mut verdicts = Vec::new();
        for p in probes {
            let Some(mem) = self.shards.get_mut(p.shard) else { continue };
            if !p.alive {
                // `last_progress_at` starts at 0.0, so a shard that has
                // been dead since boot accumulates stall time from t=0.
                verdicts.push(WatchdogVerdict {
                    shard: p.shard,
                    problem: "wedged".to_string(),
                    stalled_secs: now_secs - mem.last_progress_at,
                    rounds_done: p.rounds_done,
                    rounds_expected: p.rounds_expected,
                });
                continue;
            }
            if !mem.seen || p.rounds_done > mem.last_rounds || p.rounds_done >= p.rounds_expected {
                // First sight, real progress, or fully caught up: all
                // reset the stall clock. An idle shard with no work
                // outstanding is healthy, not stalled.
                mem.seen = true;
                mem.last_rounds = p.rounds_done;
                mem.last_progress_at = now_secs;
                mem.cpu_at_progress = p.cpu_us;
                continue;
            }
            let stalled_secs = now_secs - mem.last_progress_at;
            if stalled_secs >= self.cfg.stall_secs {
                let cpu_delta = p.cpu_us.saturating_sub(mem.cpu_at_progress);
                let problem =
                    if cpu_delta >= self.cfg.min_cpu_delta_us { "stalled" } else { "starved" };
                verdicts.push(WatchdogVerdict {
                    shard: p.shard,
                    problem: problem.to_string(),
                    stalled_secs,
                    rounds_done: p.rounds_done,
                    rounds_expected: p.rounds_expected,
                });
            }
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::slo::{SloEngine, SloSpec};

    /// A snapshot with the given cumulative drop/pub counters and one
    /// ack-stage histogram observation set.
    fn snap(dropped: u64, pubs: u64, ack_samples: &[u64]) -> RegistrySnapshot {
        let mut reg = Registry::new();
        let d = reg.counter("richnote_queue_dropped_total", "drops", &[("shard", "0")]);
        let p = reg.counter("richnote_pubs_total", "pubs", &[("shard", "0")]);
        let h = reg.histogram(
            "richnote_stage_duration_us",
            "stages",
            &[("shard", "server"), ("stage", "ack")],
        );
        reg.set_counter(d, dropped);
        reg.set_counter(p, pubs);
        for &s in ack_samples {
            reg.observe_us(h, s);
        }
        reg.snapshot()
    }

    fn shed_rule(for_secs: f64) -> AlertRule {
        AlertRule {
            name: "shed_rate".to_string(),
            kind: AlertRuleKind::Rate {
                family: "richnote_queue_dropped_total".to_string(),
                labels: Vec::new(),
                window_secs: 60.0,
                per: Some("richnote_pubs_total".to_string()),
                above: 0.05,
            },
            for_secs,
        }
    }

    #[test]
    fn ratio_rule_walks_pending_firing_resolved() {
        let mut h = MetricsHistory::new(16);
        let mut e = AlertEngine::new(vec![shed_rule(10.0)]);

        h.record(0.0, snap(0, 100, &[]));
        assert!(e.evaluate(0.0, &h, None).is_empty());

        // 30% of new pubs shed: pending at t=10.
        h.record(10.0, snap(30, 200, &[]));
        let ev = e.evaluate(10.0, &h, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].to, AlertState::Pending);
        assert_eq!(e.pending_count(), 1);

        // Still shedding at t=20 (held >= for_secs): firing.
        h.record(20.0, snap(60, 300, &[]));
        let ev = e.evaluate(20.0, &h, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].to, AlertState::Firing);
        assert_eq!(e.firing_count(), 1);

        // Shedding stops (window still sees old drops at t=25, so move
        // past the window): resolved, then inactive.
        h.record(90.0, snap(60, 2_000, &[]));
        let ev = e.evaluate(90.0, &h, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].from, AlertState::Firing);
        assert_eq!(ev[0].to, AlertState::Resolved);
        h.record(100.0, snap(60, 2_100, &[]));
        let ev = e.evaluate(100.0, &h, None);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].to, AlertState::Inactive);
        assert_eq!(e.firing_count(), 0);
    }

    #[test]
    fn zero_hold_fires_in_one_evaluation_with_both_transitions() {
        let mut h = MetricsHistory::new(16);
        let mut e = AlertEngine::new(vec![shed_rule(0.0)]);
        h.record(0.0, snap(0, 100, &[]));
        e.evaluate(0.0, &h, None);
        h.record(5.0, snap(50, 200, &[]));
        let ev = e.evaluate(5.0, &h, None);
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].from, ev[0].to), (AlertState::Inactive, AlertState::Pending));
        assert_eq!((ev[1].from, ev[1].to), (AlertState::Pending, AlertState::Firing));
    }

    #[test]
    fn pending_cancels_when_the_condition_clears() {
        let mut h = MetricsHistory::new(16);
        let mut e = AlertEngine::new(vec![shed_rule(60.0)]);
        h.record(0.0, snap(0, 100, &[]));
        e.evaluate(0.0, &h, None);
        h.record(10.0, snap(30, 200, &[]));
        assert_eq!(e.evaluate(10.0, &h, None)[0].to, AlertState::Pending);
        // Window slides past the drops before the hold elapses.
        h.record(80.0, snap(30, 1_000, &[]));
        let ev = e.evaluate(80.0, &h, None);
        assert_eq!((ev[0].from, ev[0].to), (AlertState::Pending, AlertState::Inactive));
    }

    #[test]
    fn quantile_threshold_reads_windowed_p99() {
        let mut h = MetricsHistory::new(16);
        let rule = AlertRule {
            name: "ack_p99".to_string(),
            kind: AlertRuleKind::Threshold {
                family: "richnote_stage_duration_us".to_string(),
                labels: vec![("stage".to_string(), "ack".to_string())],
                quantile: Some(0.99),
                window_secs: 60.0,
                above: 50_000.0,
            },
            for_secs: 0.0,
        };
        let mut e = AlertEngine::new(vec![rule]);
        h.record(0.0, snap(0, 10, &[100, 200]));
        assert!(e.evaluate(0.0, &h, None).is_empty(), "fast acks stay quiet");
        h.record(10.0, snap(0, 20, &[100, 200, 900_000, 800_000, 700_000]));
        let ev = e.evaluate(10.0, &h, None);
        assert_eq!(ev.last().unwrap().to, AlertState::Firing);
        let snapshot = e.snapshot();
        assert!(snapshot[0].value.unwrap() > 50_000.0, "{snapshot:?}");
    }

    #[test]
    fn absent_family_and_zero_denominator_read_as_no_data() {
        let mut h = MetricsHistory::new(4);
        let mut e = AlertEngine::new(vec![
            AlertRule {
                name: "ghost".to_string(),
                kind: AlertRuleKind::Threshold {
                    family: "richnote_does_not_exist".to_string(),
                    labels: Vec::new(),
                    quantile: None,
                    window_secs: 60.0,
                    above: 0.0,
                },
                for_secs: 0.0,
            },
            shed_rule(0.0),
        ]);
        // Empty history: nothing fires.
        assert!(e.evaluate(0.0, &h, None).is_empty());
        // Drops grow but pubs do not: denominator is 0, so no value.
        h.record(0.0, snap(0, 100, &[]));
        e.evaluate(0.0, &h, None);
        h.record(10.0, snap(50, 100, &[]));
        assert!(e.evaluate(10.0, &h, None).is_empty());
        assert_eq!(e.snapshot()[0].value, None);
    }

    #[test]
    fn slo_burn_rule_reads_the_named_objective() {
        let mut engine = SloEngine::new(60, 6);
        let idx = engine.objective(SloSpec {
            name: "shed_rate".to_string(),
            target: 0.001,
            fast_burn_threshold: 6.0,
        });
        engine.record(idx, 50, 50);
        let report = engine.evaluate();
        let h = MetricsHistory::new(4);
        let mut e = AlertEngine::new(vec![AlertRule {
            name: "budget_burn".to_string(),
            kind: AlertRuleKind::SloBurn { objective: "shed_rate".to_string(), above: 6.0 },
            for_secs: 0.0,
        }]);
        let ev = e.evaluate(0.0, &h, Some(&report));
        assert_eq!(ev.last().unwrap().to, AlertState::Firing);
        // Unknown objective is no data, not a crash.
        let mut e2 = AlertEngine::new(vec![AlertRule {
            name: "ghost".to_string(),
            kind: AlertRuleKind::SloBurn { objective: "nope".to_string(), above: 0.0 },
            for_secs: 0.0,
        }]);
        assert!(e2.evaluate(0.0, &h, Some(&report)).is_empty());
    }

    #[test]
    fn same_inputs_produce_byte_identical_timelines() {
        let run = || {
            let mut h = MetricsHistory::new(16);
            let mut e = AlertEngine::new(default_rules());
            for t in 0..12u64 {
                let drops = if (4..8).contains(&t) {
                    t * 40
                } else {
                    if t >= 8 {
                        280
                    } else {
                        0
                    }
                };
                h.record(t as f64 * 10.0, snap(drops, 100 * (t + 1), &[50]));
                e.evaluate(t as f64 * 10.0, &h, None);
            }
            serde_json::to_string(&e.timeline().cloned().collect::<Vec<_>>()).unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"Firing\""), "{a}");
    }

    #[test]
    fn alert_state_gauges_track_states() {
        let mut h = MetricsHistory::new(16);
        let mut e = AlertEngine::new(vec![shed_rule(0.0)]);
        h.record(0.0, snap(0, 100, &[]));
        e.evaluate(0.0, &h, None);
        h.record(10.0, snap(90, 200, &[]));
        e.evaluate(10.0, &h, None);
        let snap = e.registry_snapshot();
        let fam = snap.family("richnote_alert_state").expect("gauge family");
        assert_eq!(fam.series.len(), 1);
        match fam.series[0].value {
            crate::registry::MetricValue::Gauge(v) => assert_eq!(v, 2.0),
            ref other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn timeline_is_bounded() {
        let mut h = MetricsHistory::new(4);
        let mut e = AlertEngine::new(vec![shed_rule(0.0)]);
        let mut pubs = 100u64;
        let mut drops = 0u64;
        for t in 0..400u64 {
            // Alternate shedding on and off so every step transitions.
            if t % 2 == 0 {
                drops += 100;
            }
            pubs += 100;
            h.record(t as f64 * 100.0, snap(drops, pubs, &[]));
            e.evaluate(t as f64 * 100.0, &h, None);
        }
        assert!(e.timeline().count() <= TIMELINE_CAPACITY);
        assert!(e.events_dropped() > 0);
    }

    #[test]
    fn rule_validation_names_the_problem() {
        let mut r = shed_rule(0.0);
        assert!(r.validate().is_ok());
        r.name = String::new();
        assert!(r.validate().unwrap_err().contains("name"));
        let bad_q = AlertRule {
            name: "q".to_string(),
            kind: AlertRuleKind::Threshold {
                family: "f".to_string(),
                labels: Vec::new(),
                quantile: Some(0.42),
                window_secs: 60.0,
                above: 1.0,
            },
            for_secs: 0.0,
        };
        assert!(bad_q.validate().unwrap_err().contains("quantile"));
        let bad_w = AlertRule {
            name: "w".to_string(),
            kind: AlertRuleKind::Rate {
                family: "f".to_string(),
                labels: Vec::new(),
                window_secs: 0.0,
                per: None,
                above: 1.0,
            },
            for_secs: 0.0,
        };
        assert!(bad_w.validate().unwrap_err().contains("window_secs"));
    }

    #[test]
    fn rules_roundtrip_through_json() {
        let rules = default_rules();
        let json = serde_json::to_string(&rules).unwrap();
        let back: Vec<AlertRule> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rules);
    }

    fn probe(shard: usize, alive: bool, done: u64, expected: u64, cpu: u64) -> ShardProbe {
        ShardProbe { shard, alive, rounds_done: done, rounds_expected: expected, cpu_us: cpu }
    }

    #[test]
    fn watchdog_flags_wedged_shards_immediately() {
        let mut w = Watchdog::new(2, WatchdogConfig::default());
        let v = w.observe(0.0, &[probe(0, true, 1, 1, 10), probe(1, false, 0, 1, 0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].shard, 1);
        assert_eq!(v[0].problem, "wedged");
    }

    #[test]
    fn watchdog_separates_stalled_from_starved() {
        let cfg = WatchdogConfig { stall_secs: 5.0, min_cpu_delta_us: 1_000 };
        let mut w = Watchdog::new(2, cfg);
        // t=0: both behind but freshly observed.
        w.observe(0.0, &[probe(0, true, 3, 10, 100), probe(1, true, 3, 10, 100)]);
        // t=10: neither advanced; shard 0 burned CPU (stalled), shard 1
        // got none (starved).
        let v = w.observe(10.0, &[probe(0, true, 3, 10, 90_100), probe(1, true, 3, 10, 100)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].problem, "stalled");
        assert_eq!(v[1].problem, "starved");
        assert!((v[0].stalled_secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn watchdog_ignores_idle_and_progressing_shards() {
        let cfg = WatchdogConfig { stall_secs: 5.0, min_cpu_delta_us: 1_000 };
        let mut w = Watchdog::new(2, cfg);
        w.observe(0.0, &[probe(0, true, 5, 5, 10), probe(1, true, 2, 10, 10)]);
        // Shard 0 is caught up (idle is healthy); shard 1 made progress.
        let v = w.observe(20.0, &[probe(0, true, 5, 5, 10), probe(1, true, 7, 10, 10_000)]);
        assert!(v.is_empty(), "{v:?}");
        // A shard that later stops while behind is caught.
        let v = w.observe(40.0, &[probe(0, true, 5, 5, 10), probe(1, true, 7, 10, 99_000)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].shard, 1);
        assert_eq!(v[0].problem, "stalled");
        // Recovery: progress resumes, the verdict disappears.
        let v = w.observe(50.0, &[probe(0, true, 5, 5, 10), probe(1, true, 10, 10, 100_000)]);
        assert!(v.is_empty(), "{v:?}");
    }
}
