//! A fixed-memory ring of registry snapshots with windowed queries.
//!
//! [`MetricsHistory`] keeps the last `capacity` [`RegistrySnapshot`]s,
//! each stamped with a caller-supplied timestamp (seconds). Like
//! [`crate::slo`], time is driven explicitly — the daemon stamps samples
//! with virtual tick time (`rounds × round_secs`), so a replayed capture
//! produces byte-identical history, and the simulator can feed synthetic
//! clocks.
//!
//! [`MetricsHistory::query`] answers "what happened to this family over
//! the last N seconds": per-series and aggregate deltas, rates, a
//! per-interval rate trail (for sparklines), and — for histogram
//! families — windowed p50/p95/p99 computed over bucket-count deltas.
//!
//! # Memory
//!
//! The ring owns at most `capacity` snapshots; recording a snapshot once
//! the ring is full drops the oldest, so steady-state memory is bounded
//! by `capacity × snapshot size` and the ring itself performs no
//! steady-state allocation (it takes ownership of snapshots the caller
//! already built). Queries are cold-path and allocate their results.

use crate::hist::{Log2Histogram, BUCKETS};
use crate::registry::{MetricKind, MetricValue, RegistrySnapshot, SeriesSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default number of snapshots retained.
pub const DEFAULT_HISTORY_CAPACITY: usize = 128;

/// A windowed query: which counter family, an optional label filter
/// (every listed pair must be present on a series for it to match), and
/// how far back to look from the newest sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryQuery {
    /// Family name, e.g. `richnote_utility_total`.
    pub family: String,
    /// Label pairs a series must carry to match (empty = all series).
    pub labels: Vec<(String, String)>,
    /// Window length in seconds, measured back from the newest sample.
    pub window_secs: f64,
}

/// Windowed quantiles of a histogram family (µs), computed over the
/// bucket-count deltas inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowQuantiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// One series (or the aggregate) over the queried window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesWindow {
    /// The series' labels (for the aggregate: the query's label filter).
    pub labels: Vec<(String, String)>,
    /// Value at the window's baseline sample (counter/gauge value;
    /// histogram sample count).
    pub first: f64,
    /// Value at the newest sample.
    pub last: f64,
    /// `last - first` (clamped at 0 for counters and histogram counts).
    pub delta: f64,
    /// `delta` divided by the window's covered span (0 when the span is
    /// empty).
    pub rate: f64,
    /// Per-interval rates between consecutive samples, oldest first —
    /// the sparkline trail.
    pub points: Vec<f64>,
    /// Windowed quantiles; present only for histogram families.
    pub quantiles: Option<WindowQuantiles>,
}

/// Answer to a [`HistoryQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Echo of the queried family.
    pub family: String,
    /// The family's metric kind (`None` when the family is unknown).
    pub kind: Option<MetricKind>,
    /// Timestamp of the baseline sample used (seconds).
    pub from_secs: f64,
    /// Timestamp of the newest sample (seconds).
    pub to_secs: f64,
    /// Number of snapshots consulted (baseline included).
    pub samples: u64,
    /// Aggregate over every matching series.
    pub total: SeriesWindow,
    /// Each matching series individually, sorted by labels.
    pub series: Vec<SeriesWindow>,
}

impl QueryResult {
    fn empty(family: &str) -> Self {
        QueryResult {
            family: family.to_string(),
            kind: None,
            from_secs: 0.0,
            to_secs: 0.0,
            samples: 0,
            total: SeriesWindow::zero(Vec::new()),
            series: Vec::new(),
        }
    }
}

impl SeriesWindow {
    fn zero(labels: Vec<(String, String)>) -> Self {
        SeriesWindow {
            labels,
            first: 0.0,
            last: 0.0,
            delta: 0.0,
            rate: 0.0,
            points: Vec::new(),
            quantiles: None,
        }
    }
}

/// The history ring; see the module docs.
#[derive(Debug, Clone)]
pub struct MetricsHistory {
    capacity: usize,
    samples: VecDeque<(f64, RegistrySnapshot)>,
}

impl MetricsHistory {
    /// A ring retaining at most `capacity` snapshots (minimum 2, so a
    /// delta is always computable once two ticks have happened).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        MetricsHistory { capacity, samples: VecDeque::with_capacity(capacity) }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no snapshot has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<(f64, &RegistrySnapshot)> {
        self.samples.back().map(|(t, s)| (*t, s))
    }

    /// Records a snapshot at `now_secs` (caller-supplied time). Time must
    /// be non-decreasing: a sample at or before the newest retained
    /// timestamp *replaces* the newest sample instead of pushing, so the
    /// ring stays strictly increasing in time (re-ticking round 0, or a
    /// paused virtual clock, never corrupts window arithmetic).
    pub fn record(&mut self, now_secs: f64, snapshot: RegistrySnapshot) {
        if let Some((last, newest)) = self.samples.back_mut() {
            if now_secs <= *last {
                *newest = snapshot;
                return;
            }
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((now_secs, snapshot));
    }

    /// Answers a windowed query; see [`HistoryQuery`] and [`QueryResult`].
    ///
    /// The window covers `[to - window_secs, to]` where `to` is the newest
    /// sample's timestamp. The newest sample *before* the window (when one
    /// exists) serves as the baseline, so the delta spans the full window
    /// rather than starting at the first in-window sample. Series absent
    /// from older snapshots (cohorts registered later) count as 0 there,
    /// which matches counter semantics.
    pub fn query(&self, q: &HistoryQuery) -> QueryResult {
        let Some((to, newest)) = self.latest() else {
            return QueryResult::empty(&q.family);
        };
        let from = to - q.window_secs.max(0.0);
        // Baseline: the sample at the window start when one lands there
        // exactly, otherwise the newest sample before the window (so the
        // delta covers the full window, never less).
        let start = self.samples.partition_point(|(t, _)| *t < from);
        let base = if self.samples.get(start).is_some_and(|(t, _)| *t == from) {
            start
        } else {
            start.saturating_sub(1)
        };
        let used: Vec<&(f64, RegistrySnapshot)> = self.samples.iter().skip(base).collect();

        let Some(fam) = newest.family(&q.family) else {
            let mut r = QueryResult::empty(&q.family);
            r.from_secs = used[0].0;
            r.to_secs = to;
            r.samples = used.len() as u64;
            return r;
        };
        let kind = fam.kind;
        let matching: Vec<&SeriesSnapshot> =
            fam.series.iter().filter(|s| q.labels.iter().all(|p| s.labels.contains(p))).collect();

        let times: Vec<f64> = used.iter().map(|(t, _)| *t).collect();
        let mut series_out = Vec::with_capacity(matching.len());
        let mut total_values = vec![0.0f64; times.len()];
        let mut total_bucket_delta = vec![0u64; BUCKETS];
        let mut total_span_max = 0u64;
        for s in &matching {
            let values: Vec<f64> = used
                .iter()
                .map(|(_, snap)| scalar_value(snap, &q.family, &s.labels).unwrap_or(0.0))
                .collect();
            for (tv, v) in total_values.iter_mut().zip(&values) {
                *tv += v;
            }
            let quantiles = if kind == MetricKind::Histogram {
                let newest_hist = hist_value(newest, &q.family, &s.labels);
                let base_hist = hist_value(&used[0].1, &q.family, &s.labels);
                let delta = bucket_delta(newest_hist, base_hist);
                for (td, d) in total_bucket_delta.iter_mut().zip(&delta) {
                    *td += d;
                }
                if let Some(h) = newest_hist {
                    total_span_max = total_span_max.max(h.max_us());
                }
                Some(delta_quantiles(&delta, newest_hist))
            } else {
                None
            };
            series_out.push(window_of(s.labels.clone(), &times, &values, kind, quantiles));
        }

        let total_quantiles = (kind == MetricKind::Histogram)
            .then(|| quantiles_from_counts(&total_bucket_delta, total_span_max));
        let mut total = window_of(q.labels.clone(), &times, &total_values, kind, total_quantiles);
        if matching.is_empty() {
            total = SeriesWindow::zero(q.labels.clone());
        }

        QueryResult {
            family: q.family.clone(),
            kind: Some(kind),
            from_secs: times[0],
            to_secs: to,
            samples: times.len() as u64,
            total,
            series: series_out,
        }
    }
}

/// A series' value in one snapshot as a scalar: counter and gauge values
/// directly, a histogram's sample count. `None` when absent.
fn scalar_value(snap: &RegistrySnapshot, family: &str, labels: &[(String, String)]) -> Option<f64> {
    let fam = snap.family(family)?;
    let i = fam.series.binary_search_by(|s| s.labels.as_slice().cmp(labels)).ok()?;
    Some(match &fam.series[i].value {
        MetricValue::Counter(v) => *v as f64,
        MetricValue::Gauge(v) => *v,
        MetricValue::Histogram(h) => h.count() as f64,
    })
}

fn hist_value<'a>(
    snap: &'a RegistrySnapshot,
    family: &str,
    labels: &[(String, String)],
) -> Option<&'a Log2Histogram> {
    let fam = snap.family(family)?;
    let i = fam.series.binary_search_by(|s| s.labels.as_slice().cmp(labels)).ok()?;
    match &fam.series[i].value {
        MetricValue::Histogram(h) => Some(h),
        _ => None,
    }
}

/// Per-bucket count growth between the baseline and the newest histogram
/// (a missing baseline counts as empty).
fn bucket_delta(newest: Option<&Log2Histogram>, base: Option<&Log2Histogram>) -> Vec<u64> {
    let mut delta = vec![0u64; BUCKETS];
    let Some(new) = newest else {
        return delta;
    };
    for (i, d) in delta.iter_mut().enumerate() {
        let old = base.map_or(0, |b| b.bucket_counts()[i]);
        *d = new.bucket_counts()[i].saturating_sub(old);
    }
    delta
}

fn delta_quantiles(delta: &[u64], newest: Option<&Log2Histogram>) -> WindowQuantiles {
    quantiles_from_counts(delta, newest.map_or(u64::MAX, |h| h.max_us()))
}

/// Quantiles over raw bucket counts: the containing bucket's inclusive
/// upper bound, clamped to the histogram's lifetime maximum (conservative,
/// like [`Log2Histogram::quantile`], but computable on a count delta).
fn quantiles_from_counts(counts: &[u64], max_us: u64) -> WindowQuantiles {
    let total: u64 = counts.iter().sum();
    let at = |q: f64| -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Log2Histogram::bucket_upper_bound(i).min(max_us);
            }
        }
        Log2Histogram::bucket_upper_bound(BUCKETS - 1).min(max_us)
    };
    WindowQuantiles { p50: at(0.50), p95: at(0.95), p99: at(0.99) }
}

/// Builds one [`SeriesWindow`] from aligned time/value vectors.
fn window_of(
    labels: Vec<(String, String)>,
    times: &[f64],
    values: &[f64],
    kind: MetricKind,
    quantiles: Option<WindowQuantiles>,
) -> SeriesWindow {
    let clamp = |d: f64| if kind == MetricKind::Gauge { d } else { d.max(0.0) };
    let first = values.first().copied().unwrap_or(0.0);
    let last = values.last().copied().unwrap_or(0.0);
    let delta = clamp(last - first);
    let span = times.last().copied().unwrap_or(0.0) - times.first().copied().unwrap_or(0.0);
    let rate = if span > 0.0 { delta / span } else { 0.0 };
    let points = values
        .windows(2)
        .zip(times.windows(2))
        .map(|(v, t)| {
            let dt = t[1] - t[0];
            if dt > 0.0 {
                clamp(v[1] - v[0]) / dt
            } else {
                0.0
            }
        })
        .collect();
    SeriesWindow { labels, first, last, delta, rate, points, quantiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use proptest::prelude::*;

    fn snap(pubs: u64, util: f64, lat_samples: &[u64]) -> RegistrySnapshot {
        let mut r = Registry::new();
        let c = r.counter("richnote_pubs_total", "pubs", &[("shard", "0")]);
        let g = r.gauge("richnote_utility_total", "utility", &[("policy", "RichNote")]);
        let h = r.histogram("richnote_selection_latency_us", "lat", &[("shard", "0")]);
        r.inc(c, pubs);
        r.set_gauge(g, util);
        for &us in lat_samples {
            r.observe_us(h, us);
        }
        r.snapshot()
    }

    fn query(family: &str, window: f64) -> HistoryQuery {
        HistoryQuery { family: family.to_string(), labels: Vec::new(), window_secs: window }
    }

    #[test]
    fn empty_history_answers_empty() {
        let h = MetricsHistory::new(8);
        let r = h.query(&query("richnote_pubs_total", 60.0));
        assert_eq!(r.samples, 0);
        assert_eq!(r.kind, None);
        assert!(r.series.is_empty());
    }

    #[test]
    fn counter_delta_and_rate_over_window() {
        let mut h = MetricsHistory::new(8);
        for (t, pubs) in [(0.0, 0), (10.0, 100), (20.0, 250), (30.0, 550)] {
            h.record(t, snap(pubs, 0.0, &[]));
        }
        // Window of 20 s back from t=30: baseline is the t=10 sample.
        let r = h.query(&query("richnote_pubs_total", 20.0));
        assert_eq!(r.kind, Some(MetricKind::Counter));
        assert_eq!(r.from_secs, 10.0);
        assert_eq!(r.to_secs, 30.0);
        assert_eq!(r.samples, 3);
        assert_eq!(r.total.delta, 450.0);
        assert!((r.total.rate - 22.5).abs() < 1e-12);
        assert_eq!(r.total.points, vec![15.0, 30.0]);
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].labels, vec![("shard".to_string(), "0".to_string())]);
    }

    #[test]
    fn counter_reset_spanning_a_restart_never_yields_negative_rates() {
        let mut h = MetricsHistory::new(8);
        h.record(10.0, snap(100, 0.0, &[]));
        h.record(20.0, snap(120, 0.0, &[]));
        // Daemon restart mid-window: the counter starts over near zero.
        h.record(30.0, snap(5, 0.0, &[]));
        h.record(40.0, snap(25, 0.0, &[]));
        let r = h.query(&query("richnote_pubs_total", 30.0));
        assert_eq!(r.samples, 4);
        // The endpoint delta clamps to zero rather than going negative —
        // alert rules dividing by such a window must never see a
        // negative shed or publish count...
        assert_eq!(r.total.delta, 0.0);
        assert_eq!(r.total.rate, 0.0);
        // ...while the per-interval points keep both the pre-restart and
        // post-restart traffic visible, with only the reset instant
        // clamped.
        assert_eq!(r.total.points, vec![2.0, 0.0, 2.0]);
        assert_eq!(r.series[0].points, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn gauge_delta_may_be_negative_and_last_is_absolute() {
        let mut h = MetricsHistory::new(8);
        h.record(0.0, snap(0, 5.0, &[]));
        h.record(10.0, snap(0, 3.0, &[]));
        let r = h.query(&query("richnote_utility_total", 60.0));
        assert_eq!(r.kind, Some(MetricKind::Gauge));
        assert_eq!(r.total.last, 3.0);
        assert_eq!(r.total.delta, -2.0);
    }

    #[test]
    fn label_filter_selects_series() {
        let mut r = Registry::new();
        let a = r.counter("x_total", "x", &[("policy", "RichNote")]);
        let b = r.counter("x_total", "x", &[("policy", "FIFO")]);
        r.inc(a, 7);
        r.inc(b, 5);
        let mut h = MetricsHistory::new(4);
        h.record(0.0, RegistrySnapshot::default());
        h.record(1.0, r.snapshot());
        let q = HistoryQuery {
            family: "x_total".to_string(),
            labels: vec![("policy".to_string(), "RichNote".to_string())],
            window_secs: 10.0,
        };
        let res = h.query(&q);
        assert_eq!(res.series.len(), 1);
        assert_eq!(res.total.delta, 7.0);
        assert_eq!(res.total.labels, q.labels);
    }

    #[test]
    fn histogram_window_quantiles_cover_only_the_window() {
        let mut h = MetricsHistory::new(8);
        // Baseline: 100 fast samples. Window: 10 slow ones on top.
        let fast: Vec<u64> = vec![10; 100];
        h.record(0.0, snap(0, 0.0, &fast));
        let mut all = fast.clone();
        all.extend(vec![100_000u64; 10]);
        h.record(10.0, snap(0, 0.0, &all));
        let r = h.query(&query("richnote_selection_latency_us", 5.0));
        // Only the 10 slow samples are in-window; p50 must be slow, not 10 µs.
        let qs = r.total.quantiles.expect("histogram family");
        assert!(qs.p50 >= 65_536, "windowed p50 {} must reflect in-window samples", qs.p50);
        assert_eq!(r.total.delta, 10.0);
        // Lifetime quantiles would have said ~10 µs.
        let lifetime = h.latest().unwrap().1.histogram_merged("richnote_selection_latency_us");
        assert!(lifetime.quantile(0.5) <= 10);
    }

    #[test]
    fn unknown_family_reports_kindless_empty() {
        let mut h = MetricsHistory::new(4);
        h.record(0.0, snap(1, 0.0, &[]));
        let r = h.query(&query("nope_total", 60.0));
        assert_eq!(r.kind, None);
        assert!(r.series.is_empty());
        assert_eq!(r.samples, 1);
    }

    #[test]
    fn non_monotone_time_replaces_the_newest_sample() {
        let mut h = MetricsHistory::new(4);
        h.record(10.0, snap(5, 0.0, &[]));
        h.record(10.0, snap(9, 0.0, &[]));
        h.record(3.0, snap(11, 0.0, &[]));
        assert_eq!(h.len(), 1);
        assert_eq!(h.latest().unwrap().0, 10.0);
        let r = h.query(&query("richnote_pubs_total", 60.0));
        assert_eq!(r.total.last, 11.0);
    }

    #[test]
    fn result_roundtrips_through_json() {
        let mut h = MetricsHistory::new(4);
        h.record(0.0, snap(0, 0.0, &[3, 5]));
        h.record(5.0, snap(40, 1.5, &[3, 5, 900]));
        for fam in
            ["richnote_pubs_total", "richnote_utility_total", "richnote_selection_latency_us"]
        {
            let r = h.query(&query(fam, 60.0));
            let s = serde_json::to_string(&r).unwrap();
            let back: QueryResult = serde_json::from_str(&s).unwrap();
            assert_eq!(r, back, "{fam}");
        }
        let q = query("richnote_pubs_total", 60.0);
        let s = serde_json::to_string(&q).unwrap();
        let back: HistoryQuery = serde_json::from_str(&s).unwrap();
        assert_eq!(q, back);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ring never holds more than its capacity, whatever is fed in.
        #[test]
        fn memory_stays_bounded(
            capacity in 2usize..16,
            feed in prop::collection::vec((0.0f64..1e6, 0u64..1000), 0..64),
        ) {
            let mut h = MetricsHistory::new(capacity);
            let mut t = 0.0;
            for (dt, pubs) in feed {
                t += dt;
                h.record(t, snap(pubs, 0.0, &[]));
                prop_assert!(h.len() <= capacity);
            }
        }

        /// A wider window never returns a smaller counter delta.
        #[test]
        fn wider_windows_are_monotone(
            increments in prop::collection::vec((1.0f64..50.0, 0u64..500), 2..24),
            windows in prop::collection::vec(0.0f64..2000.0, 2..8),
        ) {
            let mut h = MetricsHistory::new(64);
            let mut t = 0.0;
            let mut pubs = 0u64;
            for (dt, inc) in increments {
                t += dt;
                pubs += inc;
                h.record(t, snap(pubs, 0.0, &[]));
            }
            let mut ws = windows;
            ws.sort_by(f64::total_cmp);
            let mut last_delta = -1.0f64;
            for w in ws {
                let r = h.query(&query("richnote_pubs_total", w));
                prop_assert!(
                    r.total.delta >= last_delta,
                    "window {w}: delta {} < {last_delta}", r.total.delta
                );
                last_delta = r.total.delta;
            }
        }
    }
}
