//! Service-level objectives: rolling multi-window error budgets and
//! burn rates.
//!
//! Each objective classifies events as *good* or *bad* (a round under the
//! latency threshold, a publication not shed) against a `target` bad
//! fraction — the error budget. Events land in a rolling window of
//! fixed-duration buckets; evaluation derives two burn rates in the style
//! of SRE multi-window multi-burn alerting:
//!
//! * **slow burn** — the bad fraction over the whole window divided by the
//!   target. `1.0` means the budget is being consumed exactly as fast as
//!   it accrues; above `1.0` the budget is shrinking.
//! * **fast burn** — the same ratio over only the newest few buckets,
//!   catching a sharp regression long before it dominates the full
//!   window.
//!
//! A verdict is [`SloStatus::Violating`] when *both* windows fire (a
//! sustained budget-exhausting burn — the "page" condition), and
//! [`SloStatus::Degraded`] when either fires alone (a fresh spike whose
//! budget still holds, or a slow leak that has stopped). Time only moves
//! when the caller says so ([`SloEngine::advance`] takes an explicit
//! timestamp), so the engine is deterministic under test and in the
//! simulator.

use crate::hist::{Log2Histogram, BUCKETS};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Health verdict: ok / degraded / violating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloStatus {
    /// No window firing.
    Ok,
    /// One window firing: a fresh spike or a tolerated slow leak.
    Degraded,
    /// Fast and slow windows both firing: the budget is being exhausted.
    Violating,
}

impl SloStatus {
    /// Lowercase wire spelling (`ok` / `degraded` / `violating`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Degraded => "degraded",
            SloStatus::Violating => "violating",
        }
    }
}

impl std::fmt::Display for SloStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for SloStatus {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for SloStatus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => match s.as_str() {
                "ok" => Ok(SloStatus::Ok),
                "degraded" => Ok(SloStatus::Degraded),
                "violating" => Ok(SloStatus::Violating),
                other => Err(DeError(format!("unknown SloStatus {other:?}"))),
            },
            other => Err(DeError(format!("expected SloStatus string, found {}", other.kind()))),
        }
    }
}

/// Static definition of one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Objective name (e.g. `round_latency`).
    pub name: String,
    /// Budgeted bad fraction in `(0, 1]` (e.g. `0.01` = 1% of events may
    /// be bad).
    pub target: f64,
    /// Fast-window burn rate at or above which the fast window fires
    /// (the slow window fires at burn ≥ 1.0).
    pub fast_burn_threshold: f64,
}

/// One objective's evaluation: burn rates, remaining budget, and which
/// windows are firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Objective name.
    pub name: String,
    /// This objective's verdict.
    pub status: SloStatus,
    /// Burn rate over the newest buckets only.
    pub fast_burn: f64,
    /// Burn rate over the whole window.
    pub slow_burn: f64,
    /// Fraction of the window's error budget left (`1 - slow_burn`;
    /// negative when overdrawn).
    pub budget_remaining: f64,
    /// Firing windows (`"fast"`, `"slow"`), empty when ok.
    pub firing: Vec<String>,
    /// Good events in the window.
    pub good: u64,
    /// Bad events in the window.
    pub bad: u64,
}

/// The engine's overall report: the worst verdict plus every objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Worst status across objectives.
    pub status: SloStatus,
    /// Per-objective verdicts, in registration order.
    pub verdicts: Vec<SloVerdict>,
}

/// Bad-fraction burn rate relative to a target budget: 0 with no events,
/// `(bad/total)/target` otherwise.
pub fn burn_rate(good: u64, bad: u64, target: f64) -> f64 {
    let total = good + bad;
    if total == 0 || target <= 0.0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / target
}

/// A rolling window of `(good, bad)` event counts in fixed-duration
/// buckets. The newest bucket is at the back; [`RollingWindow::rotate`]
/// opens a new bucket and evicts beyond the cap.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingWindow {
    buckets: VecDeque<(u64, u64)>,
    cap: usize,
}

impl RollingWindow {
    /// A window holding up to `cap ≥ 1` buckets, starting with one open
    /// (empty) bucket.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "rolling window needs at least one bucket");
        let mut buckets = VecDeque::with_capacity(cap);
        buckets.push_back((0, 0));
        RollingWindow { buckets, cap }
    }

    /// Number of buckets currently held (1..=cap).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Always false: a window holds at least its open bucket.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maximum bucket count.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Adds events to the open (newest) bucket.
    pub fn record(&mut self, good: u64, bad: u64) {
        let b = self.buckets.back_mut().expect("window always has an open bucket");
        b.0 += good;
        b.1 += bad;
    }

    /// Closes the open bucket and opens a fresh one, evicting the oldest
    /// bucket once the cap is reached.
    pub fn rotate(&mut self) {
        self.buckets.push_back((0, 0));
        while self.buckets.len() > self.cap {
            self.buckets.pop_front();
        }
    }

    /// `(good, bad)` totals over the newest `n` buckets.
    pub fn totals_last(&self, n: usize) -> (u64, u64) {
        self.buckets.iter().rev().take(n).fold((0, 0), |(g, b), &(og, ob)| (g + og, b + ob))
    }

    /// `(good, bad)` totals over the whole window.
    pub fn totals(&self) -> (u64, u64) {
        self.totals_last(self.buckets.len())
    }

    /// Merges another window of the same cap, aligning newest-to-newest
    /// (bucket ages must correspond — i.e. both windows rotated on the
    /// same schedule, as per-shard windows driven by one engine do).
    pub fn merge(&mut self, other: &RollingWindow) {
        debug_assert_eq!(self.cap, other.cap, "merging windows of different caps");
        // Grow to cover the older buckets the other side still holds.
        while self.buckets.len() < other.buckets.len() && self.buckets.len() < self.cap {
            self.buckets.push_front((0, 0));
        }
        let len = self.buckets.len();
        for (i, &(og, ob)) in other.buckets.iter().rev().enumerate() {
            if i >= len {
                break;
            }
            let b = &mut self.buckets[len - 1 - i];
            b.0 += og;
            b.1 += ob;
        }
    }
}

struct Objective {
    spec: SloSpec,
    window: RollingWindow,
    /// Lifetime totals (beyond the window), exported as counters.
    lifetime_good: u64,
    lifetime_bad: u64,
}

/// A deterministic multi-objective SLO engine.
///
/// Feed it good/bad event deltas via [`SloEngine::record`], move time
/// forward with [`SloEngine::advance`] (idempotent within a bucket), and
/// ask for verdicts with [`SloEngine::evaluate`].
pub struct SloEngine {
    bucket_us: u64,
    fast_buckets: usize,
    window_buckets: usize,
    last_rotate_us: Option<u64>,
    objectives: Vec<Objective>,
}

impl SloEngine {
    /// An engine whose window spans `window_secs` split into `buckets`
    /// rotating sub-windows; the fast window is the newest sixth of them
    /// (at least one bucket).
    pub fn new(window_secs: u64, buckets: usize) -> Self {
        assert!(window_secs >= 1 && buckets >= 1, "SLO window must be non-empty");
        SloEngine {
            bucket_us: (window_secs.max(1) * 1_000_000 / buckets as u64).max(1),
            fast_buckets: (buckets / 6).max(1),
            window_buckets: buckets,
            last_rotate_us: None,
            objectives: Vec::new(),
        }
    }

    /// Number of newest buckets the fast burn rate covers.
    pub fn fast_buckets(&self) -> usize {
        self.fast_buckets
    }

    /// Registers an objective, returning its index for [`SloEngine::record`].
    pub fn objective(&mut self, spec: SloSpec) -> usize {
        self.objectives.push(Objective {
            spec,
            window: RollingWindow::new(self.window_buckets),
            lifetime_good: 0,
            lifetime_bad: 0,
        });
        self.objectives.len() - 1
    }

    /// Adds good/bad events to objective `idx`'s open bucket.
    pub fn record(&mut self, idx: usize, good: u64, bad: u64) {
        let o = &mut self.objectives[idx];
        o.window.record(good, bad);
        o.lifetime_good += good;
        o.lifetime_bad += bad;
    }

    /// Rotates windows according to wall (or virtual) time `now_us`. The
    /// first call anchors the bucket clock; later calls rotate once per
    /// elapsed bucket duration. Time never moves otherwise, so tests and
    /// the simulator drive it explicitly.
    pub fn advance(&mut self, now_us: u64) {
        let Some(last) = self.last_rotate_us else {
            self.last_rotate_us = Some(now_us);
            return;
        };
        if now_us <= last {
            return;
        }
        let steps = ((now_us - last) / self.bucket_us).min(self.window_buckets as u64 * 2);
        for _ in 0..steps {
            for o in &mut self.objectives {
                o.window.rotate();
            }
        }
        if steps > 0 {
            self.last_rotate_us = Some(last + steps * self.bucket_us);
        }
    }

    /// Lifetime `(good, bad)` totals of objective `idx` (monotonic; for
    /// counter export).
    pub fn lifetime(&self, idx: usize) -> (u64, u64) {
        let o = &self.objectives[idx];
        (o.lifetime_good, o.lifetime_bad)
    }

    /// Evaluates every objective at the current window state.
    pub fn evaluate(&self) -> SloReport {
        let mut verdicts = Vec::with_capacity(self.objectives.len());
        let mut status = SloStatus::Ok;
        for o in &self.objectives {
            let (good, bad) = o.window.totals();
            let (fg, fb) = o.window.totals_last(self.fast_buckets);
            let slow_burn = burn_rate(good, bad, o.spec.target);
            let fast_burn = burn_rate(fg, fb, o.spec.target);
            let mut firing = Vec::new();
            if fast_burn >= o.spec.fast_burn_threshold {
                firing.push("fast".to_string());
            }
            if slow_burn >= 1.0 {
                firing.push("slow".to_string());
            }
            let v_status = match firing.len() {
                0 => SloStatus::Ok,
                1 => SloStatus::Degraded,
                _ => SloStatus::Violating,
            };
            status = status.max(v_status);
            verdicts.push(SloVerdict {
                name: o.spec.name.clone(),
                status: v_status,
                fast_burn,
                slow_burn,
                budget_remaining: 1.0 - slow_burn,
                firing,
                good,
                bad,
            });
        }
        SloReport { status, verdicts }
    }
}

/// Splits the sample delta between two cuts of the same histogram into
/// `(good, bad)` around a threshold: samples landing in buckets strictly
/// above the threshold's bucket are bad. The threshold therefore rounds
/// up to its bucket's upper bound (~2× log resolution), which is the
/// right bias for an objective: borderline samples don't burn budget. A
/// shrinking count (restart/restore) re-baselines against zero.
pub fn split_above(prev: &Log2Histogram, cur: &Log2Histogram, threshold_us: u64) -> (u64, u64) {
    let fresh = Log2Histogram::new();
    let prev = if cur.count() < prev.count() { &fresh } else { prev };
    let tb = Log2Histogram::bucket_of(threshold_us);
    let (mut good, mut bad) = (0u64, 0u64);
    for i in 0..BUCKETS {
        let d = cur.bucket_counts()[i].saturating_sub(prev.bucket_counts()[i]);
        if i > tb {
            bad += d;
        } else {
            good += d;
        }
    }
    (good, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_1min() -> SloEngine {
        // 60s window, 12 buckets of 5s; fast window = newest 2 buckets.
        SloEngine::new(60, 12)
    }

    #[test]
    fn rolling_window_rotates_and_evicts() {
        let mut w = RollingWindow::new(3);
        w.record(10, 1);
        w.rotate();
        w.record(20, 2);
        w.rotate();
        w.record(30, 3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.totals(), (60, 6));
        assert_eq!(w.totals_last(1), (30, 3));
        w.rotate(); // evicts the (10, 1) bucket
        assert_eq!(w.totals(), (50, 5));
        w.rotate();
        w.rotate();
        w.rotate();
        assert_eq!(w.totals(), (0, 0), "everything ages out");
    }

    #[test]
    fn merge_aligns_newest_buckets() {
        let mut a = RollingWindow::new(4);
        a.record(1, 0);
        a.rotate();
        a.record(2, 0);
        let mut b = RollingWindow::new(4);
        b.record(10, 0);
        b.rotate();
        b.record(20, 0);
        a.merge(&b);
        assert_eq!(a.totals_last(1), (22, 0));
        assert_eq!(a.totals(), (33, 0));
    }

    #[test]
    fn burn_rates_scale_with_target() {
        assert_eq!(burn_rate(0, 0, 0.01), 0.0);
        assert!((burn_rate(99, 1, 0.01) - 1.0).abs() < 1e-9, "exactly on budget");
        assert!((burn_rate(90, 10, 0.01) - 10.0).abs() < 1e-9, "10x burn");
        assert_eq!(burn_rate(100, 0, 0.01), 0.0);
    }

    #[test]
    fn verdict_escalates_ok_degraded_violating() {
        let mut e = engine_1min();
        let idx = e.objective(SloSpec {
            name: "shed".to_string(),
            target: 0.01,
            fast_burn_threshold: 6.0,
        });
        e.advance(0);
        e.record(idx, 1_000, 0);
        assert_eq!(e.evaluate().status, SloStatus::Ok);

        // A burst of bad events: both the fast and slow windows fire.
        e.record(idx, 0, 500);
        let r = e.evaluate();
        assert_eq!(r.status, SloStatus::Violating);
        assert_eq!(r.verdicts[idx].firing, vec!["fast".to_string(), "slow".to_string()]);
        assert!(r.verdicts[idx].budget_remaining < 0.0, "budget overdrawn");

        // 15s later the burst has aged out of the 10s fast window but
        // still dominates the 60s slow window: degraded, not violating.
        e.advance(15_000_000);
        e.record(idx, 1_000, 0);
        let r = e.evaluate();
        assert_eq!(r.status, SloStatus::Degraded);
        assert_eq!(r.verdicts[idx].firing, vec!["slow".to_string()]);

        // Beyond the full window the burst is forgotten entirely.
        e.advance(90_000_000);
        e.record(idx, 1_000, 0);
        assert_eq!(e.evaluate().status, SloStatus::Ok);
    }

    #[test]
    fn advance_is_idempotent_within_a_bucket() {
        let mut e = engine_1min();
        let idx =
            e.objective(SloSpec { name: "x".to_string(), target: 0.5, fast_burn_threshold: 2.0 });
        e.advance(0);
        e.record(idx, 1, 1);
        e.advance(1_000); // 1ms: same 5s bucket
        e.advance(4_999_999);
        assert_eq!(e.evaluate().verdicts[idx].good, 1);
        e.advance(5_000_000); // next bucket
        e.record(idx, 2, 0);
        assert_eq!(e.evaluate().verdicts[idx].good, 3);
    }

    #[test]
    fn lifetime_counts_survive_rotation() {
        let mut e = SloEngine::new(1, 1);
        let idx =
            e.objective(SloSpec { name: "x".to_string(), target: 0.5, fast_burn_threshold: 2.0 });
        e.advance(0);
        e.record(idx, 5, 2);
        e.advance(10_000_000);
        assert_eq!(e.evaluate().verdicts[idx].good, 0, "window aged out");
        assert_eq!(e.lifetime(idx), (5, 2), "lifetime totals persist");
    }

    #[test]
    fn split_above_classifies_histogram_deltas() {
        let mut prev = Log2Histogram::new();
        prev.record_us(10);
        let mut cur = prev.clone();
        cur.record_us(50); // <= bucket_of(100)'s bucket: good
        cur.record_us(100); // threshold's own bucket: good (rounds up)
        cur.record_us(200); // above: bad
        cur.record_us(100_000); // way above: bad
        assert_eq!(split_above(&prev, &cur, 100), (2, 2));
        // Shrinking counts (restore) re-baseline against zero.
        assert_eq!(split_above(&cur, &prev, 100), (1, 0));
    }

    #[test]
    fn report_serializes_with_lowercase_statuses() {
        let report = SloReport {
            status: SloStatus::Degraded,
            verdicts: vec![SloVerdict {
                name: "shed".to_string(),
                status: SloStatus::Degraded,
                fast_burn: 0.5,
                slow_burn: 1.5,
                budget_remaining: -0.5,
                firing: vec!["slow".to_string()],
                good: 10,
                bad: 5,
            }],
        };
        let s = serde_json::to_string(&report).unwrap();
        assert!(s.contains("\"degraded\""), "{s}");
        let back: SloReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, report);
    }
}
