//! Observability layer for the RichNote stack.
//!
//! One vocabulary for the whole workspace: the delivery daemon, the
//! population simulator and the load generator all record into the same
//! three metric kinds and drain the same structured trace events, so a
//! number measured client-side can be compared bucket-for-bucket with the
//! same number measured server-side.
//!
//! * [`Log2Histogram`] — power-of-two-bucketed latency histogram
//!   (generalizing the server's former `LatencyHistogram`); constant
//!   space, one increment per sample.
//! * [`Registry`] — a registry of counters, gauges and histograms with
//!   labeled families. Recording goes through pre-registered integer
//!   handles ([`CounterHandle`], [`GaugeHandle`], [`HistogramHandle`]),
//!   so the hot path is a bounds-checked vector index plus an integer
//!   add — no hashing, no string comparison, no locking when the owner
//!   thread holds `&mut Registry` (shard workers own theirs outright).
//! * [`RegistrySnapshot`] — a serializable, mergeable cut of a registry;
//!   per-shard snapshots merge associatively into the daemon-wide view
//!   served over the wire and scraped as text.
//! * [`encode_text`] — Prometheus-style text exposition of a snapshot.
//! * [`TraceEvent`] / [`TraceRing`] — bounded per-shard ring buffer of
//!   structured events (round start/end, broker match, queue drop, MCKP
//!   selection with chosen level and gradient, checkpoint write, fault
//!   injection), drainable as JSON lines. Events carry only virtual-time
//!   and logical fields, so a seeded run produces an identical trace.
//! * [`SpanRecord`] / [`SpanTree`] — per-publication causal spans
//!   (publish → match → queue → select → serialize → ack) carrying the
//!   selection decision; ids are minted with [`derive_trace_id`] from
//!   seed + virtual time, head-sampled via [`SampleRate`] with anomalies
//!   (drops, level 0–1) always kept.
//! * [`FlightRecorder`] — a bounded ring of complete span trees dumped to
//!   a CRC-framed file ([`write_flight_file`]) on shard panic, checkpoint
//!   failure or injected fault, and readable over the wire.
//! * [`rsrc`] — resource accounting: per-thread CPU time behind the
//!   [`CpuClock`] trait (raw `clock_gettime` syscall; deterministic
//!   substitutes for sim and tests) and the opt-in [`CountingAlloc`]
//!   global-allocator wrapper with per-thread allocation counters.
//! * [`history`] — a fixed-memory ring of registry snapshots sampled at
//!   tick boundaries (caller-supplied time, so replays stay
//!   deterministic), answering windowed delta/rate/quantile queries
//!   ([`MetricsHistory`], [`HistoryQuery`], [`QueryResult`]) — the
//!   server-side source for `richnote-top` rates and the `/query`
//!   endpoint.
//! * [`slo`] — rolling multi-window service-level objectives: error
//!   budgets, fast/slow burn rates, and ok/degraded/violating verdicts
//!   ([`SloEngine`], [`SloReport`]), with time driven explicitly so
//!   evaluation is deterministic.
//! * [`alert`] — a declarative alert-rule engine ([`AlertRule`],
//!   [`AlertEngine`]) evaluated in caller-supplied virtual time over the
//!   metrics history (threshold, windowed-rate and SLO-burn rules with a
//!   pending → firing → resolved state machine), plus the per-shard
//!   stall [`Watchdog`]; the same rules run identically in the daemon
//!   and the simulator, so a seeded run yields a byte-identical alert
//!   timeline.
//! * [`frame`] — the shared `magic | len | crc32` binary framing used by
//!   flight-recorder dumps and incident bundles: whole-file blobs
//!   ([`frame::encode_blob`]), streamed records ([`frame::write_record`]
//!   / [`frame::read_record`]) and the tamper-evident hash chain
//!   ([`chain_seed`], [`chain_next`]).

pub mod alert;
pub mod event;
pub mod expo;
pub mod flight;
pub mod frame;
pub mod hist;
pub mod history;
pub mod registry;
pub mod rsrc;
pub mod sampler;
pub mod slo;
pub mod span;

pub use alert::{
    default_rules, AlertEngine, AlertEvent, AlertRule, AlertRuleKind, AlertSnapshot, AlertState,
    ShardProbe, Watchdog, WatchdogConfig, WatchdogVerdict,
};
pub use event::{TraceEvent, TraceRing};
pub use expo::encode_text;
pub use flight::{
    crc32, read_flight_file, write_flight_file, FlightDump, FlightRecorder, FLIGHT_MAGIC,
};
pub use frame::{chain_next, chain_seed, BlobError, RecordError};
pub use hist::{Log2Histogram, BUCKETS};
pub use history::{
    HistoryQuery, MetricsHistory, QueryResult, SeriesWindow, WindowQuantiles,
    DEFAULT_HISTORY_CAPACITY,
};
pub use registry::{
    CounterHandle, FamilySnapshot, GaugeHandle, HistogramHandle, MetricKind, MetricValue, Registry,
    RegistrySnapshot, SeriesSnapshot,
};
pub use rsrc::{
    alloc_counts, thread_cpu_time_us, AllocCounts, CountingAlloc, CpuClock, ManualCpuClock,
    NullCpuClock, ThreadCpuClock,
};
pub use sampler::SampleRate;
pub use slo::{burn_rate, split_above, SloEngine, SloReport, SloSpec, SloStatus, SloVerdict};
pub use span::{derive_trace_id, SpanDecision, SpanRecord, SpanStage, SpanTree};
