//! A lock-cheap metrics registry with labeled families and mergeable
//! snapshots.
//!
//! # Ownership model
//!
//! A [`Registry`] is owned by exactly one recording thread (a shard worker
//! owns its registry outright; connection threads share one behind a
//! mutex for the low-rate server-side stages). All series are registered
//! up front and recording goes through the returned integer handles, so
//! the hot path is a vector index plus an add — no hashing, no string
//! comparison, no atomics.
//!
//! # Merging
//!
//! [`Registry::snapshot`] produces a serializable [`RegistrySnapshot`]
//! with families sorted by name and series sorted by labels, and
//! [`RegistrySnapshot::merge`] combines snapshots associatively: counters
//! add, gauges add (a per-shard gauge like backlog sums to the daemon
//! total), histograms merge bucket-wise. Merging per-shard snapshots in
//! any order yields the same result as recording into one registry.

use crate::hist::Log2Histogram;
use serde::{Deserialize, Serialize};

/// What a family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value; merges by summing across shards.
    Gauge,
    /// [`Log2Histogram`] of microsecond values.
    Histogram,
}

/// Handle to a registered counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

#[derive(Debug, Clone)]
struct FamilyDef {
    name: String,
    help: String,
    kind: MetricKind,
}

#[derive(Debug, Clone)]
struct SeriesDef {
    family: usize,
    labels: Vec<(String, String)>,
}

/// The registry: registered families plus per-series cells.
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: bool,
    families: Vec<FamilyDef>,
    counters: Vec<(SeriesDef, u64)>,
    gauges: Vec<(SeriesDef, f64)>,
    histograms: Vec<(SeriesDef, Log2Histogram)>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            families: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// An empty registry whose recording operations are no-ops.
    /// Registration still hands out valid handles, so instrumented code
    /// needs no `if enabled` branches of its own.
    pub fn disabled() -> Self {
        Registry { enabled: false, ..Registry::new() }
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> usize {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "family {name} registered twice with different kinds"
            );
            return i;
        }
        self.families.push(FamilyDef { name: name.into(), help: help.into(), kind });
        self.families.len() - 1
    }

    fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect()
    }

    /// Registers (or looks up) a counter series. Registration is O(series)
    /// and meant for startup; recording through the handle is O(1).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterHandle {
        let family = self.family(name, help, MetricKind::Counter);
        let labels = Self::owned_labels(labels);
        if let Some(i) =
            self.counters.iter().position(|(s, _)| s.family == family && s.labels == labels)
        {
            return CounterHandle(i);
        }
        self.counters.push((SeriesDef { family, labels }, 0));
        CounterHandle(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        let family = self.family(name, help, MetricKind::Gauge);
        let labels = Self::owned_labels(labels);
        if let Some(i) =
            self.gauges.iter().position(|(s, _)| s.family == family && s.labels == labels)
        {
            return GaugeHandle(i);
        }
        self.gauges.push((SeriesDef { family, labels }, 0.0));
        GaugeHandle(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a histogram series.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        let family = self.family(name, help, MetricKind::Histogram);
        let labels = Self::owned_labels(labels);
        if let Some(i) =
            self.histograms.iter().position(|(s, _)| s.family == family && s.labels == labels)
        {
            return HistogramHandle(i);
        }
        self.histograms.push((SeriesDef { family, labels }, Log2Histogram::new()));
        HistogramHandle(self.histograms.len() - 1)
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, h: CounterHandle, by: u64) {
        if self.enabled {
            self.counters[h.0].1 += by;
        }
    }

    /// Overwrites a counter (used when restoring lifetime counters from a
    /// checkpoint).
    pub fn set_counter(&mut self, h: CounterHandle, value: u64) {
        if self.enabled {
            self.counters[h.0].1 = value;
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        self.counters[h.0].1
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, h: GaugeHandle, value: f64) {
        if self.enabled {
            self.gauges[h.0].1 = value;
        }
    }

    /// Records one microsecond sample into a histogram.
    pub fn observe_us(&mut self, h: HistogramHandle, us: u64) {
        if self.enabled {
            self.histograms[h.0].1.record_us(us);
        }
    }

    /// Merges a locally accumulated histogram into a series.
    ///
    /// This is the batched-flush path for threads that record samples
    /// into their own [`Log2Histogram`] and fold them in periodically,
    /// instead of taking a shared registry lock per sample.
    pub fn merge_histogram(&mut self, h: HistogramHandle, other: &Log2Histogram) {
        if self.enabled {
            self.histograms[h.0].1.merge(other);
        }
    }

    /// Read access to a histogram series (for in-process reporting).
    pub fn histogram_value(&self, h: HistogramHandle) -> &Log2Histogram {
        &self.histograms[h.0].1
    }

    /// A serializable cut of every series, with families sorted by name
    /// and series sorted by labels — deterministic regardless of
    /// registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut families: Vec<FamilySnapshot> = self
            .families
            .iter()
            .enumerate()
            .map(|(fi, f)| {
                let mut series: Vec<SeriesSnapshot> = Vec::new();
                match f.kind {
                    MetricKind::Counter => {
                        for (s, v) in self.counters.iter().filter(|(s, _)| s.family == fi) {
                            series.push(SeriesSnapshot {
                                labels: s.labels.clone(),
                                value: MetricValue::Counter(*v),
                            });
                        }
                    }
                    MetricKind::Gauge => {
                        for (s, v) in self.gauges.iter().filter(|(s, _)| s.family == fi) {
                            series.push(SeriesSnapshot {
                                labels: s.labels.clone(),
                                value: MetricValue::Gauge(*v),
                            });
                        }
                    }
                    MetricKind::Histogram => {
                        for (s, v) in self.histograms.iter().filter(|(s, _)| s.family == fi) {
                            series.push(SeriesSnapshot {
                                labels: s.labels.clone(),
                                value: MetricValue::Histogram(v.clone()),
                            });
                        }
                    }
                }
                series.sort_by(|a, b| a.labels.cmp(&b.labels));
                FamilySnapshot { name: f.name.clone(), help: f.help.clone(), kind: f.kind, series }
            })
            .collect();
        families.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { families }
    }
}

/// One series' value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(Log2Histogram),
}

/// One series at snapshot time: its label set and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Label pairs, sorted.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// One family at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Family name (e.g. `richnote_pubs_total`).
    pub name: String,
    /// Help text for exposition.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Series, sorted by labels.
    pub series: Vec<SeriesSnapshot>,
}

/// A mergeable, serializable cut of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Families, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Merges `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise; unknown families/series are inserted in sorted
    /// position. Associative and commutative, so per-shard snapshots can
    /// merge in any order.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for of in &other.families {
            match self.families.binary_search_by(|f| f.name.as_str().cmp(&of.name)) {
                Err(pos) => self.families.insert(pos, of.clone()),
                Ok(pos) => {
                    let sf = &mut self.families[pos];
                    assert_eq!(sf.kind, of.kind, "family {} merged across kinds", of.name);
                    for os in &of.series {
                        match sf.series.binary_search_by(|s| s.labels.cmp(&os.labels)) {
                            Err(pos) => sf.series.insert(pos, os.clone()),
                            Ok(pos) => match (&mut sf.series[pos].value, &os.value) {
                                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                                    a.merge(b);
                                }
                                (a, b) => panic!(
                                    "series {:?} of {} merged across kinds: {a:?} vs {b:?}",
                                    os.labels, of.name
                                ),
                            },
                        }
                    }
                }
            }
        }
    }

    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sums a counter family across all its series (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name).map_or(0, |f| {
            f.series
                .iter()
                .map(|s| match s.value {
                    MetricValue::Counter(v) => v,
                    _ => 0,
                })
                .sum()
        })
    }

    /// Merges a histogram family across all its series (empty when
    /// absent).
    pub fn histogram_merged(&self, name: &str) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        if let Some(f) = self.family(name) {
            for s in &f.series {
                if let MetricValue::Histogram(v) = &s.value {
                    h.merge(v);
                }
            }
        }
        h
    }

    /// Merges a histogram family across only the series carrying the
    /// label pair `key=value` (empty when absent) — e.g. the `ack` slice
    /// of a multi-stage duration family.
    pub fn histogram_merged_where(&self, name: &str, key: &str, value: &str) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        if let Some(f) = self.family(name) {
            for s in &f.series {
                if s.labels.iter().any(|(k, v)| k == key && v == value) {
                    if let MetricValue::Histogram(v) = &s.value {
                        h.merge(v);
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_registry(shard: &str) -> Registry {
        let mut r = Registry::new();
        let c = r.counter("richnote_pubs_total", "pubs", &[("shard", shard)]);
        let g = r.gauge("richnote_backlog", "backlog", &[("shard", shard)]);
        let h = r.histogram("richnote_round_duration_us", "round time", &[]);
        r.inc(c, 3);
        r.set_gauge(g, 5.0);
        r.observe_us(h, 100);
        r
    }

    #[test]
    fn handles_are_deduped() {
        let mut r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "v")]);
        let b = r.counter("x_total", "x", &[("k", "v")]);
        assert_eq!(a, b);
        r.inc(a, 1);
        r.inc(b, 1);
        assert_eq!(r.counter_value(a), 2);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflict_panics() {
        let mut r = Registry::new();
        r.counter("x", "x", &[]);
        r.gauge("x", "x", &[]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        let c = r.counter("x_total", "x", &[]);
        r.inc(c, 10);
        assert_eq!(r.counter_value(c), 0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn merge_of_shard_snapshots_sums() {
        let mut merged = shard_registry("0").snapshot();
        merged.merge(&shard_registry("1").snapshot());
        assert_eq!(merged.counter_total("richnote_pubs_total"), 6);
        assert_eq!(merged.family("richnote_pubs_total").unwrap().series.len(), 2);
        // Same-label histograms merged into one series.
        assert_eq!(merged.family("richnote_round_duration_us").unwrap().series.len(), 1);
        assert_eq!(merged.histogram_merged("richnote_round_duration_us").count(), 2);
    }

    #[test]
    fn merge_is_order_independent() {
        let snaps: Vec<RegistrySnapshot> =
            ["0", "1", "2"].iter().map(|s| shard_registry(s).snapshot()).collect();
        let mut forward = snaps[0].clone();
        forward.merge(&snaps[1]);
        forward.merge(&snaps[2]);
        let mut reverse = snaps[2].clone();
        reverse.merge(&snaps[1]);
        reverse.merge(&snaps[0]);
        assert_eq!(forward, reverse);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = shard_registry("7").snapshot();
        let s = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&s).unwrap();
        assert_eq!(snap, back);
    }
}
