//! Resource accounting: per-thread CPU time and allocation counting.
//!
//! The daemon's existing metrics describe *what* it did (publications,
//! rounds, latencies); this module accounts for what the work *cost*:
//!
//! * [`CpuClock`] reads the calling thread's consumed CPU time
//!   (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)` via a raw syscall — the
//!   workspace vendors no libc). It is a trait so the simulator and tests
//!   can substitute a deterministic clock ([`NullCpuClock`],
//!   [`ManualCpuClock`]) and stay reproducible.
//! * [`CountingAlloc`] is an opt-in `#[global_allocator]` wrapper over the
//!   system allocator keeping *per-thread* allocation and byte counters,
//!   read with [`alloc_counts`]. Per-thread counters mean a shard worker's
//!   reading covers exactly its own work, with no cross-thread attribution
//!   and no atomics on the allocation hot path.
//!
//! Neither facility records anything by itself: the shard loop samples
//! both around each round and folds the deltas into its registry, so the
//! cost series ride the existing snapshot/merge/exposition machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// A source of per-thread consumed-CPU-time readings.
///
/// `thread_cpu_us` returns the total CPU time the *calling thread* has
/// consumed, in microseconds, or `None` when the platform (or the chosen
/// implementation) provides no reading. Callers take deltas; the absolute
/// origin is the thread's birth.
pub trait CpuClock: Send {
    /// CPU time consumed by the calling thread, in microseconds.
    fn thread_cpu_us(&self) -> Option<u64>;
}

/// The real per-thread CPU clock: `CLOCK_THREAD_CPUTIME_ID` via a raw
/// `clock_gettime` syscall on Linux, `None` elsewhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadCpuClock;

impl CpuClock for ThreadCpuClock {
    fn thread_cpu_us(&self) -> Option<u64> {
        thread_cpu_time_us()
    }
}

/// A clock that never reads: cost accounting records nothing, and
/// sim/test runs stay bit-for-bit deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCpuClock;

impl CpuClock for NullCpuClock {
    fn thread_cpu_us(&self) -> Option<u64> {
        None
    }
}

/// A hand-advanced clock for tests: returns a scripted sequence of
/// readings.
#[derive(Debug, Default)]
pub struct ManualCpuClock {
    readings: std::sync::Mutex<Vec<u64>>,
}

impl ManualCpuClock {
    /// A clock that yields `readings` in order, then `None`.
    pub fn new(readings: Vec<u64>) -> Self {
        let mut r = readings;
        r.reverse();
        ManualCpuClock { readings: std::sync::Mutex::new(r) }
    }
}

impl CpuClock for ManualCpuClock {
    fn thread_cpu_us(&self) -> Option<u64> {
        self.readings.lock().unwrap().pop()
    }
}

/// `CLOCK_THREAD_CPUTIME_ID` from `linux/time.h`.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
const CLOCK_THREAD_CPUTIME_ID: u64 = 3;

/// Reads the calling thread's consumed CPU time in microseconds.
///
/// The workspace vendors its dependencies and has no libc crate, so this
/// issues the `clock_gettime` syscall directly on the architectures the
/// project targets; other platforms get `None` and cost accounting simply
/// stays dark there.
pub fn thread_cpu_time_us() -> Option<u64> {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        // struct timespec { tv_sec: i64, tv_nsec: i64 } on 64-bit Linux.
        let mut ts = [0i64; 2];
        let ret: i64;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            // __NR_clock_gettime = 228 on x86_64.
            core::arch::asm!(
                "syscall",
                inlateout("rax") 228i64 => ret,
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") ts.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            // __NR_clock_gettime = 113 on aarch64.
            core::arch::asm!(
                "svc #0",
                inlateout("x0") CLOCK_THREAD_CPUTIME_ID as i64 => ret,
                in("x1") ts.as_mut_ptr(),
                in("x8") 113i64,
                options(nostack),
            );
        }
        if ret != 0 {
            return None;
        }
        let (sec, nsec) = (ts[0], ts[1]);
        if sec < 0 || nsec < 0 {
            return None;
        }
        Some((sec as u64).saturating_mul(1_000_000).saturating_add(nsec as u64 / 1_000))
    }
    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        None
    }
}

/// A point-in-time reading of the calling thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Allocations performed (alloc + zeroed + growing reallocs).
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

// Const-initialized thread locals: no lazy-init branch or registration on
// the allocation path, just a TLS offset and an add.
thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Global switch for the wrapper's counting (the wrapper itself is chosen
/// at link time). Off = the wrapper is a pure pass-through, which is what
/// overhead A/B measurements compare against.
static COUNTING: AtomicBool = AtomicBool::new(true);

/// Set once a `CountingAlloc` has observed an allocation, so readers can
/// distinguish "no allocations" from "wrapper not installed".
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables allocation counting at runtime (counting is on by
/// default). Used for overhead A/B runs: the wrapper stays installed, only
/// the counter updates are gated.
pub fn set_alloc_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether a [`CountingAlloc`] is installed as the global allocator (more
/// precisely: has counted at least one allocation in this process).
pub fn alloc_counting_active() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The calling thread's allocation counters since thread start. All zeros
/// when no [`CountingAlloc`] is installed.
pub fn alloc_counts() -> AllocCounts {
    // `try_with` keeps reads safe during TLS teardown at thread exit.
    let allocs = TL_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = TL_BYTES.try_with(Cell::get).unwrap_or(0);
    AllocCounts { allocs, bytes }
}

/// An opt-in `#[global_allocator]` wrapper over [`System`] that counts
/// allocations and requested bytes per thread.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: richnote_obs::rsrc::CountingAlloc = richnote_obs::rsrc::CountingAlloc::new();
/// ```
///
/// Only binaries that want allocation accounting install it (the daemon
/// and `richnote-perf`); library users and the simulator pay nothing.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The wrapper (stateless; counters live in thread-local storage).
    pub const fn new() -> Self {
        CountingAlloc
    }

    #[inline]
    fn note(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        INSTALLED.store(true, Ordering::Relaxed);
        // During thread teardown the TLS slots may already be destroyed;
        // allocations there just go uncounted.
        let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = TL_BYTES.try_with(|c| c.set(c.get() + size as u64));
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch only thread-local
// cells and allocate nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the grown portion only; shrinks are free.
        Self::note(new_size.saturating_sub(layout.size()));
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_is_monotonic_per_thread() {
        let clock = ThreadCpuClock;
        let Some(a) = clock.thread_cpu_us() else {
            // Unsupported platform: the accounting layer stays dark.
            return;
        };
        // Burn a little CPU so the second reading can only move forward.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(31).wrapping_add(i);
        }
        assert!(x != 1, "keep the loop");
        let b = clock.thread_cpu_us().expect("clock read twice");
        assert!(b >= a, "thread CPU time went backwards: {a} -> {b}");
    }

    #[test]
    fn null_clock_reads_nothing() {
        assert_eq!(NullCpuClock.thread_cpu_us(), None);
    }

    #[test]
    fn manual_clock_scripts_readings() {
        let c = ManualCpuClock::new(vec![10, 25]);
        assert_eq!(c.thread_cpu_us(), Some(10));
        assert_eq!(c.thread_cpu_us(), Some(25));
        assert_eq!(c.thread_cpu_us(), None);
    }

    #[test]
    fn alloc_counts_delta_saturates() {
        let a = AllocCounts { allocs: 5, bytes: 100 };
        let b = AllocCounts { allocs: 7, bytes: 130 };
        assert_eq!(b.since(a), AllocCounts { allocs: 2, bytes: 30 });
        // A thread restart (fresh TLS) must not underflow.
        assert_eq!(a.since(b), AllocCounts { allocs: 0, bytes: 0 });
    }
}
