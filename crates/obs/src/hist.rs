//! Power-of-two-bucketed histograms of microsecond values.

use serde::{DeError, Deserialize, Serialize, Value};

/// Number of power-of-two buckets; bucket `i` covers `[2^(i-1), 2^i)` µs
/// for `i ≥ 1`, bucket 0 covers exactly `[0, 1)` (i.e. the value 0), and
/// the last bucket is open-ended, topping out above an hour.
pub const BUCKETS: usize = 40;

/// A histogram of microsecond values with power-of-two buckets.
///
/// Log bucketing gives ~2× relative resolution across nine orders of
/// magnitude in constant space, which is plenty for p50/p95/p99 reporting;
/// recording is a single increment on the hot path.
///
/// Each counted bucket additionally tracks the smallest and largest value
/// it has observed, so quantile estimates interpolate within the observed
/// span `[min, max]` rather than assuming the nominal bucket bounds — at
/// bucket edges the nominal upper bound can overstate a quantile by ~2×.
///
/// The serde field layout (`counts`/`count`/`sum_us`/`max_us`) is identical
/// to the server's former `LatencyHistogram`, which this type replaces —
/// checkpoints and wire snapshots deserialize unchanged. The span vectors
/// (`bucket_min`/`bucket_max`) are omitted entirely while untracked, so a
/// histogram deserialized from a legacy checkpoint re-serializes
/// byte-for-byte; they appear only once a value is recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
    /// Smallest observed value per bucket (`u64::MAX` while empty); empty
    /// vector = spans untracked (legacy data).
    bucket_min: Vec<u64>,
    /// Largest observed value per bucket (0 while empty); empty vector =
    /// spans untracked (legacy data).
    bucket_max: Vec<u64>,
}

impl Serialize for Log2Histogram {
    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("counts".to_string(), self.counts.to_value()),
            ("count".to_string(), self.count.to_value()),
            ("sum_us".to_string(), self.sum_us.to_value()),
            ("max_us".to_string(), self.max_us.to_value()),
        ];
        if !self.bucket_min.is_empty() {
            obj.push(("bucket_min".to_string(), self.bucket_min.to_value()));
            obj.push(("bucket_max".to_string(), self.bucket_max.to_value()));
        }
        Value::Object(obj)
    }
}

impl Deserialize for Log2Histogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let opt_spans = |name: &str| -> Result<Vec<u64>, DeError> {
            match v.get(name) {
                Some(inner) => Vec::<u64>::from_value(inner)
                    .map_err(|e| DeError(format!("field `{name}`: {e}"))),
                None => Ok(Vec::new()),
            }
        };
        let mut bucket_min = opt_spans("bucket_min")?;
        let mut bucket_max = opt_spans("bucket_max")?;
        // Spans are all-or-nothing and exactly BUCKETS long; anything else
        // (a truncated hand-edited file, say) degrades to untracked.
        if bucket_min.len() != BUCKETS || bucket_max.len() != BUCKETS {
            bucket_min = Vec::new();
            bucket_max = Vec::new();
        }
        Ok(Log2Histogram {
            counts: serde::field(v, "counts")?,
            count: serde::field(v, "count")?,
            sum_us: serde::field(v, "sum_us")?,
            max_us: serde::field(v, "max_us")?,
            bucket_min,
            bucket_max,
        })
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
            bucket_min: Vec::new(),
            bucket_max: Vec::new(),
        }
    }

    /// The bucket index holding `us`.
    ///
    /// Zero is handled explicitly: it belongs to bucket 0 by the bucket
    /// definition (`[0, 1)`), not by the accident that
    /// `64 - 0u64.leading_zeros() == 0`.
    pub fn bucket_of(us: u64) -> usize {
        if us == 0 {
            return 0;
        }
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The largest value bucket `i` can hold — the inclusive upper bound
    /// `2^i - 1` — saturating at `u64::MAX` for the open-ended last bucket.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        debug_assert!(i < BUCKETS);
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// The smallest value bucket `i` can hold.
    fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Materializes the span vectors. Buckets counted before tracking
    /// started (legacy checkpoints) widen to their nominal bounds, clamped
    /// to the observed global maximum.
    fn ensure_spans(&mut self) {
        if !self.bucket_min.is_empty() {
            return;
        }
        self.bucket_min = vec![u64::MAX; BUCKETS];
        self.bucket_max = vec![0; BUCKETS];
        for i in 0..BUCKETS {
            if self.counts[i] > 0 {
                self.bucket_min[i] = Self::bucket_lower_bound(i);
                self.bucket_max[i] = Self::bucket_upper_bound(i).min(self.max_us);
            }
        }
    }

    /// The observed `[min, max]` span of bucket `i`, or `None` if the
    /// bucket is empty. For data recorded before span tracking (legacy
    /// checkpoints) this falls back to the nominal bucket bounds clamped
    /// to the global maximum.
    pub fn bucket_span(&self, i: usize) -> Option<(u64, u64)> {
        if self.counts[i] == 0 {
            return None;
        }
        if self.bucket_min.is_empty() {
            Some((Self::bucket_lower_bound(i), Self::bucket_upper_bound(i).min(self.max_us)))
        } else {
            Some((self.bucket_min[i], self.bucket_max[i]))
        }
    }

    /// Records one value in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.ensure_spans();
        let b = Self::bucket_of(us);
        self.counts[b] += 1;
        self.bucket_min[b] = self.bucket_min[b].min(us);
        self.bucket_max[b] = self.bucket_max[b].max(us);
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Merges another histogram into this one. Span tracking survives a
    /// merge: tracked spans union bucket-wise, and a legacy (untracked)
    /// side contributes its nominal bucket bounds. Merging two untracked
    /// histograms stays untracked, preserving the legacy serde layout.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if !(self.bucket_min.is_empty() && other.bucket_min.is_empty()) {
            self.ensure_spans();
            for i in 0..BUCKETS {
                if let Some((omin, omax)) = other.bucket_span(i) {
                    self.bucket_min[i] = self.bucket_min[i].min(omin);
                    self.bucket_max[i] = self.bucket_max[i].max(omax);
                }
            }
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (µs), saturating.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket sample counts (length [`BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean value in microseconds, or 0 with no samples.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded value in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The index of the bucket containing quantile `q` in `[0, 1]`, or
    /// `None` with no samples.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(BUCKETS - 1)
    }

    /// The value (µs) at quantile `q` in `[0, 1]`, reported as the largest
    /// value *observed* in the containing bucket — a conservative estimate
    /// that never understates the quantile, and no looser than the bucket's
    /// inclusive upper bound. Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(i) = self.quantile_bucket(q) else {
            return 0;
        };
        // quantile_bucket only returns counted buckets, so the span exists.
        self.bucket_span(i).map_or(0, |(_, bmax)| bmax)
    }

    /// The value (µs) at quantile `q` in `[0, 1]`, estimated by *sub-bucket
    /// interpolation*: the quantile's rank position among the containing
    /// bucket's samples is mapped linearly onto the bucket's observed
    /// `[min, max]` span. Unlike a fixed per-bucket point estimate this
    /// keeps nearby quantiles distinguishable even when they land in the
    /// same (upper, coarse) bucket — p95 and p99 of a unimodal latency
    /// distribution no longer collapse to one number — while still never
    /// leaving the range of values actually recorded there, and staying
    /// monotone in `q`. Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut before = 0u64;
        let mut idx = BUCKETS - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            if before + c >= rank {
                idx = i;
                break;
            }
            before += c;
        }
        if idx == 0 {
            return 0;
        }
        let Some((bmin, bmax)) = self.bucket_span(idx) else {
            return 0;
        };
        let c = self.counts[idx];
        if c <= 1 || bmax <= bmin {
            return bmax;
        }
        // 1-based position of the rank among this bucket's c samples,
        // interpolated across the observed span: position 1 → min,
        // position c → max.
        let pos = rank - before;
        bmin + (((bmax - bmin) as f64) * ((pos - 1) as f64) / ((c - 1) as f64)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_zero_is_explicit() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        let mut h = Log2Histogram::new();
        h.record_us(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile(1.0), 0, "bucket 0 upper bound is 0");
        assert_eq!(h.quantile_us(1.0), 0);
    }

    #[test]
    fn bucket_of_one() {
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        let mut h = Log2Histogram::new();
        h.record_us(1);
        assert_eq!(h.bucket_counts()[1], 1);
        // Bucket 1 covers [1, 2); its inclusive upper bound is 1.
        assert_eq!(h.quantile(0.5), 1);
    }

    #[test]
    fn bucket_of_u64_max_lands_in_last_bucket() {
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        let mut h = Log2Histogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        // The open-ended bucket reports the observed max, not u64::MAX's
        // nominal bound.
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates");
        h.record_us(u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates");
    }

    #[test]
    fn record_extreme_values_together() {
        // record(0) and record(u64::MAX) in the same histogram: neither
        // panics, each lands in its own bucket, and the summary stats
        // stay sane despite the saturating sum.
        let mut h = Log2Histogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        assert_eq!(h.quantile(0.5), 0, "lower sample bounds the median");
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX, "open bucket reports the observed max");
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates instead of wrapping");
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn open_bucket_quantile_us_reports_observed_max() {
        // A sample in the open-ended bucket but far above its nominal
        // 2^38·√2 midpoint: quantile_us must not understate it.
        let v = 1u64 << 50;
        let mut h = Log2Histogram::new();
        h.record_us(v);
        assert_eq!(Log2Histogram::bucket_of(v), BUCKETS - 1);
        assert_eq!(h.quantile_us(0.5), v);
        // Closed buckets still use the geometric midpoint.
        let mut h = Log2Histogram::new();
        h.record_us(3);
        let p = h.quantile_us(0.5);
        assert!((2..=3).contains(&p), "midpoint of [2,4) clamped to max: {p}");
    }

    #[test]
    fn bucket_boundaries() {
        // 2^k goes to bucket k+1 (range [2^k, 2^(k+1))); 2^k - 1 to bucket k.
        for k in 1..20 {
            assert_eq!(Log2Histogram::bucket_of(1u64 << k), k + 1, "2^{k}");
            assert_eq!(Log2Histogram::bucket_of((1u64 << k) - 1), k, "2^{k}-1");
        }
        assert_eq!(Log2Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_upper_bound(5), 31);
        assert_eq!(Log2Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_upper_bound_never_understates() {
        let mut h = Log2Histogram::new();
        let samples = [3u64, 17, 120, 950, 6_000, 44_000];
        for &us in &samples {
            h.record_us(us);
        }
        // For each sample rank, quantile() must be >= the true value.
        let mut sorted = samples;
        sorted.sort_unstable();
        for (i, &v) in sorted.iter().enumerate() {
            let q = (i as f64 + 1.0) / sorted.len() as f64;
            assert!(h.quantile(q) >= v, "q={q} -> {} < {v}", h.quantile(q));
        }
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = Log2Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 1_000, 2_000, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.quantile_us(0.5);
        assert!((16..=64).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((65_536..=100_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max_us(), 100_000);
    }

    #[test]
    fn observed_span_tightens_quantiles_at_bucket_edges() {
        // 513 sits at the bottom of bucket 10 ([512, 1024)). Against a
        // second sample in a higher bucket, the nominal upper bound would
        // report the low quantile as 1023 — a ~2× overestimate. The
        // tracked span pins it to the observed value.
        let mut h = Log2Histogram::new();
        h.record_us(513);
        h.record_us(100_000);
        assert_eq!(h.quantile(0.3), 513);
        assert_eq!(h.quantile_us(0.3), 513);
        // And values at the top of a bucket are not dragged down to the
        // geometric midpoint: [1000, 1023] both in bucket 10.
        let mut h = Log2Histogram::new();
        h.record_us(1_000);
        h.record_us(1_023);
        let p50 = h.quantile_us(0.5);
        assert!((1_000..=1_023).contains(&p50), "p50 {p50} outside observed span");
        assert_eq!(h.quantile(1.0), 1_023);
    }

    #[test]
    fn sub_bucket_interpolation_separates_quantiles_and_stays_monotone() {
        // The BENCH_5 regression: a steady-state run whose select latencies
        // all land in one coarse upper bucket reported p50 == p95 == p99.
        // With rank-position interpolation, distinct quantiles of samples
        // sharing a bucket must come out distinct, ordered, and inside the
        // observed span.
        let mut h = Log2Histogram::new();
        for v in 8_192..8_292 {
            // 100 distinct values, all in bucket 14 ([8192, 16384)).
            h.record_us(v);
        }
        let (p50, p95, p99) = (h.quantile_us(0.50), h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p50 < p95, "p50 {p50} must be below p95 {p95}");
        assert!(p95 < p99, "p95 {p95} must be below p99 {p99}");
        assert!((8_192..8_292).contains(&p50), "p50 {p50} outside observed span");
        assert!((8_192..8_292).contains(&p99), "p99 {p99} outside observed span");
        // Monotone in q across the whole range, including bucket borders.
        let mut h = Log2Histogram::new();
        for v in [0, 1, 3, 40, 45, 50, 120_000, 130_000] {
            h.record_us(v);
        }
        let mut last = 0;
        for step in 0..=20 {
            let q = f64::from(step) / 20.0;
            let v = h.quantile_us(q);
            assert!(v >= last, "quantile_us({q}) = {v} < previous {last}");
            last = v;
        }
        assert_eq!(h.quantile_us(1.0), 130_000, "q=1 is the observed max");
    }

    #[test]
    fn legacy_histograms_widen_to_nominal_bounds() {
        // A histogram deserialized from pre-span data has counts but no
        // spans: quantiles fall back to the nominal bucket bounds (the old
        // behaviour) and merging into a tracked histogram keeps both sets
        // of samples bounded.
        let legacy_json =
            format!("{{\"counts\":{:?},\"count\":2,\"sum_us\":1600,\"max_us\":900}}", {
                let mut v = vec![0u64; BUCKETS];
                v[10] = 2; // two samples somewhere in [512, 1024)
                v
            });
        let legacy: Log2Histogram = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(legacy.bucket_span(10), Some((512, 900)), "nominal bounds clamped to max");
        assert_eq!(legacy.quantile(0.5), 900);

        let mut tracked = Log2Histogram::new();
        tracked.record_us(600);
        tracked.merge(&legacy);
        assert_eq!(tracked.count(), 3);
        assert_eq!(tracked.bucket_span(10), Some((512, 900)));

        // Merging two untracked histograms stays untracked (and therefore
        // serializes in the legacy layout).
        let mut a: Log2Histogram = serde_json::from_str(&legacy_json).unwrap();
        let b: Log2Histogram = serde_json::from_str(&legacy_json).unwrap();
        a.merge(&b);
        assert!(!serde_json::to_string(&a).unwrap().contains("bucket_min"));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_bucket(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Log2Histogram::new();
        a.record_us(5);
        let mut b = Log2Histogram::new();
        b.record_us(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 500);
        assert_eq!(a.sum_us(), 505);
    }

    #[test]
    fn serde_field_layout_is_stable() {
        // Checkpoints written by the pre-obs LatencyHistogram must load,
        // and must re-serialize without sprouting span fields.
        let legacy = format!("{{\"counts\":{:?},\"count\":1,\"sum_us\":7,\"max_us\":7}}", {
            let mut v = vec![0u64; BUCKETS];
            v[3] = 1;
            v
        });
        let h: Log2Histogram = serde_json::from_str(&legacy).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_us(), 7);
        let back = serde_json::to_string(&h).unwrap();
        assert_eq!(back, legacy.replace(", ", ","), "legacy layout preserved byte-for-byte");
        let h2: Log2Histogram = serde_json::from_str(&back).unwrap();
        assert_eq!(h, h2);

        // A recorded histogram carries its spans through serde.
        let mut h = Log2Histogram::new();
        h.record_us(9);
        let s = serde_json::to_string(&h).unwrap();
        assert!(s.contains("bucket_min"));
        let h2: Log2Histogram = serde_json::from_str(&s).unwrap();
        assert_eq!(h, h2);
        assert_eq!(h2.bucket_span(4), Some((9, 9)));
    }
}
