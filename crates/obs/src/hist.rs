//! Power-of-two-bucketed histograms of microsecond values.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets; bucket `i` covers `[2^(i-1), 2^i)` µs
/// for `i ≥ 1`, bucket 0 covers exactly `[0, 1)` (i.e. the value 0), and
/// the last bucket is open-ended, topping out above an hour.
pub const BUCKETS: usize = 40;

/// A histogram of microsecond values with power-of-two buckets.
///
/// Log bucketing gives ~2× relative resolution across nine orders of
/// magnitude in constant space, which is plenty for p50/p95/p99 reporting;
/// recording is a single increment on the hot path.
///
/// The serde field layout (`counts`/`count`/`sum_us`/`max_us`) is identical
/// to the server's former `LatencyHistogram`, which this type replaces —
/// checkpoints and wire snapshots deserialize unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram { counts: vec![0; BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }

    /// The bucket index holding `us`.
    ///
    /// Zero is handled explicitly: it belongs to bucket 0 by the bucket
    /// definition (`[0, 1)`), not by the accident that
    /// `64 - 0u64.leading_zeros() == 0`.
    pub fn bucket_of(us: u64) -> usize {
        if us == 0 {
            return 0;
        }
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The largest value bucket `i` can hold — the inclusive upper bound
    /// `2^i - 1` — saturating at `u64::MAX` for the open-ended last bucket.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        debug_assert!(i < BUCKETS);
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (µs), saturating.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket sample counts (length [`BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean value in microseconds, or 0 with no samples.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded value in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The index of the bucket containing quantile `q` in `[0, 1]`, or
    /// `None` with no samples.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(BUCKETS - 1)
    }

    /// The value (µs) at quantile `q` in `[0, 1]`, reported as the
    /// *inclusive upper bound* of the containing bucket — a conservative
    /// estimate that never understates the quantile. The open-ended last
    /// bucket reports the observed maximum instead of `u64::MAX`. Returns
    /// 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(i) = self.quantile_bucket(q) else {
            return 0;
        };
        if i >= BUCKETS - 1 {
            return self.max_us;
        }
        Self::bucket_upper_bound(i).min(self.max_us)
    }

    /// The value (µs) at quantile `q` in `[0, 1]`, estimated as the
    /// geometric midpoint of the containing bucket (a lower-variance point
    /// estimate than [`Log2Histogram::quantile`]). Returns 0 with no
    /// samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let Some(i) = self.quantile_bucket(q) else {
            return 0;
        };
        if i == 0 {
            return 0;
        }
        if i >= BUCKETS - 1 {
            // The open-ended last bucket covers [2^(BUCKETS-2), u64::MAX];
            // its nominal midpoint can understate a large sample by many
            // orders of magnitude, so report the observed max instead
            // (mirroring `quantile`).
            return self.max_us;
        }
        let lo = 1u64 << (i - 1);
        let hi = 1u64 << i;
        // Geometric midpoint ≈ lo·√2, clamped to the observed max.
        let mid = ((lo as f64) * std::f64::consts::SQRT_2) as u64;
        mid.min(hi - 1).min(self.max_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_zero_is_explicit() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        let mut h = Log2Histogram::new();
        h.record_us(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile(1.0), 0, "bucket 0 upper bound is 0");
        assert_eq!(h.quantile_us(1.0), 0);
    }

    #[test]
    fn bucket_of_one() {
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        let mut h = Log2Histogram::new();
        h.record_us(1);
        assert_eq!(h.bucket_counts()[1], 1);
        // Bucket 1 covers [1, 2); its inclusive upper bound is 1.
        assert_eq!(h.quantile(0.5), 1);
    }

    #[test]
    fn bucket_of_u64_max_lands_in_last_bucket() {
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        let mut h = Log2Histogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        // The open-ended bucket reports the observed max, not u64::MAX's
        // nominal bound.
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates");
        h.record_us(u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates");
    }

    #[test]
    fn record_extreme_values_together() {
        // record(0) and record(u64::MAX) in the same histogram: neither
        // panics, each lands in its own bucket, and the summary stats
        // stay sane despite the saturating sum.
        let mut h = Log2Histogram::new();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        assert_eq!(h.quantile(0.5), 0, "lower sample bounds the median");
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile_us(1.0), u64::MAX, "open bucket reports the observed max");
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(h.sum_us(), u64::MAX, "sum saturates instead of wrapping");
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn open_bucket_quantile_us_reports_observed_max() {
        // A sample in the open-ended bucket but far above its nominal
        // 2^38·√2 midpoint: quantile_us must not understate it.
        let v = 1u64 << 50;
        let mut h = Log2Histogram::new();
        h.record_us(v);
        assert_eq!(Log2Histogram::bucket_of(v), BUCKETS - 1);
        assert_eq!(h.quantile_us(0.5), v);
        // Closed buckets still use the geometric midpoint.
        let mut h = Log2Histogram::new();
        h.record_us(3);
        let p = h.quantile_us(0.5);
        assert!((2..=3).contains(&p), "midpoint of [2,4) clamped to max: {p}");
    }

    #[test]
    fn bucket_boundaries() {
        // 2^k goes to bucket k+1 (range [2^k, 2^(k+1))); 2^k - 1 to bucket k.
        for k in 1..20 {
            assert_eq!(Log2Histogram::bucket_of(1u64 << k), k + 1, "2^{k}");
            assert_eq!(Log2Histogram::bucket_of((1u64 << k) - 1), k, "2^{k}-1");
        }
        assert_eq!(Log2Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_upper_bound(5), 31);
        assert_eq!(Log2Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_upper_bound_never_understates() {
        let mut h = Log2Histogram::new();
        let samples = [3u64, 17, 120, 950, 6_000, 44_000];
        for &us in &samples {
            h.record_us(us);
        }
        // For each sample rank, quantile() must be >= the true value.
        let mut sorted = samples;
        sorted.sort_unstable();
        for (i, &v) in sorted.iter().enumerate() {
            let q = (i as f64 + 1.0) / sorted.len() as f64;
            assert!(h.quantile(q) >= v, "q={q} -> {} < {v}", h.quantile(q));
        }
    }

    #[test]
    fn quantiles_bracket_samples() {
        let mut h = Log2Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 1_000, 2_000, 100_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.quantile_us(0.5);
        assert!((16..=64).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((65_536..=100_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max_us(), 100_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_bucket(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Log2Histogram::new();
        a.record_us(5);
        let mut b = Log2Histogram::new();
        b.record_us(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 500);
        assert_eq!(a.sum_us(), 505);
    }

    #[test]
    fn serde_field_layout_is_stable() {
        // Checkpoints written by the pre-obs LatencyHistogram must load.
        let legacy = format!("{{\"counts\":{:?},\"count\":1,\"sum_us\":7,\"max_us\":7}}", {
            let mut v = vec![0u64; BUCKETS];
            v[3] = 1;
            v
        });
        let h: Log2Histogram = serde_json::from_str(&legacy).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_us(), 7);
        let back = serde_json::to_string(&h).unwrap();
        let h2: Log2Histogram = serde_json::from_str(&back).unwrap();
        assert_eq!(h, h2);
    }
}
