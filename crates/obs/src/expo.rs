//! Prometheus-style text exposition of a [`RegistrySnapshot`].
//!
//! The format follows the Prometheus text exposition conventions: a
//! `# HELP` and `# TYPE` line per family, then one sample line per
//! series. Histograms expose cumulative `_bucket{le="..."}` lines (one
//! per non-empty bucket plus the mandatory `le="+Inf"`), `_sum` and
//! `_count`. Only families and label values produced by this workspace
//! are expected, but label values are escaped defensively anyway.

use crate::hist::{Log2Histogram, BUCKETS};
use crate::registry::{MetricKind, MetricValue, RegistrySnapshot};
use std::fmt::Write;

/// Escapes a label value per the exposition rules (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders `{k="v",...}` for a label set (empty string for no labels).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats a gauge value: integral gauges print without a fraction.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Log2Histogram) {
    let mut cum = 0u64;
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = if i >= BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            format!("{}", Log2Histogram::bucket_upper_bound(i))
        };
        if le != "+Inf" {
            let block = label_block(labels, Some(("le", &le)));
            let _ = writeln!(out, "{name}_bucket{block} {cum}");
        }
    }
    let block = label_block(labels, Some(("le", "+Inf")));
    let _ = writeln!(out, "{name}_bucket{block} {}", h.count());
    let block = label_block(labels, None);
    let _ = writeln!(out, "{name}_sum{block} {}", h.sum_us());
    let _ = writeln!(out, "{name}_count{block} {}", h.count());
}

/// Encodes a snapshot in the Prometheus text exposition format.
pub fn encode_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for f in &snap.families {
        let kind = match f.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
        let _ = writeln!(out, "# TYPE {} {kind}", f.name);
        for s in &f.series {
            match &s.value {
                MetricValue::Counter(v) => {
                    let block = label_block(&s.labels, None);
                    let _ = writeln!(out, "{}{block} {v}", f.name);
                }
                MetricValue::Gauge(v) => {
                    let block = label_block(&s.labels, None);
                    let _ = writeln!(out, "{}{block} {}", f.name, fmt_f64(*v));
                }
                MetricValue::Histogram(h) => write_histogram(&mut out, &f.name, &s.labels, h),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counters_and_gauges_encode() {
        let mut r = Registry::new();
        let c = r.counter("richnote_pubs_total", "Publications ingested.", &[("shard", "0")]);
        let g = r.gauge("richnote_backlog", "Queued notifications.", &[]);
        r.inc(c, 42);
        r.set_gauge(g, 7.0);
        let text = encode_text(&r.snapshot());
        assert!(text.contains("# HELP richnote_pubs_total Publications ingested.\n"), "{text}");
        assert!(text.contains("# TYPE richnote_pubs_total counter\n"), "{text}");
        assert!(text.contains("richnote_pubs_total{shard=\"0\"} 42\n"), "{text}");
        assert!(text.contains("# TYPE richnote_backlog gauge\n"), "{text}");
        assert!(text.contains("richnote_backlog 7\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut r = Registry::new();
        let h = r.histogram("richnote_round_duration_us", "Round wall time.", &[]);
        r.observe_us(h, 1); // bucket 1 (le=1)
        r.observe_us(h, 3); // bucket 2 (le=3)
        r.observe_us(h, 3);
        let text = encode_text(&r.snapshot());
        assert!(text.contains("richnote_round_duration_us_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("richnote_round_duration_us_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("richnote_round_duration_us_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("richnote_round_duration_us_sum 7\n"), "{text}");
        assert!(text.contains("richnote_round_duration_us_count 3\n"), "{text}");
    }

    #[test]
    fn every_line_is_well_formed() {
        let mut r = Registry::new();
        let c = r.counter("a_total", "a.", &[("shard", "1")]);
        let h = r.histogram("b_us", "b.", &[("stage", "select")]);
        r.inc(c, 1);
        r.observe_us(h, 1000);
        let text = encode_text(&r.snapshot());
        for line in text.lines() {
            let ok_comment = line.starts_with("# HELP ") || line.starts_with("# TYPE ");
            // name{labels} value | name value
            let ok_sample = {
                let mut parts = line.rsplitn(2, ' ');
                let value = parts.next().unwrap_or("");
                let series = parts.next().unwrap_or("");
                !series.is_empty()
                    && value.parse::<f64>().is_ok()
                    && series
                        .chars()
                        .next()
                        .map(|c| c.is_ascii_lowercase() || c == '_')
                        .unwrap_or(false)
            };
            assert!(ok_comment || ok_sample, "malformed exposition line: {line:?}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        let c = r.counter("x_total", "x.", &[("k", "a\"b\\c\nd")]);
        r.inc(c, 1);
        let text = encode_text(&r.snapshot());
        assert!(text.contains("x_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }
}
