//! Shared CRC-framed file encoding: the one implementation behind
//! checkpoint files (`.rnck`), flight-recorder dumps (`.rnfl`), wire
//! captures (`.rncap`), and incident bundles (`.rnincident`).
//!
//! Two shapes live here:
//!
//! * **Single-blob files** — one body behind one envelope:
//!
//!   ```text
//!   | magic: 8 bytes | crc32: u32 LE | len: u64 LE | body: len bytes |
//!   ```
//!
//!   ([`encode_blob`], [`write_blob_file`], [`decode_blob`]). The writer
//!   fsyncs before returning so a blob written on a panic path survives
//!   the process dying right after.
//!
//! * **Streaming record files** — a magic followed by any number of
//!   framed records:
//!
//!   ```text
//!   | len: u32 LE | crc32: u32 LE | body: len bytes |
//!   ```
//!
//!   ([`write_record`], [`read_record`]), plus the tamper-evidence hash
//!   chain ([`chain_next`], [`chain_seed`]) that makes editing, dropping,
//!   or reordering records detectable even after a CRC fix-up.
//!
//! Errors are typed ([`BlobError`], [`RecordError`]) so each caller can
//! keep its own diagnostic vocabulary — checkpoint loads say
//! `"CRC mismatch"`, flight dumps say `"crc mismatch (want …, got …)"` —
//! while sharing one decoder.

use std::io::{Read, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3 polynomial, reflected), bit-at-a-time.
///
/// A table-free implementation is plenty: every caller frames at file or
/// record granularity, where ~1 cycle/bit is irrelevant next to I/O and
/// JSON encode, and it keeps the implementation obviously correct against
/// the standard test vectors.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What can be wrong with a single-blob framed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// The file is shorter than `magic + crc + len`.
    TruncatedHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The first eight bytes are not the expected magic.
    BadMagic {
        /// The bytes actually found.
        found: Vec<u8>,
    },
    /// The body length does not match the header's claim.
    LengthMismatch {
        /// Length the header claims.
        header: u64,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The body does not match its stored CRC-32.
    Crc {
        /// CRC stored in the header.
        want: u32,
        /// CRC computed over the body actually read.
        got: u32,
    },
}

/// Frames `body` behind `magic` as one contiguous blob.
pub fn encode_blob(magic: &[u8; 8], body: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(magic.len() + 12 + body.len());
    blob.extend_from_slice(magic);
    blob.extend_from_slice(&crc32(body).to_le_bytes());
    blob.extend_from_slice(&(body.len() as u64).to_le_bytes());
    blob.extend_from_slice(body);
    blob
}

/// Writes `body` behind `magic` to `path`, fsyncing before returning.
pub fn write_blob_file(path: &Path, magic: &[u8; 8], body: &[u8]) -> std::io::Result<()> {
    let blob = encode_blob(magic, body);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&blob)?;
    f.sync_all()
}

/// Validates a single-blob file image and returns its body.
///
/// # Errors
///
/// The [`BlobError`] naming exactly what failed: a short header, a wrong
/// magic, a length mismatch, or a CRC mismatch.
pub fn decode_blob<'a>(blob: &'a [u8], magic: &[u8; 8]) -> Result<&'a [u8], BlobError> {
    if blob.len() < magic.len() + 12 {
        return Err(BlobError::TruncatedHeader { len: blob.len() });
    }
    let (found, rest) = blob.split_at(magic.len());
    if found != magic {
        return Err(BlobError::BadMagic { found: found.to_vec() });
    }
    let want = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
    let body = &rest[12..];
    if body.len() as u64 != len {
        return Err(BlobError::LengthMismatch { header: len, actual: body.len() });
    }
    let got = crc32(body);
    if got != want {
        return Err(BlobError::Crc { want, got });
    }
    Ok(body)
}

/// What can be wrong with one streaming record.
#[derive(Debug)]
pub enum RecordError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream ended inside a record (header or body cut off).
    Truncated,
    /// The record claims a length beyond the caller's plausibility bound.
    TooLong {
        /// Length the record claims.
        len: u32,
    },
    /// The body does not match its stored CRC-32.
    Crc {
        /// CRC stored in the record envelope.
        stored: u32,
        /// CRC computed over the body actually read.
        computed: u32,
    },
}

/// Frames one record: `len: u32 LE | crc32: u32 LE | body`.
pub fn write_record<W: Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one framed record, verifying length plausibility (`len` must not
/// exceed `max_len`) and the CRC. `Ok(None)` on a clean EOF at a record
/// boundary.
///
/// # Errors
///
/// The [`RecordError`] naming what failed; callers map it into their own
/// error vocabulary (and typically know which record index they are at).
pub fn read_record<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, RecordError> {
    let mut len_buf = [0u8; 4];
    match fill(r, &mut len_buf).map_err(RecordError::Io)? {
        0 => return Ok(None),
        n if n < len_buf.len() => return Err(RecordError::Truncated),
        _ => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_len {
        return Err(RecordError::TooLong { len });
    }
    let mut crc_buf = [0u8; 4];
    if fill(r, &mut crc_buf).map_err(RecordError::Io)? < crc_buf.len() {
        return Err(RecordError::Truncated);
    }
    let stored = u32::from_le_bytes(crc_buf);
    let mut body = vec![0u8; len as usize];
    if fill(r, &mut body).map_err(RecordError::Io)? < body.len() {
        return Err(RecordError::Truncated);
    }
    let computed = crc32(&body);
    if computed != stored {
        return Err(RecordError::Crc { stored, computed });
    }
    Ok(Some(body))
}

/// Fills `buf`, returning how many bytes were read before EOF (retrying
/// `Interrupted`). A short count < `buf.len()` means the stream ended.
pub fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Hash-chain seed for a streaming file: its magic bytes read as a
/// big-endian integer, so an empty chain is still file-format specific.
pub const fn chain_seed(magic: &[u8; 8]) -> u64 {
    u64::from_be_bytes(*magic)
}

/// Advances the tamper-evidence chain across one record. FNV-style byte
/// mixing plus a splitmix64 finalizer: not cryptographic, but a CRC
/// fix-up after editing, dropping, or reordering a record will not
/// reproduce the chain of every subsequent record.
pub fn chain_next(prev: u64, ts_us: u64, session: u64, frame: &[u8]) -> u64 {
    let mut h = prev ^ ts_us.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= session.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    for &b in frame {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"RNTEST1\n";

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn blob_roundtrips() {
        let body = b"{\"hello\":42}";
        let blob = encode_blob(MAGIC, body);
        assert_eq!(decode_blob(&blob, MAGIC).unwrap(), body);
    }

    #[test]
    fn blob_errors_name_what_failed() {
        let blob = encode_blob(MAGIC, b"payload");
        assert_eq!(decode_blob(&blob[..10], MAGIC), Err(BlobError::TruncatedHeader { len: 10 }));

        let mut wrong = blob.clone();
        wrong[0] = b'X';
        match decode_blob(&wrong, MAGIC) {
            Err(BlobError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }

        let short = &blob[..blob.len() - 2];
        assert_eq!(
            decode_blob(short, MAGIC),
            Err(BlobError::LengthMismatch { header: 7, actual: 5 })
        );

        let mut flipped = blob.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(decode_blob(&flipped, MAGIC), Err(BlobError::Crc { .. })));
    }

    #[test]
    fn blob_file_roundtrips_on_disk() {
        let dir = std::env::temp_dir().join(format!("rnframe-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        write_blob_file(&path, MAGIC, b"persisted body").unwrap();
        let blob = std::fs::read(&path).unwrap();
        assert_eq!(decode_blob(&blob, MAGIC).unwrap(), b"persisted body");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_stream_and_stop_cleanly_at_eof() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"first").unwrap();
        write_record(&mut buf, b"second record").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_record(&mut r, 1024).unwrap().unwrap(), b"first");
        assert_eq!(read_record(&mut r, 1024).unwrap().unwrap(), b"second record");
        assert!(read_record(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn record_errors_name_what_failed() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"whole").unwrap();

        let mut short = &buf[..buf.len() - 2];
        assert!(matches!(read_record(&mut short, 1024), Err(RecordError::Truncated)));

        let mut header_only = &buf[..2];
        assert!(matches!(read_record(&mut header_only, 1024), Err(RecordError::Truncated)));

        let mut r = &buf[..];
        assert!(matches!(read_record(&mut r, 3), Err(RecordError::TooLong { len: 5 })));

        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        let mut r = &flipped[..];
        match read_record(&mut r, 1024) {
            Err(RecordError::Crc { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Crc, got {other:?}"),
        }
    }

    #[test]
    fn chain_is_order_and_content_sensitive() {
        let seed = chain_seed(MAGIC);
        let a = chain_next(seed, 0, 1, b"x");
        assert_ne!(a, chain_next(seed, 0, 1, b"y"));
        assert_ne!(a, chain_next(seed, 0, 2, b"x"));
        assert_ne!(a, chain_next(seed, 1, 1, b"x"));
        assert_ne!(chain_next(a, 0, 1, b"x"), chain_next(chain_next(seed, 0, 1, b"y"), 0, 1, b"x"));
    }
}
