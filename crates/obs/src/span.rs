//! Per-publication causal spans.
//!
//! A *trace* follows one publication end to end: the publisher mints a
//! 64-bit trace id at `Publish` time (or the simulator derives one from
//! virtual time + seed), the id rides the wire as an optional frame field,
//! and every pipeline stage the publication passes through appends a
//! [`SpanRecord`] — publish, broker match, shard enqueue, MCKP selection
//! (carrying the decision that the aggregate metrics can't answer: chosen
//! level, realized utility, the gradient that won the knapsack slot, and
//! the budget left at decision time), serialization, and ack. Records
//! carry only *logical* fields — rounds, ids, byte counts — never
//! wall-clock timestamps, so a seeded run dumps byte-identical spans.
//!
//! Spans ride the existing [`TraceRing`](crate::TraceRing) as
//! [`TraceEvent::Span`] events and are grouped
//! back into [`SpanTree`]s by trace id for rendering and for the flight
//! recorder.

use crate::event::TraceEvent;
use serde::{Deserialize, Serialize};

/// Pipeline stage a span record describes.
///
/// Ordered by pipeline position so a sorted span list reads as the
/// publication's causal history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanStage {
    /// Publisher handed the publication to the daemon (trace root).
    Publish,
    /// Broker matched the topic to subscribers.
    Match,
    /// A shard accepted the per-subscriber notification into its queue.
    Queue,
    /// The MCKP selector chose a presentation level.
    Select,
    /// The chosen presentation was packaged for delivery.
    Serialize,
    /// The daemon acked the publish sequence back to the publisher.
    Ack,
    /// The notification was shed (queue overflow or drain refusal)
    /// before selection — always captured regardless of sampling.
    Drop,
}

/// The selection decision attached to a [`SpanStage::Select`] record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanDecision {
    /// Presentation level chosen (0 = suppressed).
    pub level: u8,
    /// Combined utility realized at the chosen level.
    pub utility: f64,
    /// Greedy gradient of the final upgrade into the chosen level (the
    /// adjusted-utility-per-byte slope that won the knapsack slot; 0 for
    /// base selections and non-MCKP baselines).
    pub gradient: f64,
    /// Bytes of the per-round budget still unspent immediately after
    /// this delivery was charged.
    pub budget_remaining: u64,
}

/// One stage of one publication's causal history.
///
/// Only the fields meaningful for the stage are populated; the rest are
/// `None` (encoded as JSON `null`, and tolerated as absent on the read
/// side so older dumps stay loadable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace id minted at publish time (never 0; 0 means "untraced").
    pub trace: u64,
    /// Pipeline stage.
    pub stage: SpanStage,
    /// Shard that ran the stage (None for connection-side stages).
    pub shard: Option<usize>,
    /// Round index at which the stage ran (virtual time).
    pub round: Option<u64>,
    /// Receiving user (per-subscriber stages).
    pub user: Option<u64>,
    /// Content id of the publication.
    pub content: Option<u64>,
    /// Publish sequence number (publish/match/ack stages).
    pub seq: Option<u64>,
    /// Subscribers matched (match stage).
    pub matched: Option<usize>,
    /// Bytes of the chosen presentation (serialize stage).
    pub bytes: Option<u64>,
    /// Selection decision (select stage).
    pub decision: Option<SpanDecision>,
}

impl SpanRecord {
    fn bare(trace: u64, stage: SpanStage) -> Self {
        SpanRecord {
            trace,
            stage,
            shard: None,
            round: None,
            user: None,
            content: None,
            seq: None,
            matched: None,
            bytes: None,
            decision: None,
        }
    }

    /// The trace root, recorded when the daemon accepts a traced publish.
    pub fn publish(trace: u64, seq: u64, content: u64) -> Self {
        SpanRecord {
            seq: Some(seq),
            content: Some(content),
            ..Self::bare(trace, SpanStage::Publish)
        }
    }

    /// Broker matched the publication to `matched` subscribers.
    pub fn matched(trace: u64, seq: u64, matched: usize) -> Self {
        SpanRecord { seq: Some(seq), matched: Some(matched), ..Self::bare(trace, SpanStage::Match) }
    }

    /// A shard enqueued the notification for `user` during `round`.
    pub fn queued(trace: u64, shard: usize, round: u64, user: u64, content: u64) -> Self {
        SpanRecord {
            shard: Some(shard),
            round: Some(round),
            user: Some(user),
            content: Some(content),
            ..Self::bare(trace, SpanStage::Queue)
        }
    }

    /// The selector chose a level for the notification.
    pub fn selected(
        trace: u64,
        shard: usize,
        round: u64,
        user: u64,
        content: u64,
        decision: SpanDecision,
    ) -> Self {
        SpanRecord {
            shard: Some(shard),
            round: Some(round),
            user: Some(user),
            content: Some(content),
            decision: Some(decision),
            ..Self::bare(trace, SpanStage::Select)
        }
    }

    /// The chosen presentation was packaged into the delivery report.
    pub fn serialized(trace: u64, shard: usize, round: u64, content: u64, bytes: u64) -> Self {
        SpanRecord {
            shard: Some(shard),
            round: Some(round),
            content: Some(content),
            bytes: Some(bytes),
            ..Self::bare(trace, SpanStage::Serialize)
        }
    }

    /// The daemon acked the publish sequence back to the publisher.
    pub fn acked(trace: u64, seq: u64) -> Self {
        SpanRecord { seq: Some(seq), ..Self::bare(trace, SpanStage::Ack) }
    }

    /// The notification was shed before selection (anomaly; always kept).
    pub fn dropped(trace: u64, shard: Option<usize>) -> Self {
        SpanRecord { shard, ..Self::bare(trace, SpanStage::Drop) }
    }
}

/// All spans observed for one trace id, in pipeline order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// The trace id the spans share.
    pub trace: u64,
    /// Span records sorted by [`SpanStage`] (stable within a stage).
    pub spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// Groups [`TraceEvent::Span`] events by trace id, preserving first-
    /// appearance order of traces and sorting each tree's spans into
    /// pipeline order. Non-span events are ignored.
    pub fn assemble(events: &[TraceEvent]) -> Vec<SpanTree> {
        let mut order: Vec<u64> = Vec::new();
        let mut by_trace: std::collections::HashMap<u64, Vec<SpanRecord>> =
            std::collections::HashMap::new();
        for ev in events {
            if let TraceEvent::Span(rec) = ev {
                by_trace.entry(rec.trace).or_insert_with(|| {
                    order.push(rec.trace);
                    Vec::new()
                });
                by_trace.get_mut(&rec.trace).expect("just inserted").push(rec.clone());
            }
        }
        order
            .into_iter()
            .map(|trace| {
                let mut spans = by_trace.remove(&trace).expect("grouped above");
                spans.sort_by_key(|s| s.stage);
                SpanTree { trace, spans }
            })
            .collect()
    }

    /// The first span at `stage`, if any.
    pub fn stage(&self, stage: SpanStage) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.stage == stage)
    }

    /// Whether the full publish→queue→select→serialize→ack path was
    /// captured (match is connection-side and optional for shard-local
    /// assemblies).
    pub fn is_complete(&self) -> bool {
        [
            SpanStage::Publish,
            SpanStage::Queue,
            SpanStage::Select,
            SpanStage::Serialize,
            SpanStage::Ack,
        ]
        .iter()
        .all(|&st| self.stage(st).is_some())
    }

    /// Whether the trace captured an anomaly: a shed notification or a
    /// selection downgraded to level 0–1. Anomalous traces bypass head
    /// sampling so they are always available post-mortem.
    pub fn is_anomalous(&self) -> bool {
        self.spans.iter().any(|s| {
            s.stage == SpanStage::Drop || s.decision.as_ref().is_some_and(|d| d.level <= 1)
        })
    }

    /// Renders the tree as JSON lines, one span per line, in pipeline
    /// order — the byte format compared across seeded runs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            if let Ok(line) = serde_json::to_string(span) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Derives a deterministic nonzero 64-bit trace id from logical
/// coordinates: a run seed, a virtual-time stamp (any stable integer
/// encoding — round index, `f64::to_bits` of virtual seconds, or a repeat
/// counter), and the content id. No wall clock is involved, so the same
/// seeded simulator or loadgen run always mints the same ids.
///
/// The mixing is a splitmix64-style finalizer, which spreads sequential
/// inputs across the id space well enough for modulo head sampling.
pub fn derive_trace_id(seed: u64, virtual_stamp: u64, content: u64) -> u64 {
    let mut z = seed ^ virtual_stamp.rotate_left(17) ^ content.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 0 is reserved to mean "untraced" in compact encodings.
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(level: u8) -> SpanDecision {
        SpanDecision { level, utility: 0.5, gradient: 1.0e-5, budget_remaining: 1000 }
    }

    #[test]
    fn derive_is_deterministic_and_nonzero() {
        let a = derive_trace_id(7, 3600, 42);
        let b = derive_trace_id(7, 3600, 42);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(a, derive_trace_id(8, 3600, 42), "seed changes the id");
        assert_ne!(a, derive_trace_id(7, 7200, 42), "virtual time changes the id");
        assert_ne!(a, derive_trace_id(7, 3600, 43), "content changes the id");
    }

    #[test]
    fn assemble_groups_by_trace_and_sorts_stages() {
        let events = vec![
            TraceEvent::Span(SpanRecord::selected(9, 0, 2, 5, 42, decision(3))),
            TraceEvent::RoundStart { shard: 0, round: 2, now_secs: 7200.0, backlog: 1 },
            TraceEvent::Span(SpanRecord::publish(9, 1, 42)),
            TraceEvent::Span(SpanRecord::publish(4, 2, 43)),
            TraceEvent::Span(SpanRecord::queued(9, 0, 1, 5, 42)),
        ];
        let trees = SpanTree::assemble(&events);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 9, "first-appearance order");
        assert_eq!(
            trees[0].spans.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![SpanStage::Publish, SpanStage::Queue, SpanStage::Select],
            "pipeline order, not arrival order"
        );
        assert_eq!(trees[1].trace, 4);
        assert!(!trees[0].is_complete(), "serialize and ack missing");
    }

    #[test]
    fn complete_tree_requires_all_five_stages() {
        let events: Vec<TraceEvent> = vec![
            SpanRecord::publish(1, 1, 42),
            SpanRecord::queued(1, 0, 0, 5, 42),
            SpanRecord::selected(1, 0, 1, 5, 42, decision(4)),
            SpanRecord::serialized(1, 0, 1, 42, 9000),
            SpanRecord::acked(1, 1),
        ]
        .into_iter()
        .map(TraceEvent::Span)
        .collect();
        let trees = SpanTree::assemble(&events);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].is_complete());
        assert!(!trees[0].is_anomalous());
        let sel = trees[0].stage(SpanStage::Select).unwrap();
        assert_eq!(sel.decision.as_ref().unwrap().level, 4);
    }

    #[test]
    fn anomaly_flags_drops_and_low_levels() {
        let dropped = SpanTree::assemble(&[TraceEvent::Span(SpanRecord::dropped(2, Some(1)))]);
        assert!(dropped[0].is_anomalous());
        let low = SpanTree::assemble(&[TraceEvent::Span(SpanRecord::selected(
            3,
            0,
            1,
            5,
            42,
            decision(1),
        ))]);
        assert!(low[0].is_anomalous());
        let fine = SpanTree::assemble(&[TraceEvent::Span(SpanRecord::selected(
            4,
            0,
            1,
            5,
            42,
            decision(2),
        ))]);
        assert!(!fine[0].is_anomalous());
    }

    #[test]
    fn span_records_roundtrip_as_json() {
        let rec = SpanRecord::acked(11, 3);
        let s = serde_json::to_string(&rec).unwrap();
        let back: SpanRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, rec);
        let full = SpanRecord::selected(11, 2, 9, 5, 42, decision(5));
        let s = serde_json::to_string(&full).unwrap();
        let back: SpanRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn span_records_tolerate_absent_optional_fields() {
        // A reader of older dumps (or a hand-written probe) may omit the
        // per-stage optionals entirely; they deserialize as None.
        let s = r#"{"trace":5,"stage":"Ack","seq":3}"#;
        let back: SpanRecord = serde_json::from_str(s).unwrap();
        assert_eq!(back, SpanRecord::acked(5, 3));
    }
}
