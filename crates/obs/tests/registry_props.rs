//! Property tests for the registry's merge semantics: recording into N
//! per-shard registries and merging the snapshots must be observationally
//! identical to recording everything into one registry — this is the
//! invariant the daemon's `Stats` request relies on when it merges shard
//! snapshots into one exposition.

use proptest::prelude::*;
use richnote_obs::{CounterHandle, GaugeHandle, HistogramHandle, Registry};

const SHARDS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Inc { shard: usize, by: u64 },
    SetGauge { shard: usize, value: i32 },
    Observe { shard: usize, us: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..SHARDS, 0u8..3, 0u64..10_000_000).prop_map(|(shard, kind, value)| match kind {
        0 => Op::Inc { shard, by: value % 1_000 },
        1 => Op::SetGauge { shard, value: (value % 200) as i32 - 100 },
        _ => Op::Observe { shard, us: value },
    })
}

/// Registers the standard per-shard vocabulary in `r` and returns the
/// handles for `shard`.
fn register(r: &mut Registry, shard: usize) -> (CounterHandle, GaugeHandle, HistogramHandle) {
    let s = shard.to_string();
    let labels = [("shard", s.as_str())];
    (
        r.counter("richnote_pubs_total", "pubs", &labels),
        r.gauge("richnote_backlog", "backlog", &labels),
        r.histogram("richnote_round_duration_us", "round time", &labels),
    )
}

proptest! {
    /// For any op trace, merging per-shard snapshots (in shard order)
    /// equals one registry that recorded the whole trace.
    #[test]
    fn merged_shard_registries_equal_a_single_registry(
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let mut shards: Vec<Registry> = (0..SHARDS).map(|_| Registry::new()).collect();
        let shard_handles: Vec<_> =
            (0..SHARDS).map(|s| register(&mut shards[s], s)).collect();

        let mut single = Registry::new();
        let single_handles: Vec<_> = (0..SHARDS).map(|s| register(&mut single, s)).collect();

        for op in &ops {
            match *op {
                Op::Inc { shard, by } => {
                    shards[shard].inc(shard_handles[shard].0, by);
                    single.inc(single_handles[shard].0, by);
                }
                Op::SetGauge { shard, value } => {
                    shards[shard].set_gauge(shard_handles[shard].1, f64::from(value));
                    single.set_gauge(single_handles[shard].1, f64::from(value));
                }
                Op::Observe { shard, us } => {
                    shards[shard].observe_us(shard_handles[shard].2, us);
                    single.observe_us(single_handles[shard].2, us);
                }
            }
        }

        let mut merged = shards[0].snapshot();
        for shard in &shards[1..] {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    /// Merge order does not matter, even with overlapping label sets.
    #[test]
    fn merge_order_is_irrelevant(
        ops in prop::collection::vec(op_strategy(), 0..120),
        order in Just([2usize, 0, 1]),
    ) {
        let mut shards: Vec<Registry> = (0..SHARDS).map(|_| Registry::new()).collect();
        let handles: Vec<_> = (0..SHARDS).map(|s| register(&mut shards[s], s)).collect();
        for op in &ops {
            match *op {
                Op::Inc { shard, by } => shards[shard].inc(handles[shard].0, by),
                Op::SetGauge { shard, value } => {
                    shards[shard].set_gauge(handles[shard].1, f64::from(value));
                }
                Op::Observe { shard, us } => shards[shard].observe_us(handles[shard].2, us),
            }
        }
        let mut forward = shards[0].snapshot();
        forward.merge(&shards[1].snapshot());
        forward.merge(&shards[2].snapshot());
        let mut shuffled = shards[order[0]].snapshot();
        shuffled.merge(&shards[order[1]].snapshot());
        shuffled.merge(&shards[order[2]].snapshot());
        prop_assert_eq!(forward, shuffled);
    }
}
