//! Property tests for the SLO rolling windows: rotation/eviction must
//! match a straightforward model under arbitrary event orderings, and
//! per-shard windows rotated on one schedule must merge into exactly the
//! window a single recorder would have produced — the invariant the
//! daemon's health evaluation relies on when it folds shard counters into
//! one engine.

use proptest::prelude::*;
use richnote_obs::slo::RollingWindow;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Record (good, bad) into the open bucket; `lane` picks which of the
    /// two merged windows receives it.
    Record { lane: usize, good: u64, bad: u64 },
    /// Rotate every window (same schedule everywhere).
    Rotate,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0usize..2, 0u64..1_000, 0u64..1_000).prop_map(|(kind, lane, good, bad)| {
        if kind == 0 {
            Op::Rotate
        } else {
            Op::Record { lane, good, bad }
        }
    })
}

/// Reference model: an unbounded bucket list; totals read the last `cap`.
#[derive(Debug, Default)]
struct Model {
    buckets: Vec<(u64, u64)>,
}

impl Model {
    fn new() -> Self {
        Model { buckets: vec![(0, 0)] }
    }

    fn record(&mut self, good: u64, bad: u64) {
        let b = self.buckets.last_mut().unwrap();
        b.0 += good;
        b.1 += bad;
    }

    fn rotate(&mut self) {
        self.buckets.push((0, 0));
    }

    fn totals_last(&self, n: usize) -> (u64, u64) {
        self.buckets.iter().rev().take(n).fold((0, 0), |(g, b), &(og, ob)| (g + og, b + ob))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any op trace and window cap, the rolling window's totals (full
    /// window, fast sub-window, and every intermediate depth) equal the
    /// unbounded model truncated to the same depth.
    #[test]
    fn window_rotation_matches_model(
        cap in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut w = RollingWindow::new(cap);
        let mut model = Model::new();
        for op in &ops {
            match *op {
                Op::Record { good, bad, .. } => {
                    w.record(good, bad);
                    model.record(good, bad);
                }
                Op::Rotate => {
                    w.rotate();
                    model.rotate();
                }
            }
            prop_assert!(w.len() <= cap, "window exceeded its cap");
            prop_assert_eq!(w.len(), model.buckets.len().min(cap));
            for depth in 1..=cap {
                prop_assert_eq!(
                    w.totals_last(depth),
                    model.totals_last(depth.min(w.len())),
                    "depth {} of cap {}", depth, cap
                );
            }
            prop_assert_eq!(w.totals(), model.totals_last(cap));
        }
    }

    /// Splitting a trace across two windows rotated on the same schedule
    /// and merging them equals the single window that saw everything —
    /// at every depth, so burn rates (fast and slow) agree too.
    #[test]
    fn merge_of_lanes_equals_single_recorder(
        cap in 1usize..8,
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut lanes = [RollingWindow::new(cap), RollingWindow::new(cap)];
        let mut single = RollingWindow::new(cap);
        for op in &ops {
            match *op {
                Op::Record { lane, good, bad } => {
                    lanes[lane].record(good, bad);
                    single.record(good, bad);
                }
                Op::Rotate => {
                    lanes[0].rotate();
                    lanes[1].rotate();
                    single.rotate();
                }
            }
        }
        // Merge in both orders: the result must not depend on it.
        let mut ab = lanes[0].clone();
        ab.merge(&lanes[1]);
        let mut ba = lanes[1].clone();
        ba.merge(&lanes[0]);
        for depth in 1..=cap {
            prop_assert_eq!(ab.totals_last(depth), single.totals_last(depth), "depth {}", depth);
            prop_assert_eq!(ba.totals_last(depth), single.totals_last(depth), "depth {}", depth);
        }
        prop_assert_eq!(ab.totals(), single.totals());
        prop_assert_eq!(ab.len(), single.len());
    }
}
