//! Integration test for the counting global allocator: this test binary
//! installs [`CountingAlloc`] for real (the unit tests cannot — a global
//! allocator is a link-time choice), checks that per-thread counters move
//! and stay per-thread, and that exported counts round-trip through the
//! registry's snapshot/serialize/merge pipeline without double-counting.

use richnote_obs::rsrc::{alloc_counts, set_alloc_counting, CountingAlloc};
use richnote_obs::{Registry, RegistrySnapshot};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The gate test flips process-global counting; serialize the tests so
/// the flip cannot race the other test's measurements.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Allocates deliberately and returns the observed per-thread delta.
fn burn_allocations(bytes: usize) -> richnote_obs::AllocCounts {
    let before = alloc_counts();
    let v: Vec<u8> = std::hint::black_box(vec![7u8; bytes]);
    drop(v);
    alloc_counts().since(before)
}

#[test]
fn counting_allocator_round_trips_through_registry_merge() {
    let _gate = GATE.lock().unwrap();
    let d = burn_allocations(64 * 1024);
    assert!(d.allocs >= 1, "vec allocation not counted");
    assert!(d.bytes >= 64 * 1024, "vec bytes not counted: {}", d.bytes);
    assert!(richnote_obs::rsrc::alloc_counting_active());

    // Another thread's allocations must not land on this thread's
    // counters (per-thread attribution is the whole point).
    let before = alloc_counts();
    std::thread::spawn(|| {
        let other = burn_allocations(1024 * 1024);
        assert!(other.allocs >= 1, "spawned thread's own counters move");
    })
    .join()
    .unwrap();
    let cross = alloc_counts().since(before);
    assert!(
        cross.bytes < 1024 * 1024,
        "cross-thread allocation attributed to this thread: {} bytes",
        cross.bytes
    );

    // Export the way shards do — absolute per-thread readings as
    // per-shard counters — then snapshot, serialize, merge. The merged
    // total must be the exact sum of the shard series, once.
    let mut shard0 = Registry::new();
    let c0 = shard0.counter("richnote_allocs_total", "allocs", &[("shard", "0")]);
    let b0 = shard0.counter("richnote_alloc_bytes_total", "bytes", &[("shard", "0")]);
    shard0.set_counter(c0, d.allocs);
    shard0.set_counter(b0, d.bytes);
    let mut shard1 = Registry::new();
    let c1 = shard1.counter("richnote_allocs_total", "allocs", &[("shard", "1")]);
    let b1 = shard1.counter("richnote_alloc_bytes_total", "bytes", &[("shard", "1")]);
    shard1.set_counter(c1, 2 * d.allocs);
    shard1.set_counter(b1, 2 * d.bytes);

    let wire = serde_json::to_string(&shard0.snapshot()).unwrap();
    let mut merged: RegistrySnapshot = serde_json::from_str(&wire).unwrap();
    merged.merge(&shard1.snapshot());
    assert_eq!(merged.counter_total("richnote_allocs_total"), 3 * d.allocs);
    assert_eq!(merged.counter_total("richnote_alloc_bytes_total"), 3 * d.bytes);
    // Same-label re-merge is the double-counting hazard: merging shard 0
    // again must add, visibly, not silently dedupe — callers merge each
    // shard exactly once, so totals stay exact.
    merged.merge(&shard0.snapshot());
    assert_eq!(merged.counter_total("richnote_allocs_total"), 4 * d.allocs);
}

#[test]
fn counting_gate_stops_the_counters() {
    let _gate = GATE.lock().unwrap();
    // The runtime gate is what overhead A/B runs flip: with counting off
    // the wrapper is a pass-through and the counters freeze.
    let warm = burn_allocations(32 * 1024);
    assert!(warm.allocs >= 1);
    set_alloc_counting(false);
    let frozen = burn_allocations(32 * 1024);
    set_alloc_counting(true);
    assert_eq!(frozen.allocs, 0, "counters moved while counting was off");
    let thawed = burn_allocations(32 * 1024);
    assert!(thawed.allocs >= 1, "counters resumed after re-enable");
}
