//! Battery state and synthetic diurnal battery traces.
//!
//! The paper drives energy replenishment from "a separate trace of
//! timestamped battery status per user ... to mimic energy drain and
//! battery recharge patterns" (Sec. V-C, trace from Do et al. INFOCOM'14).
//! Those traces are proprietary; this module synthesizes per-user diurnal
//! traces with the same qualitative shape: overnight charging to full,
//! daytime drain with per-user phase/rate variation.

use serde::{Deserialize, Serialize};

/// A device battery with a capacity and current charge, both in joules.
///
/// Typical smartphone batteries of the paper's era held ≈10 Wh = 36 kJ; the
/// default uses that figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    charge: f64,
}

impl Battery {
    /// A full battery of `capacity` joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "battery capacity must be positive");
        Self { capacity, charge: capacity }
    }

    /// Typical ≈10 Wh smartphone battery.
    pub fn typical_smartphone() -> Self {
        Self::new(36_000.0)
    }

    /// Capacity in joules.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current charge in joules.
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// Charge as a fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.charge / self.capacity
    }

    /// Drains `joules`, saturating at empty; returns the amount actually
    /// drained.
    pub fn drain(&mut self, joules: f64) -> f64 {
        let drained = joules.max(0.0).min(self.charge);
        self.charge -= drained;
        drained
    }

    /// Recharges `joules`, saturating at capacity.
    pub fn recharge(&mut self, joules: f64) {
        self.charge = (self.charge + joules.max(0.0)).min(self.capacity);
    }

    /// Sets the charge fraction directly (used when replaying traces).
    pub fn set_fraction(&mut self, fraction: f64) {
        self.charge = self.capacity * fraction.clamp(0.0, 1.0);
    }
}

impl Default for Battery {
    fn default() -> Self {
        Self::typical_smartphone()
    }
}

/// Configuration of the synthetic diurnal battery trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryTraceConfig {
    /// Hour of day charging starts (device plugged in overnight).
    pub charge_start_hour: f64,
    /// Hour of day charging ends.
    pub charge_end_hour: f64,
    /// Baseline drain per hour as a fraction of capacity (background use).
    pub drain_per_hour: f64,
    /// Per-user phase shift in hours (staggers users' routines).
    pub phase_hours: f64,
}

impl Default for BatteryTraceConfig {
    fn default() -> Self {
        Self {
            charge_start_hour: 23.0,
            charge_end_hour: 7.0,
            drain_per_hour: 0.05,
            phase_hours: 0.0,
        }
    }
}

/// A deterministic per-round battery-fraction trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryTrace {
    fractions: Vec<f64>,
}

impl BatteryTrace {
    /// Synthesizes a trace of `rounds` hourly samples.
    ///
    /// The device charges quickly inside the charging window and drains at
    /// `drain_per_hour` outside it, starting full at the (phase-shifted)
    /// midnight of day 0.
    pub fn synthesize(cfg: &BatteryTraceConfig, rounds: u64) -> Self {
        let mut fractions = Vec::with_capacity(rounds as usize);
        let mut level = 1.0f64;
        for r in 0..rounds {
            let hour = ((r as f64 + cfg.phase_hours) % 24.0 + 24.0) % 24.0;
            let charging = if cfg.charge_start_hour <= cfg.charge_end_hour {
                (cfg.charge_start_hour..cfg.charge_end_hour).contains(&hour)
            } else {
                hour >= cfg.charge_start_hour || hour < cfg.charge_end_hour
            };
            if charging {
                level = (level + 0.25).min(1.0); // ~4 h full charge
            } else {
                level = (level - cfg.drain_per_hour).max(0.05);
            }
            fractions.push(level);
        }
        Self { fractions }
    }

    /// Builds a trace from explicit fractions (e.g. replayed real data).
    pub fn from_fractions(fractions: Vec<f64>) -> Self {
        Self { fractions: fractions.into_iter().map(|f| f.clamp(0.0, 1.0)).collect() }
    }

    /// Battery fraction at `round`, clamping past the end.
    pub fn fraction_at(&self, round: u64) -> f64 {
        if self.fractions.is_empty() {
            return 1.0;
        }
        let idx = (round as usize).min(self.fractions.len() - 1);
        self.fractions[idx]
    }

    /// Number of rounds covered.
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }
}

/// The variable per-round energy replenishment `e(t)` (Algorithm 2):
/// proportional to battery status, reaching the full per-round budget `κ`
/// at or above 80% charge and throttling linearly below.
///
/// ```
/// use richnote_energy::battery::energy_grant;
/// assert_eq!(energy_grant(1.0, 3000.0), 3000.0);
/// assert_eq!(energy_grant(0.4, 3000.0), 1500.0);
/// assert_eq!(energy_grant(0.0, 3000.0), 0.0);
/// ```
pub fn energy_grant(battery_fraction: f64, kappa: f64) -> f64 {
    (battery_fraction.clamp(0.0, 1.0) / 0.8).min(1.0) * kappa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_drain_and_recharge_saturate() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.drain(30.0), 30.0);
        assert_eq!(b.charge(), 70.0);
        assert_eq!(b.drain(1000.0), 70.0);
        assert_eq!(b.charge(), 0.0);
        b.recharge(150.0);
        assert_eq!(b.charge(), 100.0);
    }

    #[test]
    fn negative_amounts_are_ignored() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.drain(-5.0), 0.0);
        b.recharge(-5.0);
        assert_eq!(b.charge(), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Battery::new(0.0);
    }

    #[test]
    fn trace_is_diurnal() {
        let trace = BatteryTrace::synthesize(&BatteryTraceConfig::default(), 48);
        // 6 AM (during overnight charge window) should be near-full.
        assert!(trace.fraction_at(6) > 0.9);
        // 10 PM after a full day of drain should be visibly lower.
        assert!(trace.fraction_at(22) < trace.fraction_at(6));
        // Second day repeats the cycle.
        assert!(trace.fraction_at(30) > 0.9);
    }

    #[test]
    fn trace_never_leaves_unit_interval() {
        let cfg = BatteryTraceConfig { drain_per_hour: 0.5, ..Default::default() };
        let trace = BatteryTrace::synthesize(&cfg, 24 * 7);
        for r in 0..trace.len() as u64 {
            let f = trace.fraction_at(r);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn trace_clamps_past_end() {
        let trace = BatteryTrace::from_fractions(vec![0.5, 0.6]);
        assert_eq!(trace.fraction_at(100), 0.6);
        let empty = BatteryTrace::from_fractions(vec![]);
        assert_eq!(empty.fraction_at(0), 1.0);
    }

    #[test]
    fn phase_shifts_routine() {
        let base = BatteryTrace::synthesize(&BatteryTraceConfig::default(), 24);
        let shifted = BatteryTrace::synthesize(
            &BatteryTraceConfig { phase_hours: 12.0, ..Default::default() },
            24,
        );
        assert_ne!(base, shifted);
    }

    #[test]
    fn grant_is_monotone_in_battery() {
        let mut last = -1.0;
        for pct in 0..=10 {
            let g = energy_grant(pct as f64 / 10.0, 3_000.0);
            assert!(g >= last);
            last = g;
        }
        assert_eq!(energy_grant(0.9, 3_000.0), 3_000.0);
    }
}
