//! # richnote-energy
//!
//! Mobile download-energy model and battery simulation for RichNote.
//!
//! The paper measures "download energy" with the model of Balasubramanian
//! et al., *Energy Consumption in Mobile Phones* (IMC 2009): every transfer
//! pays a network-dependent **setup** cost (radio ramp / association), a
//! **per-byte transfer** cost, and — on cellular — a **tail** cost for the
//! seconds the radio lingers in a high-power state after the transfer.
//!
//! * [`model::NetworkEnergyModel`] — the per-network parameters with
//!   IMC'09-style presets for 3G cellular and WiFi;
//! * [`battery::Battery`] and [`battery::BatteryTrace`] — device battery
//!   state and a synthetic diurnal drain/recharge trace standing in for the
//!   per-user battery traces of Do et al. (INFOCOM 2014) used by the paper;
//! * [`battery::energy_grant`] — the variable per-round replenishment rate
//!   `e(t)` derived from battery status (Algorithm 2, step 2).

pub mod battery;
pub mod model;

pub use battery::{energy_grant, Battery, BatteryTrace, BatteryTraceConfig};
pub use model::NetworkEnergyModel;
