//! The IMC'09-style download energy model.

use serde::{Deserialize, Serialize};

/// Energy parameters of one network type.
///
/// The energy of downloading `x` bytes is modeled as
///
/// ```text
/// E(x) = setup + per_kb · (x / 1000) + tail
/// ```
///
/// with `tail = tail_power · tail_secs` paid once per radio session. The
/// presets approximate the regressions measured by Balasubramanian et al.
/// (IMC 2009) for 3G and WiFi downloads.
///
/// ```
/// use richnote_energy::model::NetworkEnergyModel;
///
/// let cell = NetworkEnergyModel::cellular();
/// // A 200 KB notification (10 s preview) costs setup + transfer + tail:
/// assert!((cell.transfer_energy(200_000) - 16.25).abs() < 1e-9);
/// // WiFi wins for large payloads.
/// assert!(NetworkEnergyModel::wifi().transfer_energy(1_000_000)
///     < cell.transfer_energy(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkEnergyModel {
    /// One-time session setup energy (radio promotion / association), J.
    pub setup: f64,
    /// Transfer energy per kilobyte, J/KB.
    pub per_kb: f64,
    /// Post-transfer tail power, W.
    pub tail_power: f64,
    /// Tail duration, s.
    pub tail_secs: f64,
}

impl NetworkEnergyModel {
    /// 3G cellular preset (IMC'09: ≈0.025 J/KB transfer, ≈3.5 J ramp,
    /// ≈0.62 W tail power held for ≈12.5 s).
    pub fn cellular() -> Self {
        Self { setup: 3.5, per_kb: 0.025, tail_power: 0.62, tail_secs: 12.5 }
    }

    /// WiFi preset (IMC'09: ≈0.007 J/KB, ≈5.9 J association/scan overhead,
    /// negligible tail).
    pub fn wifi() -> Self {
        Self { setup: 5.9, per_kb: 0.007, tail_power: 0.0, tail_secs: 0.0 }
    }

    /// Tail energy per session, J.
    pub fn tail_energy(&self) -> f64 {
        self.tail_power * self.tail_secs
    }

    /// Energy for one isolated transfer of `bytes` (setup + transfer +
    /// tail). Zero bytes cost nothing — the radio never wakes.
    pub fn transfer_energy(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.setup + self.per_kb * bytes as f64 / 1000.0 + self.tail_energy()
    }

    /// Energy for a batched session delivering `total_bytes` across any
    /// number of notifications back-to-back: setup and tail are paid once.
    /// This is how the simulator accounts a round's actual expenditure,
    /// while [`Self::transfer_energy`] is the scheduler's per-item estimate
    /// `ρ(i, j)`.
    pub fn session_energy(&self, total_bytes: u64) -> f64 {
        self.transfer_energy(total_bytes)
    }
}

impl Default for NetworkEnergyModel {
    fn default() -> Self {
        Self::cellular()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(NetworkEnergyModel::cellular().transfer_energy(0), 0.0);
        assert_eq!(NetworkEnergyModel::wifi().transfer_energy(0), 0.0);
    }

    #[test]
    fn cellular_has_tail_wifi_does_not() {
        assert!(NetworkEnergyModel::cellular().tail_energy() > 0.0);
        assert_eq!(NetworkEnergyModel::wifi().tail_energy(), 0.0);
    }

    #[test]
    fn energy_is_monotone_in_bytes() {
        let m = NetworkEnergyModel::cellular();
        let mut last = 0.0;
        for bytes in [1u64, 1_000, 100_000, 1_000_000, 10_000_000] {
            let e = m.transfer_energy(bytes);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn wifi_is_cheaper_per_byte_for_large_transfers() {
        let cell = NetworkEnergyModel::cellular();
        let wifi = NetworkEnergyModel::wifi();
        // For a 10 MB transfer WiFi wins decisively.
        assert!(wifi.transfer_energy(10_000_000) < cell.transfer_energy(10_000_000));
    }

    #[test]
    fn known_cellular_value() {
        let m = NetworkEnergyModel::cellular();
        // 200 KB: 3.5 + 0.025·200 + 0.62·12.5 = 3.5 + 5 + 7.75 = 16.25 J.
        assert!((m.transfer_energy(200_000) - 16.25).abs() < 1e-9);
    }

    #[test]
    fn batched_session_saves_overhead() {
        let m = NetworkEnergyModel::cellular();
        let individually = m.transfer_energy(100_000) * 3.0;
        let batched = m.session_energy(300_000);
        assert!(batched < individually);
    }
}
