//! Ground-truth user behaviour: who clicks what, and when.
//!
//! The paper labels notifications "clicked" or "hovered" from mouse
//! activity. Our synthetic users click according to a logistic function of
//! the same feature set the classifier sees (social tie, popularity,
//! temporal context) **plus unobserved personal taste noise** — the noise
//! is what keeps a learned classifier in the paper's quality band
//! (precision ≈ 0.70, accuracy ≈ 0.689) instead of being perfect.

use rand::Rng;
use richnote_core::content::{ContentFeatures, Interaction};
use serde::{Deserialize, Serialize};

/// Logistic-model weights and noise for the click ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorConfig {
    /// Intercept (controls the base click rate).
    pub bias: f64,
    /// Weight on the social-tie strength.
    pub w_tie: f64,
    /// Weight on mean normalized popularity.
    pub w_popularity: f64,
    /// Weight on the weekend flag.
    pub w_weekend: f64,
    /// Weight on the night flag.
    pub w_night: f64,
    /// Standard deviation of the unobserved taste noise added to the
    /// logit. Larger values make behaviour less predictable.
    pub taste_noise: f64,
    /// Probability that a *non-clicked* notification still gets hovered
    /// (and therefore enters the training set as a negative).
    pub hover_rate: f64,
    /// Mean delay between delivery opportunity and the click, seconds.
    pub mean_click_delay_secs: f64,
}

impl BehaviorConfig {
    /// Calibrated so a Random Forest on the observable features scores near
    /// the paper's five-fold numbers (precision 0.700, accuracy 0.689).
    pub fn paper_calibrated() -> Self {
        Self {
            bias: -1.6,
            w_tie: 2.2,
            w_popularity: 1.6,
            w_weekend: 0.35,
            w_night: -0.45,
            taste_noise: 1.35,
            hover_rate: 0.55,
            mean_click_delay_secs: 2.0 * 3600.0,
        }
    }
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// The behaviour model: deterministic logit plus seeded noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorModel {
    cfg: BehaviorConfig,
}

impl BehaviorModel {
    /// Creates a model from the configuration.
    pub fn new(cfg: BehaviorConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &BehaviorConfig {
        &self.cfg
    }

    /// The noiseless click probability for a feature vector.
    pub fn click_probability(&self, features: &ContentFeatures) -> f64 {
        sigmoid(self.logit(features))
    }

    fn logit(&self, features: &ContentFeatures) -> f64 {
        let pop =
            (features.track_popularity + features.album_popularity + features.artist_popularity)
                / 300.0;
        self.cfg.bias
            + self.cfg.w_tie * features.tie.strength()
            + self.cfg.w_popularity * pop
            + self.cfg.w_weekend * f64::from(u8::from(features.weekend))
            + self.cfg.w_night * f64::from(u8::from(features.night))
    }

    /// Samples the ground-truth interaction for a notification arriving at
    /// `arrival` seconds.
    ///
    /// A standard-normal taste shock scaled by `taste_noise` is added to
    /// the logit before thresholding; non-clicks become hovers with
    /// `hover_rate` and are otherwise unobserved (`NoActivity`).
    pub fn sample_interaction<R: Rng>(
        &self,
        features: &ContentFeatures,
        arrival: f64,
        rng: &mut R,
    ) -> Interaction {
        let shock = self.cfg.taste_noise * gaussian(rng);
        let p = sigmoid(self.logit(features) + shock);
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            let delay = -self.cfg.mean_click_delay_secs * (1.0 - rng.gen_range(0.0..1.0f64)).ln();
            Interaction::Clicked { at: arrival + delay.max(1.0) }
        } else if rng.gen_bool(self.cfg.hover_rate) {
            Interaction::Hovered
        } else {
            Interaction::NoActivity
        }
    }
}

impl Default for BehaviorModel {
    fn default() -> Self {
        Self::new(BehaviorConfig::paper_calibrated())
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Box–Muller standard normal.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use richnote_core::content::SocialTie;

    fn features(tie: SocialTie, pop: f64) -> ContentFeatures {
        ContentFeatures {
            tie,
            track_popularity: pop,
            album_popularity: pop,
            artist_popularity: pop,
            weekend: false,
            night: false,
        }
    }

    #[test]
    fn stronger_ties_click_more() {
        let m = BehaviorModel::default();
        let none = m.click_probability(&features(SocialTie::None, 50.0));
        let friend = m.click_probability(&features(SocialTie::Mutual, 50.0));
        let fav = m.click_probability(&features(SocialTie::FavoriteArtist, 50.0));
        assert!(none < friend);
        assert!(friend < fav);
    }

    #[test]
    fn popularity_increases_clicks() {
        let m = BehaviorModel::default();
        let lo = m.click_probability(&features(SocialTie::Follows, 5.0));
        let hi = m.click_probability(&features(SocialTie::Follows, 95.0));
        assert!(hi > lo);
    }

    #[test]
    fn probabilities_are_valid() {
        let m = BehaviorModel::default();
        for tie in [SocialTie::None, SocialTie::Follows, SocialTie::Mutual] {
            for pop in [1.0, 50.0, 100.0] {
                let p = m.click_probability(&features(tie, pop));
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn click_times_are_after_arrival() {
        let m = BehaviorModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let f = features(SocialTie::FavoriteArtist, 95.0);
        let mut clicks = 0;
        for _ in 0..500 {
            if let Interaction::Clicked { at } = m.sample_interaction(&f, 1_000.0, &mut rng) {
                assert!(at > 1_000.0);
                clicks += 1;
            }
        }
        assert!(clicks > 250, "favorite-artist hits should mostly click, got {clicks}");
    }

    #[test]
    fn empirical_click_rate_tracks_probability() {
        let m = BehaviorModel::new(BehaviorConfig {
            taste_noise: 0.0,
            ..BehaviorConfig::paper_calibrated()
        });
        let f = features(SocialTie::Follows, 60.0);
        let p = m.click_probability(&f);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let clicks = (0..n).filter(|_| m.sample_interaction(&f, 0.0, &mut rng).is_click()).count();
        let rate = clicks as f64 / n as f64;
        assert!((rate - p).abs() < 0.02, "rate {rate} vs p {p}");
    }

    #[test]
    fn taste_noise_moves_individual_outcomes() {
        let noisy = BehaviorModel::default();
        let f = features(SocialTie::None, 10.0);
        let p = noisy.click_probability(&f);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let clicks =
            (0..n).filter(|_| noisy.sample_interaction(&f, 0.0, &mut rng).is_click()).count();
        let rate = clicks as f64 / n as f64;
        // With a low base probability, symmetric logit noise inflates the
        // click rate (sigmoid is convex below 0.5) — the rate must differ
        // noticeably from the noiseless probability.
        assert!((rate - p).abs() > 0.01, "noise had no effect: {rate} vs {p}");
    }

    #[test]
    fn non_clicks_split_between_hover_and_silence() {
        let m = BehaviorModel::new(BehaviorConfig {
            bias: -50.0, // never click
            ..BehaviorConfig::paper_calibrated()
        });
        let f = features(SocialTie::None, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hovered = 0;
        let mut silent = 0;
        for _ in 0..10_000 {
            match m.sample_interaction(&f, 0.0, &mut rng) {
                Interaction::Hovered => hovered += 1,
                Interaction::NoActivity => silent += 1,
                Interaction::Clicked { .. } => {}
            }
        }
        let hover_share = hovered as f64 / (hovered + silent) as f64;
        assert!((hover_share - 0.55).abs() < 0.03, "hover share {hover_share}");
    }
}
