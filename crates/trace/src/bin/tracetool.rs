//! `tracetool` — generate, inspect and persist synthetic RichNote traces.
//!
//! ```text
//! tracetool generate --seed <n> --users <n> --days <n> [--out <file>]
//! tracetool stats <file>
//! tracetool stats --seed <n> --users <n> --days <n>
//! ```

use richnote_trace::generator::{TraceConfig, TraceGenerator};
use richnote_trace::io::{read_items, write_items};
use richnote_trace::stats::TraceStats;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    command: String,
    file: Option<String>,
    out: Option<String>,
    seed: u64,
    users: usize,
    days: u64,
    rate: f64,
}

fn parse() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts =
        Options { command, file: None, out: None, seed: 2015, users: 200, days: 7, rate: 40.0 };
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                opts.seed = take("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?
            }
            "--users" => {
                opts.users = take("--users")?.parse().map_err(|e| format!("bad users: {e}"))?
            }
            "--days" => {
                opts.days = take("--days")?.parse().map_err(|e| format!("bad days: {e}"))?
            }
            "--rate" => {
                opts.rate = take("--rate")?.parse().map_err(|e| format!("bad rate: {e}"))?
            }
            "--out" => opts.out = Some(take("--out")?),
            other if !other.starts_with("--") && opts.file.is_none() => {
                opts.file = Some(other.to_string())
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: tracetool <generate|stats> [<file>] [--seed N] [--users N] [--days N] \
     [--rate notifications-per-user-day] [--out FILE]"
        .to_string()
}

fn generate(opts: &Options) -> Result<(), String> {
    let cfg = TraceConfig {
        seed: opts.seed,
        n_users: opts.users,
        days: opts.days,
        mean_notifications_per_user_day: opts.rate,
        ..TraceConfig::default()
    };
    eprintln!("generating: {} users, {} days, seed {}...", cfg.n_users, cfg.days, cfg.seed);
    let trace = TraceGenerator::new(cfg).generate();
    eprintln!("{}", TraceStats::compute(&trace));
    match &opts.out {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_items(BufWriter::new(file), &trace.items, trace.horizon_secs)
                .map_err(|e| e.to_string())?;
            eprintln!("wrote {} items to {path}", trace.items.len());
        }
        None => {
            let stdout = std::io::stdout();
            write_items(BufWriter::new(stdout.lock()), &trace.items, trace.horizon_secs)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn stats(opts: &Options) -> Result<(), String> {
    match &opts.file {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let (header, items) = read_items(BufReader::new(file)).map_err(|e| e.to_string())?;
            // Rebuild a Trace around the items for the stats computation;
            // catalog/graph stats are not needed here, so regenerate the
            // minimal structures from the recorded items' seed-free view.
            println!(
                "file: {} items over {:.1} days",
                header.items,
                header.horizon_secs / 86_400.0
            );
            let clicked = items.iter().filter(|i| i.interaction.is_click()).count();
            let active = items
                .iter()
                .filter(|i| {
                    !matches!(i.interaction, richnote_core::content::Interaction::NoActivity)
                })
                .count();
            println!(
                "mouse activity: {:.2}, click rate among active: {:.2}",
                active as f64 / header.items.max(1) as f64,
                clicked as f64 / active.max(1) as f64,
            );
            Ok(())
        }
        None => {
            let cfg = TraceConfig {
                seed: opts.seed,
                n_users: opts.users,
                days: opts.days,
                mean_notifications_per_user_day: opts.rate,
                ..TraceConfig::default()
            };
            let trace = TraceGenerator::new(cfg).generate();
            println!("{}", TraceStats::compute(&trace));
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match opts.command.as_str() {
        "generate" => generate(&opts),
        "stats" => stats(&opts),
        other => Err(format!("unknown command {other}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
