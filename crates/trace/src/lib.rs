//! # richnote-trace
//!
//! Synthetic Spotify-like workload generator standing in for the
//! de-identified production traces the paper evaluates on (Sec. V-A/V-C).
//!
//! The real traces — one week of notifications, mouse activity and social
//! graph for the top-10k users — are proprietary. This crate generates a
//! statistically similar workload from a seed:
//!
//! * [`catalog`] — artists, albums and tracks with Zipf-like popularity
//!   (the 1–100 normalized scores of the Spotify public API);
//! * [`graph`] — a scale-free social graph grown by preferential
//!   attachment, with follow/mutual ties and per-user favorite artists;
//! * [`behavior`] — the ground-truth click/hover model: a logistic function
//!   of the paper's feature set plus label noise, calibrated so a Random
//!   Forest lands near the paper's precision 0.700 / accuracy 0.689;
//! * [`generator`] — per-user notification streams over a configurable
//!   horizon with heavy-tailed per-user rates (so "top users by delivered
//!   notifications" exist, as in the paper's user selection).
//!
//! Everything is deterministic given the seed in
//! [`generator::TraceConfig`].

pub mod activity;
pub mod behavior;
pub mod catalog;
pub mod generator;
pub mod graph;
pub mod io;
pub mod stats;

pub use activity::{ActivityConfig, ActivityEvent, ActivityTraceGenerator};
pub use behavior::{BehaviorConfig, BehaviorModel};
pub use catalog::{Catalog, CatalogConfig};
pub use generator::{classifier_rows, Trace, TraceConfig, TraceGenerator};
pub use graph::{GraphConfig, SocialGraph};
pub use io::{read_items, write_items, TraceHeader, TraceIoError};
pub use stats::TraceStats;
