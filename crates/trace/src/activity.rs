//! Activity-driven trace generation: the full Sec. II pipeline.
//!
//! The default [`crate::generator::TraceGenerator`] draws each user's
//! notifications as an independent Poisson stream — convenient, but the
//! real system derives notifications from *publications*: friends'
//! listening sessions, album releases and playlist updates fan out to
//! subscribers. This module generates that upstream activity and derives
//! the notifications from it, which produces the bursty, socially
//! correlated arrivals of a production feed (one popular listener's session
//! hits all of their followers at once).
//!
//! The output is the same [`Trace`] type, so every downstream consumer —
//! classifier training, simulation, experiments — works unchanged.

use crate::behavior::{BehaviorConfig, BehaviorModel};
use crate::catalog::{Catalog, CatalogConfig, Track};
use crate::generator::Trace;
use crate::graph::{GraphConfig, SocialGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use richnote_core::content::{ContentFeatures, ContentItem, ContentKind, SocialTie};
use richnote_core::ids::{ContentId, PlaylistId, UserId};
use serde::{Deserialize, Serialize};

/// One listening event: `listener` started playing `track` at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityEvent {
    /// The streaming user.
    pub listener: UserId,
    /// The track being streamed.
    pub track: richnote_core::ids::TrackId,
    /// Stream start, seconds from trace start.
    pub at: f64,
}

/// Configuration of the activity-driven generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Number of users.
    pub n_users: usize,
    /// Horizon in days.
    pub days: u64,
    /// Mean listening sessions per user per day.
    pub sessions_per_user_day: f64,
    /// Tracks per session, inclusive range.
    pub tracks_per_session: (usize, usize),
    /// Probability that a follower is notified when a friend's session
    /// starts ("a friend starts streaming a music track", Sec. II).
    pub notify_probability: f64,
    /// Album release events per day across the catalog.
    pub releases_per_day: f64,
    /// Number of community playlists.
    pub n_playlists: usize,
    /// Subscribers per playlist.
    pub playlist_subscribers: usize,
    /// Playlist update events per playlist per day.
    pub playlist_updates_per_day: f64,
    /// Catalog parameters.
    pub catalog: CatalogConfig,
    /// Social-graph parameters.
    pub graph: GraphConfig,
    /// Click ground-truth parameters.
    pub behavior: BehaviorConfig,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        Self {
            seed: 20150101,
            n_users: 300,
            days: 7,
            sessions_per_user_day: 4.0,
            tracks_per_session: (3, 12),
            notify_probability: 0.9,
            releases_per_day: 6.0,
            n_playlists: 30,
            playlist_subscribers: 25,
            playlist_updates_per_day: 0.5,
            catalog: CatalogConfig::default(),
            graph: GraphConfig::default(),
            behavior: BehaviorConfig::paper_calibrated(),
        }
    }
}

impl ActivityConfig {
    /// A small configuration for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            n_users: 80,
            days: 2,
            n_playlists: 8,
            playlist_subscribers: 10,
            catalog: CatalogConfig { n_artists: 40, ..CatalogConfig::default() },
            ..Self::default()
        }
    }
}

/// Diurnal weight of hour-of-day `h`: quiet at night, peaking in the
/// evening (a smooth approximation of listening diaries).
fn diurnal_weight(hour: f64) -> f64 {
    // Peak around 19:00, trough around 04:00.
    let phase = (hour - 19.0) / 24.0 * std::f64::consts::TAU;
    0.55 + 0.45 * phase.cos()
}

/// The activity-driven generator.
#[derive(Debug)]
pub struct ActivityTraceGenerator {
    cfg: ActivityConfig,
}

impl ActivityTraceGenerator {
    /// Creates a generator; graph user/artist counts are synchronized with
    /// the top-level configuration as in the plain generator.
    pub fn new(mut cfg: ActivityConfig) -> Self {
        cfg.graph.n_users = cfg.n_users;
        cfg.graph.n_artists = cfg.catalog.n_artists;
        Self { cfg }
    }

    /// Generates the trace along with the underlying activity events.
    pub fn generate(&self) -> (Trace, Vec<ActivityEvent>) {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let catalog = Catalog::generate(&cfg.catalog, &mut rng);
        let graph = SocialGraph::generate(&cfg.graph, &mut rng);
        let behavior = BehaviorModel::new(cfg.behavior);
        let horizon_secs = cfg.days as f64 * 86_400.0;

        let mut activity = Vec::new();
        let mut items: Vec<ContentItem> = Vec::new();
        let mut next_id = 0u64;

        let emit = |items: &mut Vec<ContentItem>,
                    next_id: &mut u64,
                    recipient: UserId,
                    sender: Option<UserId>,
                    kind: ContentKind,
                    track: &Track,
                    at: f64,
                    tie: SocialTie,
                    rng: &mut SmallRng| {
            let hour = (at / 3_600.0) % 24.0;
            let day = (at / 86_400.0) as u64;
            let features = ContentFeatures {
                tie,
                track_popularity: track.popularity,
                album_popularity: catalog.album(track.album).popularity,
                artist_popularity: catalog.artist(track.artist).popularity,
                weekend: matches!(day % 7, 2 | 3),
                night: !(6.0..22.0).contains(&hour),
            };
            let interaction = behavior.sample_interaction(&features, at, rng);
            items.push(ContentItem {
                id: ContentId::new(*next_id),
                recipient,
                sender,
                kind,
                track: track.id,
                album: track.album,
                artist: track.artist,
                arrival: at,
                track_secs: track.duration_secs,
                features,
                interaction,
            });
            *next_id += 1;
        };

        // 1. Listening sessions → friend-feed notifications.
        for u in 0..cfg.n_users {
            let listener = UserId::new(u as u64);
            let followers: Vec<UserId> = (0..cfg.n_users)
                .map(|v| UserId::new(v as u64))
                .filter(|&v| v != listener && graph.follows(v, listener))
                .collect();
            let n_sessions = poisson(&mut rng, cfg.sessions_per_user_day * cfg.days as f64);
            for _ in 0..n_sessions {
                // Diurnal rejection sampling of the session start.
                let start = loop {
                    let t = rng.gen_range(0.0..horizon_secs);
                    let hour = (t / 3_600.0) % 24.0;
                    if rng.gen_range(0.0..1.0) < diurnal_weight(hour) {
                        break t;
                    }
                };
                let (lo, hi) = cfg.tracks_per_session;
                let n_tracks = rng.gen_range(lo..=hi.max(lo));
                let mut t = start;
                let mut first_track: Option<Track> = None;
                for k in 0..n_tracks {
                    let track = *catalog.sample_track(&mut rng);
                    activity.push(ActivityEvent { listener, track: track.id, at: t });
                    if k == 0 {
                        first_track = Some(track);
                    }
                    t += track.duration_secs;
                    if t >= horizon_secs {
                        break;
                    }
                }
                // Session start notifies followers (Spotify friend feed).
                if let Some(track) = first_track {
                    for &follower in &followers {
                        if rng.gen_bool(cfg.notify_probability) {
                            let tie = graph.tie(follower, listener);
                            emit(
                                &mut items,
                                &mut next_id,
                                follower,
                                Some(listener),
                                ContentKind::FriendFeed,
                                &track,
                                start,
                                tie,
                                &mut rng,
                            );
                        }
                    }
                }
            }
        }

        // 2. Album releases → notifications to users favoring the artist.
        let n_releases = poisson(&mut rng, cfg.releases_per_day * cfg.days as f64);
        for _ in 0..n_releases {
            let at = rng.gen_range(0.0..horizon_secs);
            let track = *catalog.sample_track(&mut rng);
            for u in 0..cfg.n_users {
                let user = UserId::new(u as u64);
                if graph.favorites(user).contains(&track.artist) {
                    emit(
                        &mut items,
                        &mut next_id,
                        user,
                        None,
                        ContentKind::AlbumRelease,
                        &track,
                        at,
                        SocialTie::FavoriteArtist,
                        &mut rng,
                    );
                }
            }
        }

        // 3. Playlist updates → notifications to playlist subscribers.
        for p in 0..cfg.n_playlists {
            let _playlist = PlaylistId::new(p as u64);
            let subscribers: Vec<UserId> = (0..cfg.playlist_subscribers)
                .map(|_| UserId::new(rng.gen_range(0..cfg.n_users) as u64))
                .collect();
            let n_updates = poisson(&mut rng, cfg.playlist_updates_per_day * cfg.days as f64);
            for _ in 0..n_updates {
                let at = rng.gen_range(0.0..horizon_secs);
                let track = *catalog.sample_track(&mut rng);
                for &user in &subscribers {
                    emit(
                        &mut items,
                        &mut next_id,
                        user,
                        None,
                        ContentKind::PlaylistUpdate,
                        &track,
                        at,
                        SocialTie::None,
                        &mut rng,
                    );
                }
            }
        }

        items.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        activity.sort_by(|a, b| a.at.total_cmp(&b.at));
        (Trace { items, catalog, graph, horizon_secs }, activity)
    }
}

/// Knuth Poisson sampling (fine for the small means used here).
fn poisson<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richnote_core::content::Interaction;

    fn generate() -> (Trace, Vec<ActivityEvent>) {
        ActivityTraceGenerator::new(ActivityConfig::small(5)).generate()
    }

    #[test]
    fn produces_sorted_items_within_horizon() {
        let (trace, activity) = generate();
        assert!(!trace.items.is_empty());
        assert!(!activity.is_empty());
        for w in trace.items.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for i in &trace.items {
            assert!((0.0..trace.horizon_secs).contains(&i.arrival));
        }
    }

    #[test]
    fn friend_feed_notifications_respect_the_graph() {
        let (trace, _) = generate();
        let mut feeds = 0;
        for i in &trace.items {
            if i.kind == ContentKind::FriendFeed {
                feeds += 1;
                let sender = i.sender.expect("friend feeds carry a sender");
                assert!(
                    trace.graph.follows(i.recipient, sender),
                    "{} does not follow {}",
                    i.recipient,
                    sender
                );
            }
        }
        assert!(feeds > 100, "expected substantial friend-feed volume, got {feeds}");
    }

    #[test]
    fn arrivals_are_bursty_not_poisson() {
        // A session start fans out to all followers at the same instant,
        // so identical arrival timestamps must be common — unlike the
        // per-user Poisson generator.
        let (trace, _) = generate();
        let mut same_instant = 0usize;
        for w in trace.items.windows(2) {
            if (w[0].arrival - w[1].arrival).abs() < 1e-9 {
                same_instant += 1;
            }
        }
        assert!(
            same_instant * 5 > trace.items.len(),
            "expected ≥20% co-arrivals, got {same_instant}/{}",
            trace.items.len()
        );
    }

    #[test]
    fn activity_sessions_play_consecutive_tracks() {
        let (_, activity) = generate();
        // Activity events from one listener within a session are spaced by
        // track durations (tens to hundreds of seconds).
        let listener = activity[0].listener;
        let events: Vec<&ActivityEvent> =
            activity.iter().filter(|e| e.listener == listener).collect();
        assert!(!events.is_empty());
    }

    #[test]
    fn all_three_kinds_are_generated() {
        let (trace, _) = generate();
        for kind in ContentKind::ALL {
            assert!(trace.items.iter().any(|i| i.kind == kind), "missing kind {kind}");
        }
    }

    #[test]
    fn ground_truth_interactions_are_attached() {
        let (trace, _) = generate();
        let clicked = trace.items.iter().filter(|i| i.interaction.is_click()).count();
        let hovered =
            trace.items.iter().filter(|i| matches!(i.interaction, Interaction::Hovered)).count();
        assert!(clicked > 0 && hovered > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, ea) = ActivityTraceGenerator::new(ActivityConfig::small(9)).generate();
        let (b, eb) = ActivityTraceGenerator::new(ActivityConfig::small(9)).generate();
        assert_eq!(a.items, b.items);
        assert_eq!(ea, eb);
    }

    #[test]
    fn diurnal_weight_peaks_in_the_evening() {
        assert!(diurnal_weight(19.0) > diurnal_weight(4.0));
        assert!(diurnal_weight(19.0) <= 1.0);
        assert!(diurnal_weight(4.0) >= 0.0);
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 5_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 4.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn trace_feeds_downstream_consumers() {
        // The activity trace must work with the classifier extraction.
        let (trace, _) = generate();
        let (rows, labels) = crate::generator::classifier_rows(&trace.items);
        assert_eq!(rows.len(), labels.len());
        assert!(rows.len() > 100);
    }
}
