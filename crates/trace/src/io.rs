//! Trace persistence: JSON-lines streaming of notification items.
//!
//! The paper replays fixed one-week trace files; this module lets a
//! generated trace be saved once and replayed across experiments (and
//! diffed across runs) without regenerating. Format: one JSON object per
//! line — a header line with generation metadata, then one line per
//! [`ContentItem`] in arrival order.

use richnote_core::content::ContentItem;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Header line of a trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format marker, always `"richnote-trace"`.
    pub format: String,
    /// Format version.
    pub version: u32,
    /// Number of item lines that follow.
    pub items: usize,
    /// Horizon in seconds.
    pub horizon_secs: f64,
}

/// Error reading a trace stream.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The header is missing or wrong.
    BadHeader(String),
    /// The item count does not match the header.
    CountMismatch {
        /// Items promised by the header.
        expected: usize,
        /// Items actually present.
        found: usize,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace line {line} failed to parse: {message}")
            }
            TraceIoError::BadHeader(m) => write!(f, "bad trace header: {m}"),
            TraceIoError::CountMismatch { expected, found } => {
                write!(f, "trace header promised {expected} items, found {found}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes items as a JSONL trace stream. The writer may be anything
/// implementing [`Write`] — pass `&mut file` to keep using the file.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_items<W: Write>(
    mut w: W,
    items: &[ContentItem],
    horizon_secs: f64,
) -> Result<(), TraceIoError> {
    let header = TraceHeader {
        format: "richnote-trace".to_string(),
        version: 1,
        items: items.len(),
        horizon_secs,
    };
    serde_json::to_writer(&mut w, &header)
        .map_err(|e| TraceIoError::Parse { line: 1, message: e.to_string() })?;
    w.write_all(b"\n")?;
    for item in items {
        serde_json::to_writer(&mut w, item)
            .map_err(|e| TraceIoError::Parse { line: 0, message: e.to_string() })?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSONL trace stream back into items plus its header.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, parse failure, a bad header or
/// an item-count mismatch.
pub fn read_items<R: BufRead>(r: R) -> Result<(TraceHeader, Vec<ContentItem>), TraceIoError> {
    let mut lines = r.lines();
    let header_line =
        lines.next().ok_or_else(|| TraceIoError::BadHeader("empty stream".to_string()))??;
    let header: TraceHeader =
        serde_json::from_str(&header_line).map_err(|e| TraceIoError::BadHeader(e.to_string()))?;
    if header.format != "richnote-trace" {
        return Err(TraceIoError::BadHeader(format!("unknown format {:?}", header.format)));
    }

    let mut items = Vec::with_capacity(header.items);
    for (idx, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let item: ContentItem = serde_json::from_str(&line)
            .map_err(|e| TraceIoError::Parse { line: idx + 2, message: e.to_string() })?;
        items.push(item);
    }
    if items.len() != header.items {
        return Err(TraceIoError::CountMismatch { expected: header.items, found: items.len() });
    }
    Ok((header, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    #[test]
    fn round_trips_through_jsonl() {
        let trace = TraceGenerator::new(TraceConfig::small(4)).generate();
        let mut buf = Vec::new();
        write_items(&mut buf, &trace.items, trace.horizon_secs).unwrap();
        let (header, items) = read_items(&buf[..]).unwrap();
        assert_eq!(header.items, trace.items.len());
        assert_eq!(header.horizon_secs, trace.horizon_secs);
        assert_eq!(items.len(), trace.items.len());
        for (a, b) in trace.items.iter().zip(&items) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.recipient, b.recipient);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn empty_stream_is_a_bad_header() {
        let err = read_items(&b""[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader(_)), "{err}");
    }

    #[test]
    fn wrong_format_is_rejected() {
        let err = read_items(&br#"{"format":"nope","version":1,"items":0,"horizon_secs":0.0}"#[..])
            .unwrap_err();
        assert!(err.to_string().contains("unknown format"));
    }

    #[test]
    fn garbage_line_reports_its_number() {
        let mut buf = Vec::new();
        write_items(&mut buf, &[], 0.0).unwrap();
        buf.extend_from_slice(b"not json\n");
        let err = read_items(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn count_mismatch_is_detected() {
        let trace = TraceGenerator::new(TraceConfig::small(4)).generate();
        let mut buf = Vec::new();
        write_items(&mut buf, &trace.items, trace.horizon_secs).unwrap();
        // Drop the last line.
        let cut = buf.iter().rposition(|&b| b == b'\n').unwrap();
        let cut2 = buf[..cut].iter().rposition(|&b| b == b'\n').unwrap();
        let err = read_items(&buf[..=cut2]).unwrap_err();
        assert!(matches!(err, TraceIoError::CountMismatch { .. }), "{err}");
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_items(&mut buf, &[], 42.0).unwrap();
        let (header, items) = read_items(&buf[..]).unwrap();
        assert_eq!(header.items, 0);
        assert!(items.is_empty());
    }
}
