//! The music catalog: artists, albums, tracks and their popularity.

use rand::Rng;
use richnote_core::ids::{AlbumId, ArtistId, TrackId};
use serde::{Deserialize, Serialize};

/// An artist with a normalized popularity score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Artist {
    /// Identifier.
    pub id: ArtistId,
    /// Popularity 1–100 (Spotify public-API convention).
    pub popularity: f64,
}

/// An album belonging to an artist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Album {
    /// Identifier.
    pub id: AlbumId,
    /// Owning artist.
    pub artist: ArtistId,
    /// Popularity 1–100.
    pub popularity: f64,
}

/// A track on an album.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Identifier.
    pub id: TrackId,
    /// Owning album.
    pub album: AlbumId,
    /// Owning artist.
    pub artist: ArtistId,
    /// Popularity 1–100.
    pub popularity: f64,
    /// Duration in seconds.
    pub duration_secs: f64,
}

/// Catalog generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of artists.
    pub n_artists: usize,
    /// Albums per artist.
    pub albums_per_artist: usize,
    /// Tracks per album.
    pub tracks_per_album: usize,
    /// Zipf exponent of artist popularity by rank.
    pub zipf_exponent: f64,
    /// Mean track duration (seconds); the paper's survey tracks averaged
    /// 276 s.
    pub mean_track_secs: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            n_artists: 200,
            albums_per_artist: 3,
            tracks_per_album: 8,
            zipf_exponent: 0.8,
            mean_track_secs: 276.0,
        }
    }
}

/// A generated catalog with popularity-weighted sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    artists: Vec<Artist>,
    albums: Vec<Album>,
    tracks: Vec<Track>,
    /// Cumulative track-popularity weights for O(log n) sampling.
    cumulative: Vec<f64>,
}

impl Catalog {
    /// Generates a catalog from the configuration.
    ///
    /// Artist popularity follows a rank-based Zipf law scaled into
    /// `[1, 100]`; album and track popularity are the artist's popularity
    /// modulated by multiplicative noise.
    ///
    /// # Panics
    ///
    /// Panics if any count in `cfg` is zero.
    pub fn generate<R: Rng>(cfg: &CatalogConfig, rng: &mut R) -> Self {
        assert!(cfg.n_artists > 0, "catalog needs artists");
        assert!(cfg.albums_per_artist > 0, "catalog needs albums");
        assert!(cfg.tracks_per_album > 0, "catalog needs tracks");

        let mut artists = Vec::with_capacity(cfg.n_artists);
        let mut albums = Vec::new();
        let mut tracks = Vec::new();

        let top = 1.0f64;
        let bottom = (cfg.n_artists as f64).powf(-cfg.zipf_exponent);
        for rank in 0..cfg.n_artists {
            let raw = ((rank + 1) as f64).powf(-cfg.zipf_exponent);
            // Scale raw ∈ [bottom, top] into [1, 100].
            let popularity = 1.0 + 99.0 * (raw - bottom) / (top - bottom).max(1e-12);
            let artist = Artist { id: ArtistId::new(rank as u64), popularity };
            artists.push(artist);

            for a in 0..cfg.albums_per_artist {
                let album_id = AlbumId::new((rank * cfg.albums_per_artist + a) as u64);
                let album_pop = modulate(popularity, 0.25, rng);
                albums.push(Album { id: album_id, artist: artist.id, popularity: album_pop });

                for t in 0..cfg.tracks_per_album {
                    let track_idx = (rank * cfg.albums_per_artist + a) * cfg.tracks_per_album + t;
                    let dur = (cfg.mean_track_secs * rng.gen_range(0.6..1.4)).max(30.0);
                    tracks.push(Track {
                        id: TrackId::new(track_idx as u64),
                        album: album_id,
                        artist: artist.id,
                        popularity: modulate(album_pop, 0.25, rng),
                        duration_secs: dur,
                    });
                }
            }
        }

        let mut cumulative = Vec::with_capacity(tracks.len());
        let mut acc = 0.0;
        for t in &tracks {
            acc += t.popularity;
            cumulative.push(acc);
        }

        Self { artists, albums, tracks, cumulative }
    }

    /// All artists.
    pub fn artists(&self) -> &[Artist] {
        &self.artists
    }

    /// All albums.
    pub fn albums(&self) -> &[Album] {
        &self.albums
    }

    /// All tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// The artist with the given id.
    pub fn artist(&self, id: ArtistId) -> &Artist {
        &self.artists[id.value() as usize]
    }

    /// The album with the given id.
    pub fn album(&self, id: AlbumId) -> &Album {
        &self.albums[id.value() as usize]
    }

    /// Samples a track with probability proportional to its popularity.
    pub fn sample_track<R: Rng>(&self, rng: &mut R) -> &Track {
        let total = *self.cumulative.last().expect("catalog is non-empty");
        let draw = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= draw);
        &self.tracks[idx.min(self.tracks.len() - 1)]
    }

    /// Samples a track by a specific artist, uniformly; `None` when the
    /// artist has no tracks in this catalog.
    pub fn sample_track_by_artist<R: Rng>(&self, artist: ArtistId, rng: &mut R) -> Option<&Track> {
        let candidates: Vec<usize> = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.artist == artist)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        Some(&self.tracks[pick])
    }
}

/// Multiplies `value` by `1 ± spread` noise, clamping into `[1, 100]`.
fn modulate<R: Rng>(value: f64, spread: f64, rng: &mut R) -> f64 {
    (value * rng.gen_range(1.0 - spread..1.0 + spread)).clamp(1.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = SmallRng::seed_from_u64(42);
        Catalog::generate(&CatalogConfig::default(), &mut rng)
    }

    #[test]
    fn counts_match_config() {
        let c = catalog();
        let cfg = CatalogConfig::default();
        assert_eq!(c.artists().len(), cfg.n_artists);
        assert_eq!(c.albums().len(), cfg.n_artists * cfg.albums_per_artist);
        assert_eq!(c.tracks().len(), cfg.n_artists * cfg.albums_per_artist * cfg.tracks_per_album);
    }

    #[test]
    fn popularity_in_api_range() {
        let c = catalog();
        for a in c.artists() {
            assert!((1.0..=100.0).contains(&a.popularity));
        }
        for t in c.tracks() {
            assert!((1.0..=100.0).contains(&t.popularity));
        }
    }

    #[test]
    fn popularity_is_zipf_decreasing_by_rank() {
        let c = catalog();
        assert!(c.artists()[0].popularity > c.artists()[50].popularity);
        assert!(c.artists()[50].popularity > c.artists()[199].popularity);
        assert!((c.artists()[0].popularity - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_prefers_popular_tracks() {
        let c = catalog();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mut top_artist_hits = 0;
        for _ in 0..n {
            let t = c.sample_track(&mut rng);
            if t.artist.value() < 20 {
                top_artist_hits += 1;
            }
        }
        // Top-10% artists should receive far more than 10% of samples.
        assert!(
            top_artist_hits as f64 / n as f64 > 0.2,
            "top-20 share {}",
            top_artist_hits as f64 / n as f64
        );
    }

    #[test]
    fn track_links_are_consistent() {
        let c = catalog();
        for t in c.tracks() {
            let album = c.album(t.album);
            assert_eq!(album.artist, t.artist);
        }
    }

    #[test]
    fn sample_by_artist_respects_artist() {
        let c = catalog();
        let mut rng = SmallRng::seed_from_u64(3);
        for artist_raw in [0u64, 57, 199] {
            let t = c.sample_track_by_artist(ArtistId::new(artist_raw), &mut rng).unwrap();
            assert_eq!(t.artist, ArtistId::new(artist_raw));
        }
        assert!(c.sample_track_by_artist(ArtistId::new(9_999), &mut rng).is_none());
    }

    #[test]
    fn durations_are_plausible() {
        let c = catalog();
        let mean: f64 =
            c.tracks().iter().map(|t| t.duration_secs).sum::<f64>() / c.tracks().len() as f64;
        assert!((200.0..350.0).contains(&mean), "mean duration {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let ca = Catalog::generate(&CatalogConfig::default(), &mut a);
        let cb = Catalog::generate(&CatalogConfig::default(), &mut b);
        assert_eq!(ca, cb);
    }
}
