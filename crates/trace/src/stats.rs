//! Descriptive statistics of a generated trace — the numbers one checks
//! before trusting a workload (volume distribution, kind mix, click rates
//! by tie strength, inter-arrival behaviour).

use crate::generator::Trace;
use richnote_core::content::{ContentKind, Interaction, SocialTie};
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total notifications.
    pub items: usize,
    /// Distinct recipients.
    pub recipients: usize,
    /// Items per user: (min, median, p90, max).
    pub volume_quantiles: (usize, usize, usize, usize),
    /// Share of each kind `[friend-feed, album-release, playlist-update]`.
    pub kind_shares: [f64; 3],
    /// Share of items with any mouse activity.
    pub active_share: f64,
    /// Click rate among active items.
    pub click_rate: f64,
    /// Click rate among active items per tie
    /// `[none, follows, mutual, favorite-artist]`.
    pub click_rate_by_tie: [f64; 4],
    /// Mean inter-arrival gap for the busiest user, seconds.
    pub top_user_mean_gap_secs: f64,
}

impl TraceStats {
    /// Computes statistics over a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no items.
    pub fn compute(trace: &Trace) -> Self {
        assert!(!trace.items.is_empty(), "cannot summarize an empty trace");
        let items = trace.items.len();

        let volumes = trace.users_by_volume();
        let recipients = volumes.len();
        let mut counts: Vec<usize> = volumes.iter().map(|&(_, n)| n).collect();
        counts.sort_unstable();
        let q = |f: f64| counts[((counts.len() - 1) as f64 * f) as usize];
        let volume_quantiles = (counts[0], q(0.5), q(0.9), *counts.last().unwrap());

        let mut kind_counts = [0usize; 3];
        let mut active = 0usize;
        let mut clicks = 0usize;
        let mut tie_active = [0usize; 4];
        let mut tie_clicks = [0usize; 4];
        for item in &trace.items {
            let k = match item.kind {
                ContentKind::FriendFeed => 0,
                ContentKind::AlbumRelease => 1,
                ContentKind::PlaylistUpdate => 2,
            };
            kind_counts[k] += 1;
            if !matches!(item.interaction, Interaction::NoActivity) {
                active += 1;
                let t = match item.features.tie {
                    SocialTie::None => 0,
                    SocialTie::Follows => 1,
                    SocialTie::Mutual => 2,
                    SocialTie::FavoriteArtist => 3,
                };
                tie_active[t] += 1;
                if item.interaction.is_click() {
                    clicks += 1;
                    tie_clicks[t] += 1;
                }
            }
        }

        let share = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let click_rate_by_tie = [
            share(tie_clicks[0], tie_active[0]),
            share(tie_clicks[1], tie_active[1]),
            share(tie_clicks[2], tie_active[2]),
            share(tie_clicks[3], tie_active[3]),
        ];

        let top_user = volumes[0].0;
        let arrivals: Vec<f64> = trace.items_for(top_user).map(|i| i.arrival).collect();
        let top_user_mean_gap_secs = if arrivals.len() < 2 {
            trace.horizon_secs
        } else {
            (arrivals.last().unwrap() - arrivals.first().unwrap()) / (arrivals.len() - 1) as f64
        };

        Self {
            items,
            recipients,
            volume_quantiles,
            kind_shares: [
                share(kind_counts[0], items),
                share(kind_counts[1], items),
                share(kind_counts[2], items),
            ],
            active_share: share(active, items),
            click_rate: share(clicks, active),
            click_rate_by_tie,
            top_user_mean_gap_secs,
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "items: {} across {} users", self.items, self.recipients)?;
        writeln!(
            f,
            "volume/user: min {} median {} p90 {} max {}",
            self.volume_quantiles.0,
            self.volume_quantiles.1,
            self.volume_quantiles.2,
            self.volume_quantiles.3
        )?;
        writeln!(
            f,
            "kinds: feed {:.2} album {:.2} playlist {:.2}",
            self.kind_shares[0], self.kind_shares[1], self.kind_shares[2]
        )?;
        writeln!(
            f,
            "mouse activity: {:.2}, click rate {:.2} (tie none {:.2} / follows {:.2} / mutual {:.2} / favorite {:.2})",
            self.active_share,
            self.click_rate,
            self.click_rate_by_tie[0],
            self.click_rate_by_tie[1],
            self.click_rate_by_tie[2],
            self.click_rate_by_tie[3]
        )?;
        write!(f, "busiest user mean gap: {:.0} s", self.top_user_mean_gap_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};

    fn stats() -> TraceStats {
        let trace =
            TraceGenerator::new(TraceConfig { n_users: 200, ..TraceConfig::default() }).generate();
        TraceStats::compute(&trace)
    }

    #[test]
    fn shares_are_probabilities_summing_to_one() {
        let s = stats();
        let kind_sum: f64 = s.kind_shares.iter().sum();
        assert!((kind_sum - 1.0).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&s.active_share));
        assert!((0.0..=1.0).contains(&s.click_rate));
    }

    #[test]
    fn click_rate_increases_with_tie_strength() {
        let s = stats();
        // The ground-truth behaviour model weights ties positively; the
        // empirical rates must reflect it.
        assert!(
            s.click_rate_by_tie[3] > s.click_rate_by_tie[0],
            "favorite {} vs none {}",
            s.click_rate_by_tie[3],
            s.click_rate_by_tie[0]
        );
        assert!(s.click_rate_by_tie[1] > s.click_rate_by_tie[0]);
    }

    #[test]
    fn quantiles_are_ordered() {
        let s = stats();
        let (min, med, p90, max) = s.volume_quantiles;
        assert!(min <= med && med <= p90 && p90 <= max);
        assert!(max > 0);
    }

    #[test]
    fn busiest_user_has_small_gaps() {
        let s = stats();
        // 40 notifications/day for the mean user → the top user's mean gap
        // is well under 2 hours.
        assert!(s.top_user_mean_gap_secs < 7_200.0, "{}", s.top_user_mean_gap_secs);
    }

    #[test]
    fn display_is_informative() {
        let text = stats().to_string();
        assert!(text.contains("items:"));
        assert!(text.contains("click rate"));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        let trace = Trace {
            items: vec![],
            catalog: crate::catalog::Catalog::generate(
                &crate::catalog::CatalogConfig::default(),
                &mut rng,
            ),
            graph: crate::graph::SocialGraph::generate(
                &crate::graph::GraphConfig::default(),
                &mut rng,
            ),
            horizon_secs: 0.0,
        };
        let _ = TraceStats::compute(&trace);
    }
}
