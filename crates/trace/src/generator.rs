//! End-to-end trace generation: per-user notification streams with
//! ground-truth interactions, standing in for the one-week de-identified
//! Spotify trace (Jan 1–7 2015) of Sec. V.

use crate::behavior::{BehaviorConfig, BehaviorModel};
use crate::catalog::{Catalog, CatalogConfig};
use crate::graph::{GraphConfig, SocialGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use richnote_core::content::{ContentFeatures, ContentItem, ContentKind, Interaction, SocialTie};
use richnote_core::ids::{ContentId, UserId};
use serde::{Deserialize, Serialize};

/// Trace generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Deterministic seed; everything derives from it.
    pub seed: u64,
    /// Number of users.
    pub n_users: usize,
    /// Horizon in days (the paper uses 7).
    pub days: u64,
    /// Mean notifications per user per day (rates are heavy-tailed around
    /// this mean, so "top users" receive many times more).
    pub mean_notifications_per_user_day: f64,
    /// Catalog parameters.
    pub catalog: CatalogConfig,
    /// Social-graph parameters.
    pub graph: GraphConfig,
    /// Behaviour (click ground truth) parameters.
    pub behavior: BehaviorConfig,
    /// Mix of publication kinds as probabilities
    /// `[friend-feed, album-release, playlist-update]`.
    pub kind_mix: [f64; 3],
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 20150101,
            n_users: 500,
            days: 7,
            mean_notifications_per_user_day: 12.0,
            catalog: CatalogConfig::default(),
            graph: GraphConfig::default(),
            behavior: BehaviorConfig::paper_calibrated(),
            kind_mix: [0.70, 0.15, 0.15],
        }
    }
}

impl TraceConfig {
    /// A small configuration for unit tests.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            n_users: 60,
            days: 2,
            mean_notifications_per_user_day: 6.0,
            graph: GraphConfig { n_users: 60, ..GraphConfig::default() },
            catalog: CatalogConfig { n_artists: 40, ..CatalogConfig::default() },
            ..Self::default()
        }
    }
}

/// A generated trace: items sorted by arrival time, plus the structures
/// that produced them (kept for feature extraction and analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All notifications, sorted by arrival time.
    pub items: Vec<ContentItem>,
    /// The catalog used.
    pub catalog: Catalog,
    /// The social graph used.
    pub graph: SocialGraph,
    /// Horizon in seconds.
    pub horizon_secs: f64,
}

impl Trace {
    /// Notifications of one user, in arrival order.
    pub fn items_for(&self, user: UserId) -> impl Iterator<Item = &ContentItem> {
        self.items.iter().filter(move |i| i.recipient == user)
    }

    /// Users ranked by descending notification count — the paper simulates
    /// the "top 10k users with maximum number of delivered notifications".
    pub fn users_by_volume(&self) -> Vec<(UserId, usize)> {
        let mut counts = std::collections::HashMap::new();
        for item in &self.items {
            *counts.entry(item.recipient).or_insert(0usize) += 1;
        }
        let mut v: Vec<(UserId, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The top `n` users by volume.
    pub fn top_users(&self, n: usize) -> Vec<UserId> {
        self.users_by_volume().into_iter().take(n).map(|(u, _)| u).collect()
    }

    /// Overall click rate among items with mouse activity.
    pub fn click_rate(&self) -> f64 {
        let active: Vec<&ContentItem> = self
            .items
            .iter()
            .filter(|i| !matches!(i.interaction, Interaction::NoActivity))
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().filter(|i| i.interaction.is_click()).count() as f64 / active.len() as f64
    }
}

/// Generator tying catalog, graph and behaviour together.
///
/// ```
/// use richnote_trace::generator::{TraceConfig, TraceGenerator};
///
/// let trace = TraceGenerator::new(TraceConfig::small(1)).generate();
/// assert!(!trace.items.is_empty());
/// // Items arrive in time order with ground-truth interactions attached.
/// assert!(trace.items.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator; `cfg.graph.n_users` is forced to `cfg.n_users`
    /// and `cfg.graph.n_artists` to the catalog's artist count, so the
    /// graph always covers every recipient and every favorite artist has
    /// tracks.
    pub fn new(mut cfg: TraceConfig) -> Self {
        cfg.graph.n_users = cfg.n_users;
        cfg.graph.n_artists = cfg.catalog.n_artists;
        Self { cfg }
    }

    /// Generates the full trace.
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let catalog = Catalog::generate(&cfg.catalog, &mut rng);
        let graph = SocialGraph::generate(&cfg.graph, &mut rng);
        let behavior = BehaviorModel::new(cfg.behavior);
        let horizon_secs = cfg.days as f64 * 86_400.0;

        let mut items = Vec::new();
        let mut next_id = 0u64;

        for u in 0..cfg.n_users {
            let user = UserId::new(u as u64);
            // Heavy-tailed per-user rate: lognormal-ish multiplier.
            let mult = lognormal(&mut rng, 0.0, 0.8);
            let rate_per_sec = cfg.mean_notifications_per_user_day * mult / 86_400.0;
            if rate_per_sec <= 0.0 {
                continue;
            }

            // Poisson arrivals by exponential gaps.
            let mut t = exponential(&mut rng, rate_per_sec);
            while t < horizon_secs {
                let item = self.make_item(
                    ContentId::new(next_id),
                    user,
                    t,
                    &catalog,
                    &graph,
                    &behavior,
                    &mut rng,
                );
                next_id += 1;
                items.push(item);
                t += exponential(&mut rng, rate_per_sec);
            }
        }

        items.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        Trace { items, catalog, graph, horizon_secs }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_item(
        &self,
        id: ContentId,
        recipient: UserId,
        arrival: f64,
        catalog: &Catalog,
        graph: &SocialGraph,
        behavior: &BehaviorModel,
        rng: &mut SmallRng,
    ) -> ContentItem {
        let kind = self.sample_kind(rng);

        // Pick the sender/track according to the publication kind.
        let followees: Vec<UserId> = graph.followees(recipient).collect();
        let (sender, track, tie) = match kind {
            ContentKind::FriendFeed if !followees.is_empty() => {
                let sender = followees[rng.gen_range(0..followees.len())];
                let track = *catalog.sample_track(rng);
                (Some(sender), track, graph.tie(recipient, sender))
            }
            ContentKind::AlbumRelease => {
                // Prefer favorite artists: that is why users follow them.
                let favs = graph.favorites(recipient);
                let track = if !favs.is_empty() && rng.gen_bool(0.5) {
                    let artist = favs[rng.gen_range(0..favs.len())];
                    catalog
                        .sample_track_by_artist(artist, rng)
                        .copied()
                        .unwrap_or_else(|| *catalog.sample_track(rng))
                } else {
                    *catalog.sample_track(rng)
                };
                let tie = graph.artist_tie(recipient, track.artist);
                (None, track, tie)
            }
            _ => {
                // Playlist updates and friend feeds without followees:
                // anonymous popular content.
                let track = *catalog.sample_track(rng);
                (None, track, SocialTie::None)
            }
        };

        let hour_of_day = (arrival / 3_600.0) % 24.0;
        let day_index = (arrival / 86_400.0) as u64;
        let features = ContentFeatures {
            tie,
            track_popularity: track.popularity,
            album_popularity: catalog.album(track.album).popularity,
            artist_popularity: catalog.artist(track.artist).popularity,
            // Trace starts on a Thursday (Jan 1 2015): days 2,3 are the
            // weekend of week one.
            weekend: matches!(day_index % 7, 2 | 3),
            night: !(6.0..22.0).contains(&hour_of_day),
        };
        let interaction = behavior.sample_interaction(&features, arrival, rng);

        ContentItem {
            id,
            recipient,
            sender,
            kind,
            track: track.id,
            album: track.album,
            artist: track.artist,
            arrival,
            track_secs: track.duration_secs,
            features,
            interaction,
        }
    }

    fn sample_kind(&self, rng: &mut SmallRng) -> ContentKind {
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mix = self.cfg.kind_mix;
        let total: f64 = mix.iter().sum();
        let mut acc = 0.0;
        for (i, &p) in mix.iter().enumerate() {
            acc += p / total;
            if draw < acc {
                return ContentKind::ALL[i];
            }
        }
        ContentKind::PlaylistUpdate
    }
}

/// Extracts classifier training rows from trace items: features of every
/// item with mouse activity, labeled clicked (`true`) vs hovered
/// (`false`). Items without activity are filtered out, exactly as in
/// Sec. V-A.
pub fn classifier_rows(items: &[ContentItem]) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for item in items {
        match item.interaction {
            Interaction::Clicked { .. } => {
                rows.push(item.features.to_vec());
                labels.push(true);
            }
            Interaction::Hovered => {
                rows.push(item.features.to_vec());
                labels.push(false);
            }
            Interaction::NoActivity => {}
        }
    }
    (rows, labels)
}

fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        TraceGenerator::new(TraceConfig::small(1)).generate()
    }

    #[test]
    fn items_are_sorted_and_within_horizon() {
        let t = trace();
        assert!(!t.items.is_empty());
        for w in t.items.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for i in &t.items {
            assert!(i.arrival >= 0.0 && i.arrival < t.horizon_secs);
        }
    }

    #[test]
    fn ids_are_unique() {
        let t = trace();
        let mut ids: Vec<u64> = t.items.iter().map(|i| i.id.value()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.items.len());
    }

    #[test]
    fn volume_is_heavy_tailed() {
        let t =
            TraceGenerator::new(TraceConfig { n_users: 300, ..TraceConfig::default() }).generate();
        let by_volume = t.users_by_volume();
        let top = by_volume[0].1 as f64;
        let median = by_volume[by_volume.len() / 2].1 as f64;
        assert!(top > 3.0 * median, "top {top}, median {median}");
    }

    #[test]
    fn top_users_ordering() {
        let t = trace();
        let volumes = t.users_by_volume();
        let top3 = t.top_users(3);
        assert_eq!(top3.len(), 3);
        assert_eq!(top3[0], volumes[0].0);
        assert!(volumes[0].1 >= volumes[1].1);
    }

    #[test]
    fn kinds_follow_mix() {
        let t =
            TraceGenerator::new(TraceConfig { n_users: 400, ..TraceConfig::default() }).generate();
        let n = t.items.len() as f64;
        let feed = t.items.iter().filter(|i| i.kind == ContentKind::FriendFeed).count() as f64;
        assert!((feed / n - 0.70).abs() < 0.05, "friend-feed share {}", feed / n);
    }

    #[test]
    fn friend_feed_items_have_senders() {
        let t = trace();
        for i in &t.items {
            if i.kind == ContentKind::FriendFeed && i.sender.is_none() {
                // Allowed only when the user follows no one.
                assert_eq!(t.graph.followees(i.recipient).count(), 0);
            }
            if let Some(s) = i.sender {
                assert_ne!(s, i.recipient, "no self-notifications");
            }
        }
    }

    #[test]
    fn click_rate_is_moderate() {
        let t =
            TraceGenerator::new(TraceConfig { n_users: 400, ..TraceConfig::default() }).generate();
        let rate = t.click_rate();
        // Neither degenerate: clicks should be a substantial minority.
        assert!((0.15..0.75).contains(&rate), "click rate {rate}");
    }

    #[test]
    fn classifier_rows_exclude_silent_items() {
        let t = trace();
        let (rows, labels) = classifier_rows(&t.items);
        assert_eq!(rows.len(), labels.len());
        let active =
            t.items.iter().filter(|i| !matches!(i.interaction, Interaction::NoActivity)).count();
        assert_eq!(rows.len(), active);
        assert!(rows.len() < t.items.len(), "some items must be silent");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TraceGenerator::new(TraceConfig::small(9)).generate();
        let b = TraceGenerator::new(TraceConfig::small(9)).generate();
        assert_eq!(a.items, b.items);
        let c = TraceGenerator::new(TraceConfig::small(10)).generate();
        assert_ne!(a.items, c.items);
    }

    #[test]
    fn features_reflect_time_of_day() {
        let t = trace();
        for i in &t.items {
            let hour = (i.arrival / 3600.0) % 24.0;
            assert_eq!(i.features.night, !(6.0..22.0).contains(&hour));
        }
    }
}
