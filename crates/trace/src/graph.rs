//! A scale-free social graph grown by preferential attachment, plus
//! per-user favorite artists — the "de-identified social graph" feature
//! source of Sec. V-A.

use rand::Rng;
use richnote_core::content::SocialTie;
use richnote_core::ids::{ArtistId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Social-graph generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Number of users.
    pub n_users: usize,
    /// Follow edges created per joining user (Barabási–Albert `m`).
    pub follows_per_user: usize,
    /// Probability a follow is reciprocated (creating a mutual tie).
    pub reciprocation: f64,
    /// Favorite artists per user.
    pub favorites_per_user: usize,
    /// Number of artists available to favorite.
    pub n_artists: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            n_users: 1_000,
            follows_per_user: 5,
            reciprocation: 0.4,
            favorites_per_user: 3,
            n_artists: 200,
        }
    }
}

/// The generated social graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocialGraph {
    /// follows[u] = set of users u follows.
    follows: Vec<BTreeSet<UserId>>,
    /// favorites[u] = artists u marked favorite.
    favorites: Vec<Vec<ArtistId>>,
}

impl SocialGraph {
    /// Grows a graph by preferential attachment: each joining user follows
    /// `follows_per_user` existing users chosen with probability
    /// proportional to their follower count (+1), yielding the heavy-tailed
    /// degree distribution of real social graphs; each follow is
    /// reciprocated with probability `reciprocation`.
    ///
    /// # Panics
    ///
    /// Panics if `n_users < 2`, `follows_per_user == 0` or
    /// `n_artists == 0`.
    pub fn generate<R: Rng>(cfg: &GraphConfig, rng: &mut R) -> Self {
        assert!(cfg.n_users >= 2, "graph needs at least two users");
        assert!(cfg.follows_per_user > 0, "users must follow someone");
        assert!(cfg.n_artists > 0, "need artists to favorite");

        let mut follows: Vec<BTreeSet<UserId>> = vec![BTreeSet::new(); cfg.n_users];
        // `targets` holds one entry per (follower) edge endpoint, so drawing
        // uniformly from it implements preferential attachment.
        let mut targets: Vec<usize> = (0..cfg.n_users.min(cfg.follows_per_user + 1)).collect();

        for u in 1..cfg.n_users {
            let m = cfg.follows_per_user.min(u);
            // Insertion-ordered Vec keeps generation deterministic (HashSet
            // iteration order would not be).
            let mut chosen: Vec<usize> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < 50 * m {
                guard += 1;
                // Mix uniform and preferential choices to guarantee
                // progress in tiny graphs.
                let v = if targets.is_empty() || rng.gen_bool(0.25) {
                    rng.gen_range(0..u)
                } else {
                    targets[rng.gen_range(0..targets.len())] % cfg.n_users
                };
                if v != u && v < u && !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for v in chosen {
                follows[u].insert(UserId::new(v as u64));
                targets.push(v);
                if rng.gen_bool(cfg.reciprocation) {
                    follows[v].insert(UserId::new(u as u64));
                    targets.push(u);
                }
            }
        }

        let favorites = (0..cfg.n_users)
            .map(|_| {
                let mut favs: Vec<usize> = Vec::new();
                while favs.len() < cfg.favorites_per_user.min(cfg.n_artists) {
                    let a = rng.gen_range(0..cfg.n_artists);
                    if !favs.contains(&a) {
                        favs.push(a);
                    }
                }
                favs.into_iter().map(|a| ArtistId::new(a as u64)).collect()
            })
            .collect();

        Self { follows, favorites }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.follows.len()
    }

    /// Users that `user` follows.
    pub fn followees(&self, user: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.follows[user.value() as usize].iter().copied()
    }

    /// Whether `a` follows `b`.
    pub fn follows(&self, a: UserId, b: UserId) -> bool {
        self.follows[a.value() as usize].contains(&b)
    }

    /// The social tie from `recipient` towards a human `sender`.
    pub fn tie(&self, recipient: UserId, sender: UserId) -> SocialTie {
        let forward = self.follows(recipient, sender);
        let backward = self.follows(sender, recipient);
        match (forward, backward) {
            (true, true) => SocialTie::Mutual,
            (true, false) => SocialTie::Follows,
            _ => SocialTie::None,
        }
    }

    /// The tie from `recipient` towards an artist.
    pub fn artist_tie(&self, recipient: UserId, artist: ArtistId) -> SocialTie {
        if self.favorites[recipient.value() as usize].contains(&artist) {
            SocialTie::FavoriteArtist
        } else {
            SocialTie::None
        }
    }

    /// Favorite artists of `user`.
    pub fn favorites(&self, user: UserId) -> &[ArtistId] {
        &self.favorites[user.value() as usize]
    }

    /// Out-degree (follow count) of every user.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.follows.iter().map(|f| f.len()).collect()
    }

    /// In-degree (follower count) of every user.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut degrees = vec![0usize; self.follows.len()];
        for f in &self.follows {
            for v in f {
                degrees[v.value() as usize] += 1;
            }
        }
        degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph() -> SocialGraph {
        let mut rng = SmallRng::seed_from_u64(11);
        SocialGraph::generate(&GraphConfig::default(), &mut rng)
    }

    #[test]
    fn every_late_user_follows_someone() {
        let g = graph();
        for u in 1..g.n_users() {
            assert!(g.followees(UserId::new(u as u64)).count() > 0, "user {u} follows no one");
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = graph();
        let degrees = g.in_degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        // Scale-free graphs have hubs far above the mean.
        assert!(max as f64 > 5.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn ties_classify_correctly() {
        let g = graph();
        let mut found_follow = false;
        let mut found_mutual = false;
        for u in 0..g.n_users().min(300) {
            let uid = UserId::new(u as u64);
            for v in g.followees(uid) {
                match g.tie(uid, v) {
                    SocialTie::Mutual => found_mutual = true,
                    SocialTie::Follows => found_follow = true,
                    t => panic!("followee must be Follows or Mutual, got {t:?}"),
                }
            }
        }
        assert!(found_follow && found_mutual);
    }

    #[test]
    fn non_edge_is_none() {
        let g = graph();
        // Find a pair with no edge either way.
        'outer: for a in 0..50u64 {
            for b in 500..550u64 {
                let (ua, ub) = (UserId::new(a), UserId::new(b));
                if !g.follows(ua, ub) && !g.follows(ub, ua) {
                    assert_eq!(g.tie(ua, ub), SocialTie::None);
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn favorites_have_configured_size() {
        let g = graph();
        for u in 0..g.n_users() {
            assert_eq!(g.favorites(UserId::new(u as u64)).len(), 3);
        }
    }

    #[test]
    fn artist_tie_is_favorite_or_none() {
        let g = graph();
        let u = UserId::new(0);
        let fav = g.favorites(u)[0];
        assert_eq!(g.artist_tie(u, fav), SocialTie::FavoriteArtist);
        // An artist id beyond the configured range can't be a favorite.
        assert_eq!(g.artist_tie(u, ArtistId::new(10_000)), SocialTie::None);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let ga = SocialGraph::generate(&GraphConfig::default(), &mut a);
        let gb = SocialGraph::generate(&GraphConfig::default(), &mut b);
        assert_eq!(ga, gb);
    }

    #[test]
    fn tiny_graph_works() {
        let cfg = GraphConfig { n_users: 2, follows_per_user: 1, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(1);
        let g = SocialGraph::generate(&cfg, &mut rng);
        assert!(g.follows(UserId::new(1), UserId::new(0)));
    }
}
