//! The three-state Markov connectivity model of Sec. V-D3.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Connectivity state of a mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkState {
    /// Connected via WiFi.
    Wifi,
    /// Connected via cellular.
    Cell,
    /// No connectivity.
    Off,
}

impl NetworkState {
    /// All states in matrix order.
    pub const ALL: [NetworkState; 3] = [NetworkState::Wifi, NetworkState::Cell, NetworkState::Off];

    /// Whether the device can receive data in this state.
    pub fn is_online(self) -> bool {
        !matches!(self, NetworkState::Off)
    }

    fn index(self) -> usize {
        match self {
            NetworkState::Wifi => 0,
            NetworkState::Cell => 1,
            NetworkState::Off => 2,
        }
    }
}

impl fmt::Display for NetworkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkState::Wifi => "WIFI",
            NetworkState::Cell => "CELL",
            NetworkState::Off => "OFF",
        };
        f.write_str(s)
    }
}

/// Error validating a transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionMatrixError {
    /// A row does not sum to 1 (within tolerance).
    RowSum {
        /// Offending row index.
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// A probability is negative or non-finite.
    InvalidProbability {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for TransitionMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionMatrixError::RowSum { row, sum } => {
                write!(f, "transition row {row} sums to {sum}, expected 1")
            }
            TransitionMatrixError::InvalidProbability { row, col } => {
                write!(f, "transition probability at ({row}, {col}) is invalid")
            }
        }
    }
}

impl Error for TransitionMatrixError {}

/// A validated 3×3 Markov transition matrix over
/// `[Wifi, Cell, Off]` with per-round sampling.
///
/// ```
/// use richnote_net::markov::{MarkovConnectivity, NetworkState};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut chain = MarkovConnectivity::paper_default(NetworkState::Cell);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let next = chain.step(&mut rng);
/// assert!(matches!(next, NetworkState::Wifi | NetworkState::Cell | NetworkState::Off));
/// // The paper's 50%-stay matrix has a uniform stationary distribution.
/// let pi = chain.stationary();
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovConnectivity {
    matrix: [[f64; 3]; 3],
    state: NetworkState,
}

impl MarkovConnectivity {
    /// Creates a chain from a row-stochastic matrix, starting in `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionMatrixError`] if any entry is negative or
    /// non-finite, or a row does not sum to 1 within `1e-9`.
    pub fn new(
        matrix: [[f64; 3]; 3],
        initial: NetworkState,
    ) -> Result<Self, TransitionMatrixError> {
        for (r, row) in matrix.iter().enumerate() {
            for (c, &p) in row.iter().enumerate() {
                if !p.is_finite() || p < 0.0 {
                    return Err(TransitionMatrixError::InvalidProbability { row: r, col: c });
                }
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(TransitionMatrixError::RowSum { row: r, sum });
            }
        }
        Ok(Self { matrix, state: initial })
    }

    /// The paper's matrix: 50% probability of remaining in the current
    /// state, equal split of the remainder ("equal probability of
    /// transiting to cell or wifi when off").
    pub fn paper_default(initial: NetworkState) -> Self {
        let m = [
            [0.50, 0.25, 0.25], // from Wifi
            [0.25, 0.50, 0.25], // from Cell
            [0.25, 0.25, 0.50], // from Off
        ];
        Self::new(m, initial).expect("paper matrix is valid")
    }

    /// A cellular-dominated variant: the device is mostly on cell, never on
    /// WiFi — used as the Markov counterpart of the cell-only experiments.
    pub fn cell_heavy(initial: NetworkState) -> Self {
        let m = [
            [0.0, 0.7, 0.3], // Wifi decays immediately (unused start)
            [0.0, 0.7, 0.3],
            [0.0, 0.5, 0.5],
        ];
        Self::new(m, initial).expect("cell-heavy matrix is valid")
    }

    /// Current state.
    pub fn state(&self) -> NetworkState {
        self.state
    }

    /// The transition row out of `from`, as
    /// `[P(→Wifi), P(→Cell), P(→Off)]` — the one-step prediction of the
    /// next round's state given an observation of the current one.
    pub fn transition_row(&self, from: NetworkState) -> [f64; 3] {
        self.matrix[from.index()]
    }

    /// The full (validated) transition matrix, rows/columns in
    /// `[Wifi, Cell, Off]` order.
    pub fn matrix(&self) -> &[[f64; 3]; 3] {
        &self.matrix
    }

    /// Advances one round and returns the new state.
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> NetworkState {
        let row = self.matrix[self.state.index()];
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (idx, &p) in row.iter().enumerate() {
            acc += p;
            if draw < acc {
                self.state = NetworkState::ALL[idx];
                return self.state;
            }
        }
        // Floating-point slack: stay in the last state of the row.
        self.state = NetworkState::ALL[2];
        self.state
    }

    /// The stationary distribution `π` (power iteration), as
    /// `[P(Wifi), P(Cell), P(Off)]`.
    pub fn stationary(&self) -> [f64; 3] {
        let mut pi = [1.0 / 3.0; 3];
        for _ in 0..10_000 {
            let mut next = [0.0; 3];
            for (i, &p) in pi.iter().enumerate() {
                for (j, cell) in next.iter_mut().enumerate() {
                    *cell += p * self.matrix[i][j];
                }
            }
            let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if diff < 1e-14 {
                break;
            }
        }
        pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_matrix_is_uniform_stationary() {
        let chain = MarkovConnectivity::paper_default(NetworkState::Off);
        let pi = chain.stationary();
        for p in pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-9, "{pi:?}");
        }
    }

    #[test]
    fn occupancy_converges_to_stationary() {
        let mut chain = MarkovConnectivity::paper_default(NetworkState::Off);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u64; 3];
        let n = 60_000;
        for _ in 0..n {
            let s = chain.step(&mut rng);
            counts[match s {
                NetworkState::Wifi => 0,
                NetworkState::Cell => 1,
                NetworkState::Off => 2,
            }] += 1;
        }
        for c in counts {
            let f = c as f64 / n as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn bad_row_sum_rejected() {
        let m = [[0.5, 0.5, 0.1], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]];
        assert!(matches!(
            MarkovConnectivity::new(m, NetworkState::Off),
            Err(TransitionMatrixError::RowSum { row: 0, .. })
        ));
    }

    #[test]
    fn negative_probability_rejected() {
        let m = [[1.5, -0.5, 0.0], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]];
        assert!(matches!(
            MarkovConnectivity::new(m, NetworkState::Off),
            Err(TransitionMatrixError::InvalidProbability { row: 0, col: 1 })
        ));
    }

    #[test]
    fn nan_probability_rejected() {
        let m = [[f64::NAN, 0.5, 0.5], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]];
        assert!(MarkovConnectivity::new(m, NetworkState::Off).is_err());
    }

    #[test]
    fn cell_heavy_never_reaches_wifi() {
        let mut chain = MarkovConnectivity::cell_heavy(NetworkState::Cell);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..5_000 {
            assert_ne!(chain.step(&mut rng), NetworkState::Wifi);
        }
    }

    #[test]
    fn online_predicate() {
        assert!(NetworkState::Wifi.is_online());
        assert!(NetworkState::Cell.is_online());
        assert!(!NetworkState::Off.is_online());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(NetworkState::Wifi.to_string(), "WIFI");
        assert_eq!(NetworkState::Cell.to_string(), "CELL");
        assert_eq!(NetworkState::Off.to_string(), "OFF");
    }

    #[test]
    fn absorbing_state_stays_put() {
        let m = [[1.0, 0.0, 0.0], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]];
        let mut chain = MarkovConnectivity::new(m, NetworkState::Wifi).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(chain.step(&mut rng), NetworkState::Wifi);
        }
    }
}
