//! Per-state link profiles and connectivity schedules.

use crate::markov::{MarkovConnectivity, NetworkState};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Bandwidth characteristics of each network state, used to cap how many
/// bytes can be moved within one scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Sustained WiFi throughput, bytes/s.
    pub wifi_bytes_per_sec: u64,
    /// Sustained cellular throughput, bytes/s.
    pub cell_bytes_per_sec: u64,
}

impl LinkProfile {
    /// Era-appropriate defaults: ≈8 Mbps WiFi, ≈2 Mbps 3G cellular.
    pub fn paper_default() -> Self {
        Self { wifi_bytes_per_sec: 1_000_000, cell_bytes_per_sec: 250_000 }
    }

    /// Bytes the link can carry in `secs` seconds under `state`.
    pub fn capacity(&self, state: NetworkState, secs: f64) -> u64 {
        let rate = match state {
            NetworkState::Wifi => self.wifi_bytes_per_sec,
            NetworkState::Cell => self.cell_bytes_per_sec,
            NetworkState::Off => 0,
        };
        (rate as f64 * secs.max(0.0)) as u64
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A source of per-round network states. Implemented by the Markov model
/// and by degenerate fixed schedules.
///
/// The trait is object-safe: the RNG is taken as `&mut dyn RngCore`, so
/// policies can hold a `Box<dyn ConnectivitySchedule>` without
/// monomorphizing per generator. Concrete generators coerce at the call
/// site (`schedule.state_for_round(r, &mut small_rng)` still compiles).
pub trait ConnectivitySchedule {
    /// The network state during round `round`.
    fn state_for_round(&mut self, round: u64, rng: &mut dyn RngCore) -> NetworkState;
}

/// Always-cellular connectivity: the setting of Figures 3, 4 and 5(a,b,d),
/// where "users ... are connected to the broker sporadically through a
/// cellular connection". Sporadic availability is modeled by an
/// availability probability per round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellOnly {
    /// Probability the user is reachable in a given round.
    pub availability: f64,
}

impl CellOnly {
    /// Always-on cellular.
    pub fn always() -> Self {
        Self { availability: 1.0 }
    }

    /// Sporadic cellular with the given per-round availability.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is outside `[0, 1]`.
    pub fn sporadic(availability: f64) -> Self {
        assert!((0.0..=1.0).contains(&availability), "availability must be a probability");
        Self { availability }
    }
}

impl ConnectivitySchedule for CellOnly {
    fn state_for_round(&mut self, _round: u64, mut rng: &mut dyn RngCore) -> NetworkState {
        if self.availability >= 1.0 || Rng::gen_bool(&mut rng, self.availability.clamp(0.0, 1.0)) {
            NetworkState::Cell
        } else {
            NetworkState::Off
        }
    }
}

impl ConnectivitySchedule for MarkovConnectivity {
    fn state_for_round(&mut self, _round: u64, mut rng: &mut dyn RngCore) -> NetworkState {
        self.step(&mut rng)
    }
}

/// A connectivity schedule replayed from an explicit per-round state
/// sequence — the substitute for real per-user connectivity traces, and
/// the tool for constructing adversarial patterns in tests (e.g. "offline
/// all week, WiFi for one hour").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleFromTrace {
    states: Vec<NetworkState>,
    /// State used for rounds past the end of the recorded sequence.
    pub fallback: NetworkState,
}

impl ScheduleFromTrace {
    /// Creates a replayed schedule; rounds beyond `states` use `fallback`.
    pub fn new(states: Vec<NetworkState>, fallback: NetworkState) -> Self {
        Self { states, fallback }
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no rounds are recorded.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The recorded state at `round` without advancing the schedule;
    /// rounds beyond the trace return the fallback.
    pub fn peek(&self, round: u64) -> NetworkState {
        self.states.get(round as usize).copied().unwrap_or(self.fallback)
    }

    /// Fraction of recorded rounds that are online.
    pub fn availability(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.states.iter().filter(|s| s.is_online()).count() as f64 / self.states.len() as f64
    }
}

impl ConnectivitySchedule for ScheduleFromTrace {
    fn state_for_round(&mut self, round: u64, _rng: &mut dyn RngCore) -> NetworkState {
        self.states.get(round as usize).copied().unwrap_or(self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn capacity_is_zero_when_off() {
        let p = LinkProfile::paper_default();
        assert_eq!(p.capacity(NetworkState::Off, 3600.0), 0);
    }

    #[test]
    fn wifi_outpaces_cell() {
        let p = LinkProfile::paper_default();
        assert!(p.capacity(NetworkState::Wifi, 60.0) > p.capacity(NetworkState::Cell, 60.0));
    }

    #[test]
    fn negative_duration_gives_zero() {
        let p = LinkProfile::paper_default();
        assert_eq!(p.capacity(NetworkState::Cell, -1.0), 0);
    }

    #[test]
    fn always_cell_is_always_cell() {
        let mut c = CellOnly::always();
        let mut rng = SmallRng::seed_from_u64(1);
        for r in 0..50 {
            assert_eq!(c.state_for_round(r, &mut rng), NetworkState::Cell);
        }
    }

    #[test]
    fn sporadic_cell_mixes_cell_and_off() {
        let mut c = CellOnly::sporadic(0.5);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cell = 0;
        let n = 10_000;
        for r in 0..n {
            if c.state_for_round(r, &mut rng) == NetworkState::Cell {
                cell += 1;
            }
        }
        let f = cell as f64 / n as f64;
        assert!((f - 0.5).abs() < 0.03, "availability {f}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_availability_panics() {
        let _ = CellOnly::sporadic(1.5);
    }

    #[test]
    fn replayed_schedule_follows_the_trace() {
        let mut s = ScheduleFromTrace::new(
            vec![NetworkState::Off, NetworkState::Cell, NetworkState::Wifi],
            NetworkState::Off,
        );
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(s.state_for_round(0, &mut rng), NetworkState::Off);
        assert_eq!(s.state_for_round(1, &mut rng), NetworkState::Cell);
        assert_eq!(s.state_for_round(2, &mut rng), NetworkState::Wifi);
        // Past the end: fallback.
        assert_eq!(s.state_for_round(99, &mut rng), NetworkState::Off);
        assert_eq!(s.len(), 3);
        assert!((s.availability() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_replay_uses_fallback_and_zero_availability() {
        let mut s = ScheduleFromTrace::new(vec![], NetworkState::Cell);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(s.is_empty());
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.state_for_round(0, &mut rng), NetworkState::Cell);
    }

    #[test]
    fn markov_implements_schedule() {
        let mut chain = MarkovConnectivity::paper_default(NetworkState::Off);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_online = false;
        for r in 0..100 {
            if chain.state_for_round(r, &mut rng).is_online() {
                seen_online = true;
            }
        }
        assert!(seen_online);
    }
}
