//! One-stop import for connectivity modeling.
//!
//! `use richnote_net::prelude::*;` brings in every schedule, the Markov
//! model, the link profile, and the state enum. [`ConnectivitySchedule`]
//! is object-safe, so downstream policies can hold a
//! `Box<dyn ConnectivitySchedule>` and drive any schedule through one
//! virtual call per round.

pub use crate::connectivity::{CellOnly, ConnectivitySchedule, LinkProfile, ScheduleFromTrace};
pub use crate::diurnal::DiurnalConfig;
pub use crate::markov::{MarkovConnectivity, NetworkState, TransitionMatrixError};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn schedules_are_object_safe() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut boxed: Vec<Box<dyn ConnectivitySchedule>> = vec![
            Box::new(CellOnly::always()),
            Box::new(MarkovConnectivity::paper_default(NetworkState::Cell)),
            Box::new(ScheduleFromTrace::new(vec![NetworkState::Wifi], NetworkState::Off)),
        ];
        for schedule in &mut boxed {
            // Concrete RNGs coerce to `&mut dyn RngCore` at the call site.
            let _ = schedule.state_for_round(0, &mut rng);
        }
    }
}
