//! # richnote-net
//!
//! Network connectivity substrate for the RichNote simulations.
//!
//! The paper models per-user connectivity as a three-state Markov chain
//! over **WIFI**, **CELL** and **OFF** with 50% probability of remaining in
//! the current state and equal probability of transitioning to the other
//! states (Sec. V-D3). This crate provides:
//!
//! * [`markov::NetworkState`] — the three states and their properties;
//! * [`markov::MarkovConnectivity`] — a validated transition matrix with
//!   the paper's preset, per-round sampling and stationary-distribution
//!   computation;
//! * [`connectivity::LinkProfile`] — per-state bandwidth/capacity figures
//!   used to cap deliveries within a round;
//! * [`connectivity::CellOnly`] — the degenerate always-cellular schedule
//!   used in Figures 3, 4 and 5(a,b,d).

pub mod connectivity;
pub mod diurnal;
pub mod markov;
pub mod prelude;

pub use connectivity::{CellOnly, ConnectivitySchedule, LinkProfile, ScheduleFromTrace};
pub use diurnal::DiurnalConfig;
pub use markov::{MarkovConnectivity, NetworkState, TransitionMatrixError};
