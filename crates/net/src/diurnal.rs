//! Diurnal connectivity synthesis: a realistic daily rhythm of WiFi at
//! home, cellular while out, and overnight radio silence.
//!
//! The uniform Markov chain of Sec. V-D3 has no time-of-day structure;
//! real connectivity traces do. This generator produces per-round state
//! sequences with a home/commute/work cycle plus per-user phase shifts and
//! random perturbation, replayable through
//! [`crate::connectivity::ScheduleFromTrace`].

use crate::connectivity::ScheduleFromTrace;
use crate::markov::NetworkState;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the daily connectivity rhythm (hours in local time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Start of the overnight offline window.
    pub sleep_start_hour: f64,
    /// End of the overnight offline window.
    pub sleep_end_hour: f64,
    /// Start of the workday (WiFi at the workplace).
    pub work_start_hour: f64,
    /// End of the workday.
    pub work_end_hour: f64,
    /// Whether the workplace offers WiFi (else cellular all day).
    pub work_wifi: bool,
    /// Probability of a random per-round perturbation (elevator, dead
    /// zone, tethering, ...) flipping the nominal state.
    pub perturbation: f64,
    /// Per-user phase shift in hours.
    pub phase_hours: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        Self {
            sleep_start_hour: 0.0,
            sleep_end_hour: 7.0,
            work_start_hour: 9.0,
            work_end_hour: 17.0,
            work_wifi: true,
            perturbation: 0.05,
            phase_hours: 0.0,
        }
    }
}

impl DiurnalConfig {
    /// The nominal (perturbation-free) state at an hour of day.
    pub fn nominal_state(&self, hour: f64) -> NetworkState {
        let h = ((hour % 24.0) + 24.0) % 24.0;
        let in_window = |start: f64, end: f64| {
            if start <= end {
                (start..end).contains(&h)
            } else {
                h >= start || h < end
            }
        };
        if in_window(self.sleep_start_hour, self.sleep_end_hour) {
            NetworkState::Off
        } else if in_window(self.work_start_hour, self.work_end_hour) {
            if self.work_wifi {
                NetworkState::Wifi
            } else {
                NetworkState::Cell
            }
        } else if in_window(self.work_end_hour, self.sleep_start_hour) {
            // Evening at home: WiFi.
            NetworkState::Wifi
        } else {
            // Morning routine / commute: cellular.
            NetworkState::Cell
        }
    }

    /// Synthesizes a replayable schedule of `rounds` hourly states.
    pub fn synthesize<R: Rng>(&self, rng: &mut R, rounds: u64) -> ScheduleFromTrace {
        let states = (0..rounds)
            .map(|r| {
                let hour = (r as f64 + self.phase_hours) % 24.0;
                let nominal = self.nominal_state(hour);
                if rng.gen_bool(self.perturbation.clamp(0.0, 1.0)) {
                    // Perturbation: degrade one step (WiFi→Cell, Cell→Off,
                    // Off→Cell for an unexpectedly reachable device).
                    match nominal {
                        NetworkState::Wifi => NetworkState::Cell,
                        NetworkState::Cell => NetworkState::Off,
                        NetworkState::Off => NetworkState::Cell,
                    }
                } else {
                    nominal
                }
            })
            .collect();
        ScheduleFromTrace::new(states, NetworkState::Cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_day_follows_the_rhythm() {
        let cfg = DiurnalConfig::default();
        assert_eq!(cfg.nominal_state(3.0), NetworkState::Off); // asleep
        assert_eq!(cfg.nominal_state(8.0), NetworkState::Cell); // commute
        assert_eq!(cfg.nominal_state(12.0), NetworkState::Wifi); // office
        assert_eq!(cfg.nominal_state(20.0), NetworkState::Wifi); // home
        assert_eq!(cfg.nominal_state(27.0), cfg.nominal_state(3.0)); // wraps
    }

    #[test]
    fn no_work_wifi_means_cell_days() {
        let cfg = DiurnalConfig { work_wifi: false, ..Default::default() };
        assert_eq!(cfg.nominal_state(12.0), NetworkState::Cell);
    }

    #[test]
    fn synthesized_week_is_mostly_nominal() {
        let cfg = DiurnalConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let schedule = cfg.synthesize(&mut rng, 168);
        assert_eq!(schedule.len(), 168);
        // 7h sleep per day → availability ≈ (24−7)/24 ≈ 0.71 ± perturbation.
        let availability = schedule.availability();
        assert!((0.6..0.8).contains(&availability), "availability {availability}");
    }

    #[test]
    fn perturbation_zero_is_deterministic_rhythm() {
        let cfg = DiurnalConfig { perturbation: 0.0, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(2);
        let schedule = cfg.synthesize(&mut rng, 48);
        let mut rng2 = SmallRng::seed_from_u64(99);
        let schedule2 = cfg.synthesize(&mut rng2, 48);
        assert_eq!(schedule, schedule2, "no randomness without perturbation");
    }

    #[test]
    fn phase_shift_staggers_users() {
        let base = DiurnalConfig { perturbation: 0.0, ..Default::default() };
        let shifted = DiurnalConfig { phase_hours: 8.0, perturbation: 0.0, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(3);
        let a = base.synthesize(&mut rng, 24);
        let b = shifted.synthesize(&mut rng, 24);
        assert_ne!(a, b);
    }
}
