//! Deterministic scenario pack: named connectivity/battery regimes that
//! stress the adaptive delivery path, each emitting a machine-readable
//! report with utility-per-MB and shed-rate.
//!
//! Four scenarios ship with the pack:
//!
//! * `commute-flaky` — flaky cellular during commute windows, cell
//!   workdays, home WiFi evenings; the regime where predicting flaky
//!   rounds and capping the ladder pays off most.
//! * `evening-wifi` — sporadic daytime cellular followed by a stable
//!   evening WiFi window; the whole cohort surges online at once and
//!   drains its backlog.
//! * `mass-event` — all-day cellular with a congested evening event
//!   window where most rounds draw Off.
//! * `battery-critical` — the paper's Markov network, but a cohort with
//!   heavy drain and a short overnight charge window, so energy grants
//!   (not data) bind selection.
//!
//! Every scenario is fully deterministic given its seed: same seed, same
//! report bytes. The `scenario-smoke` CI step relies on that.

use crate::experiments::{EnvConfig, ExperimentEnv};
use crate::metrics::{AggregateMetrics, MAX_LEVEL};
use crate::simulator::{NetworkKind, PolicyKind, PopulationSim, SimulationConfig};
use rand::Rng;
use richnote_core::paper;
use richnote_energy::battery::BatteryTraceConfig;
use richnote_net::connectivity::ScheduleFromTrace;
use richnote_net::markov::NetworkState;
use serde::{Deserialize, Serialize};

/// Names of every scenario in the pack, in canonical order.
pub const SCENARIO_NAMES: [&str; 4] =
    ["commute-flaky", "evening-wifi", "mass-event", "battery-critical"];

/// Static description of one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Canonical name (accepted by `simulate --scenario`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Connectivity regime.
    pub network: NetworkKind,
    /// Battery regime.
    pub battery: BatteryTraceConfig,
    /// Weekly data budget in MB (kept binding for the simulated cohort).
    pub budget_mb: u64,
}

/// Looks up a scenario by name.
pub fn spec(name: &str) -> Option<ScenarioSpec> {
    let base_battery = BatteryTraceConfig::default();
    match name {
        "commute-flaky" => Some(ScenarioSpec {
            name: "commute-flaky",
            description: "flaky cell commutes, cell workday, WiFi evenings",
            network: NetworkKind::CommuteFlaky,
            battery: base_battery,
            budget_mb: 100,
        }),
        "evening-wifi" => Some(ScenarioSpec {
            name: "evening-wifi",
            description: "sporadic daytime cell, stable evening WiFi surge",
            network: NetworkKind::EveningWifi,
            battery: base_battery,
            budget_mb: 100,
        }),
        "mass-event" => Some(ScenarioSpec {
            name: "mass-event",
            description: "all-day cell, congested evening event window",
            network: NetworkKind::MassEvent,
            battery: base_battery,
            budget_mb: 100,
        }),
        "battery-critical" => Some(ScenarioSpec {
            name: "battery-critical",
            description: "Markov network, heavy drain, short charge window",
            network: NetworkKind::Markov,
            battery: BatteryTraceConfig {
                charge_start_hour: 2.0,
                charge_end_hour: 5.0,
                drain_per_hour: 0.15,
                ..base_battery
            },
            budget_mb: 10,
        }),
        _ => None,
    }
}

/// Environment scale for a scenario run. Quick mode trades cohort size
/// and horizon for runtime and is what CI smoke uses.
pub fn env_config(quick: bool) -> EnvConfig {
    if quick {
        EnvConfig {
            seed: 2015,
            n_users: 60,
            top_users: 24,
            mean_notifications_per_user_day: 60.0,
            days: 2,
        }
    } else {
        EnvConfig {
            seed: 2015,
            n_users: 150,
            top_users: 60,
            mean_notifications_per_user_day: 60.0,
            days: 7,
        }
    }
}

/// Builds the [`SimulationConfig`] for a scenario/policy pair.
pub fn simulation_config(s: &ScenarioSpec, policy: PolicyKind, quick: bool) -> SimulationConfig {
    let env = env_config(quick);
    SimulationConfig {
        policy,
        network: s.network,
        rounds: env.days * 24,
        theta_bytes: paper::theta_bytes_per_round(s.budget_mb),
        battery: s.battery,
        ..SimulationConfig::default()
    }
}

/// Machine-readable result of one scenario run — the regression surface
/// diffed by the `scenario-smoke` CI step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// Whether quick mode was used.
    pub quick: bool,
    /// Users simulated.
    pub users: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// Notifications arrived.
    pub arrived: usize,
    /// Notifications delivered.
    pub delivered: usize,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Total delivered utility.
    pub total_utility: f64,
    /// Utility per delivered megabyte — the adaptive headline metric.
    pub utility_per_mb: f64,
    /// Fraction of arrived notifications never delivered (shed).
    pub shed_rate: f64,
    /// Mean queuing delay, seconds.
    pub mean_delay_secs: f64,
    /// Fraction of arrivals delivered at each ladder level (index 0 =
    /// never delivered).
    pub level_mix: [f64; MAX_LEVEL],
    /// Per-connectivity-cohort quality slices, in canonical cohort order
    /// (only cohorts that saw any deliveries or suppressions appear).
    pub cohorts: Vec<CohortReport>,
}

/// One connectivity cohort's slice of a scenario run, summed over
/// presentation levels — the simulator's counterpart of the daemon's
/// `richnote_utility_total` / `richnote_delivered_bytes_total` /
/// `richnote_suppressed_total` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortReport {
    /// Cohort label (`unknown` / `offline` / `cell` / `wifi`).
    pub connectivity: String,
    /// Deliveries into this cohort.
    pub delivered: u64,
    /// Bytes delivered into this cohort.
    pub bytes: u64,
    /// Combined utility delivered into this cohort.
    pub utility: f64,
    /// Utility per delivered megabyte within the cohort (0 when no bytes).
    pub utility_per_mb: f64,
    /// Notification-rounds suppressed while the cohort applied (queued
    /// but nothing deliverable).
    pub suppressed: u64,
}

impl ScenarioReport {
    /// Derives a report from aggregate metrics.
    pub fn from_aggregate(
        scenario: &str,
        policy: &PolicyKind,
        quick: bool,
        rounds: u64,
        agg: &AggregateMetrics,
    ) -> Self {
        let mb = agg.bytes_delivered as f64 / 1e6;
        Self {
            scenario: scenario.to_string(),
            policy: policy.name(),
            quick,
            users: agg.users,
            rounds,
            arrived: agg.arrived,
            delivered: agg.delivered,
            bytes_delivered: agg.bytes_delivered,
            total_utility: agg.total_utility,
            utility_per_mb: if mb > 0.0 { agg.total_utility / mb } else { 0.0 },
            shed_rate: if agg.arrived > 0 {
                agg.final_backlog as f64 / agg.arrived as f64
            } else {
                0.0
            },
            mean_delay_secs: agg.mean_delay_secs(),
            level_mix: agg.level_mix(),
            cohorts: cohort_reports(agg),
        }
    }
}

/// Collapses the aggregate's quality ledger to per-cohort rows.
fn cohort_reports(agg: &AggregateMetrics) -> Vec<CohortReport> {
    use richnote_core::quality::ConnectivityCohort;
    let suppressed: Vec<(ConnectivityCohort, u64)> = agg.quality.suppressed_cells().collect();
    ConnectivityCohort::ALL
        .into_iter()
        .filter_map(|cohort| {
            let mut r = CohortReport {
                connectivity: cohort.as_str().to_string(),
                delivered: 0,
                bytes: 0,
                utility: 0.0,
                utility_per_mb: 0.0,
                suppressed: suppressed.iter().find(|(c, _)| *c == cohort).map_or(0, |(_, n)| *n),
            };
            for cell in agg.quality.cells().filter(|c| c.connectivity == cohort) {
                r.delivered += cell.delivered;
                r.bytes += cell.bytes;
                r.utility += cell.utility;
            }
            if r.bytes > 0 {
                r.utility_per_mb = r.utility / (r.bytes as f64 / 1e6);
            }
            (r.delivered > 0 || r.suppressed > 0).then_some(r)
        })
        .collect()
}

/// Runs one named scenario under `policy` and returns its report, or
/// `None` for an unknown scenario name.
pub fn run_scenario(name: &str, policy: PolicyKind, quick: bool) -> Option<ScenarioReport> {
    let s = spec(name)?;
    let env_cfg = env_config(quick);
    let env = ExperimentEnv::build(env_cfg);
    let cfg = simulation_config(&s, policy, quick);
    let rounds = cfg.rounds;
    let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
    let (agg, _) = sim.run(&env.users);
    Some(ScenarioReport::from_aggregate(s.name, &policy, quick, rounds, &agg))
}

/// Runs the whole pack under `policy` in canonical order.
pub fn run_all(policy: PolicyKind, quick: bool) -> Vec<ScenarioReport> {
    SCENARIO_NAMES
        .iter()
        .map(|n| run_scenario(n, policy, quick).expect("pack names are valid"))
        .collect()
}

// --- Per-user connectivity synthesis for the scenario network kinds ---
//
// Each synthesizer produces a replayable per-round state trace from the
// user's seeded RNG, so runs are deterministic per (seed, user).

fn hour_of(round: u64, phase_hours: f64) -> f64 {
    ((round as f64 + phase_hours) % 24.0 + 24.0) % 24.0
}

/// Commute flaky-cell: overnight Off, flaky cellular in both commute
/// windows, moderately flaky cellular across the workday, WiFi evenings.
pub fn commute_flaky_trace<R: Rng>(
    rng: &mut R,
    rounds: u64,
    phase_hours: f64,
) -> ScheduleFromTrace {
    let states = (0..rounds)
        .map(|r| {
            let h = hour_of(r, phase_hours);
            if h < 6.0 {
                NetworkState::Off
            } else if h < 9.0 || (17.0..19.0).contains(&h) {
                // Commute: tunnels and dead zones — 40% of rounds drop.
                if rng.gen_bool(0.4) {
                    NetworkState::Off
                } else {
                    NetworkState::Cell
                }
            } else if h < 17.0 {
                // Mobile workday on cellular with occasional outages.
                if rng.gen_bool(0.15) {
                    NetworkState::Off
                } else {
                    NetworkState::Cell
                }
            } else {
                // Evening at home: WiFi, rare fallback to cellular.
                if rng.gen_bool(0.05) {
                    NetworkState::Cell
                } else {
                    NetworkState::Wifi
                }
            }
        })
        .collect();
    ScheduleFromTrace::new(states, NetworkState::Cell)
}

/// Evening-WiFi surge: overnight Off, sporadic daytime cellular, then a
/// stable WiFi window every evening.
pub fn evening_wifi_trace<R: Rng>(rng: &mut R, rounds: u64, phase_hours: f64) -> ScheduleFromTrace {
    let states = (0..rounds)
        .map(|r| {
            let h = hour_of(r, phase_hours);
            if !(7.0..23.0).contains(&h) {
                NetworkState::Off
            } else if h < 18.0 {
                if rng.gen_bool(0.7) {
                    NetworkState::Cell
                } else {
                    NetworkState::Off
                }
            } else {
                NetworkState::Wifi
            }
        })
        .collect();
    ScheduleFromTrace::new(states, NetworkState::Cell)
}

/// Mass-event congestion: always-on cellular except a nightly event
/// window where the cell is congested and most rounds draw Off.
pub fn mass_event_trace<R: Rng>(rng: &mut R, rounds: u64, phase_hours: f64) -> ScheduleFromTrace {
    let states = (0..rounds)
        .map(|r| {
            let h = hour_of(r, phase_hours);
            let p_off = if (18.0..22.0).contains(&h) { 0.7 } else { 0.05 };
            if rng.gen_bool(p_off) {
                NetworkState::Off
            } else {
                NetworkState::Cell
            }
        })
        .collect();
    ScheduleFromTrace::new(states, NetworkState::Cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::to_json;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_spec_resolves_and_unknown_does_not() {
        for name in SCENARIO_NAMES {
            let s = spec(name).expect("pack name must resolve");
            assert_eq!(s.name, name);
        }
        assert!(spec("rush-hour").is_none());
    }

    #[test]
    fn traces_cover_the_horizon_and_follow_the_rhythm() {
        let mut rng = SmallRng::seed_from_u64(9);
        let commute = commute_flaky_trace(&mut rng, 48, 0.0);
        assert_eq!(commute.len(), 48);
        let evening = evening_wifi_trace(&mut rng, 48, 0.0);
        // Hours 18..23 are always WiFi in the evening-wifi rhythm.
        for r in [18u64, 19, 20, 42, 43] {
            assert_eq!(evening.peek(r), NetworkState::Wifi, "round {r}");
        }
        for r in [0u64, 3, 24, 26] {
            assert_eq!(evening.peek(r), NetworkState::Off, "round {r}");
        }
        let event = mass_event_trace(&mut rng, 168, 0.0);
        let event_off = (0..168u64)
            .filter(|&r| (18.0..22.0).contains(&hour_of(r, 0.0)))
            .filter(|&r| event.peek(r) == NetworkState::Off)
            .count();
        assert!(event_off > 10, "event window should be mostly congested, {event_off} off");
    }

    #[test]
    fn same_seed_scenario_reports_are_byte_identical() {
        let a = run_scenario("commute-flaky", PolicyKind::adaptive_default(), true).unwrap();
        let b = run_scenario("commute-flaky", PolicyKind::adaptive_default(), true).unwrap();
        assert_eq!(to_json(&a), to_json(&b));
    }

    #[test]
    fn adaptive_beats_static_richnote_on_commute_utility_per_mb() {
        let adaptive = run_scenario("commute-flaky", PolicyKind::adaptive_default(), true).unwrap();
        let fixed = run_scenario("commute-flaky", PolicyKind::richnote_default(), true).unwrap();
        assert!(
            adaptive.utility_per_mb >= fixed.utility_per_mb,
            "adaptive {} must be at least static {}",
            adaptive.utility_per_mb,
            fixed.utility_per_mb
        );
    }

    #[test]
    fn whole_pack_runs_under_both_policies() {
        for policy in [PolicyKind::richnote_default(), PolicyKind::adaptive_default()] {
            let reports = run_all(policy, true);
            assert_eq!(reports.len(), SCENARIO_NAMES.len());
            for r in &reports {
                assert!(r.arrived > 0, "{}/{} produced no arrivals", r.scenario, r.policy);
                assert!(r.delivered > 0, "{}/{} delivered nothing", r.scenario, r.policy);
                assert!((0.0..=1.0).contains(&r.shed_rate), "{}", r.shed_rate);
                assert!(!r.cohorts.is_empty(), "{}/{} has no cohort rows", r.scenario, r.policy);
                let delivered: u64 = r.cohorts.iter().map(|c| c.delivered).sum();
                assert_eq!(delivered, r.delivered as u64, "cohorts must cover every delivery");
                let bytes: u64 = r.cohorts.iter().map(|c| c.bytes).sum();
                assert_eq!(bytes, r.bytes_delivered, "cohorts must cover every byte");
            }
        }
    }

    #[test]
    fn battery_critical_binds_energy() {
        let s = spec("battery-critical").unwrap();
        // Three-hour charge window and 15%/h drain: most of the day runs
        // below the 80% full-grant threshold.
        assert!(s.battery.drain_per_hour > BatteryTraceConfig::default().drain_per_hour);
    }
}
