//! Sec. V-D5: sensitivity of RichNote to the Lyapunov control knob `V`.
//!
//! The paper reports that "RichNote performs uniformly better in all these
//! settings"; this harness sweeps `V` over several orders of magnitude and
//! records utility, delivery ratio, queuing delay and final backlog so the
//! utility/queue-stability trade-off is visible.

use super::ExperimentEnv;
use crate::metrics::AggregateMetrics;
use crate::report::{f1, f3, Table};
use crate::simulator::{PolicyKind, PopulationSim, SimulationConfig};
use serde::{Deserialize, Serialize};

/// One V-sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VPoint {
    /// The control knob value.
    pub v: f64,
    /// Aggregate metrics.
    pub metrics: AggregateMetrics,
}

/// The V-sensitivity report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LyapunovReport {
    /// Budget used (MB/week).
    pub budget_mb: u64,
    /// Sweep cells in V order.
    pub points: Vec<VPoint>,
    /// Baseline (UTIL level 3) utility at the same budget, for reference.
    pub util_baseline_utility: f64,
}

impl LyapunovReport {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Sec. V-D5: Lyapunov V sensitivity at {} MB/week (UTIL baseline utility {:.1})",
                self.budget_mb, self.util_baseline_utility
            ),
            &["V", "utility", "delivery_ratio", "delay_h", "backlog"],
        );
        for p in &self.points {
            t.push_row(vec![
                format!("{}", p.v),
                f1(p.metrics.total_utility),
                f3(p.metrics.delivery_ratio()),
                f3(p.metrics.mean_delay_secs() / 3600.0),
                format!("{}", p.metrics.final_backlog),
            ]);
        }
        t
    }

    /// Whether every V setting beats the UTIL baseline on utility — the
    /// paper's "uniformly better" claim.
    pub fn uniformly_better(&self) -> bool {
        self.points.iter().all(|p| p.metrics.total_utility >= self.util_baseline_utility)
    }
}

/// Runs the V sweep at `budget_mb`.
pub fn run(
    env: &ExperimentEnv,
    vs: &[f64],
    budget_mb: u64,
    base: &SimulationConfig,
) -> LyapunovReport {
    let theta = richnote_core::paper::theta_bytes_per_round(budget_mb);
    let mut points = Vec::with_capacity(vs.len());
    for &v in vs {
        let cfg = SimulationConfig {
            policy: PolicyKind::richnote_with(v, base.kappa),
            theta_bytes: theta,
            ..base.clone()
        };
        let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
        let (agg, _) = sim.run(&env.users);
        points.push(VPoint { v, metrics: agg });
    }

    let util_cfg = SimulationConfig {
        policy: PolicyKind::Util { level: 3 },
        theta_bytes: theta,
        ..base.clone()
    };
    let sim = PopulationSim::new(env.trace.clone(), env.utility(), util_cfg);
    let (util_agg, _) = sim.run(&env.users);

    LyapunovReport { budget_mb, points, util_baseline_utility: util_agg.total_utility }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    #[test]
    fn richnote_is_uniformly_better_across_v() {
        let env = ExperimentEnv::build(EnvConfig::test_small());
        let base = SimulationConfig { rounds: 72, ..SimulationConfig::default() };
        let report = run(&env, &[10.0, 1_000.0, 100_000.0], 10, &base);
        assert!(report.uniformly_better(), "{}", report.table());
        assert_eq!(report.table().n_rows(), 3);
        // Every setting keeps the queue drained at this budget.
        for p in &report.points {
            assert!(
                p.metrics.delivery_ratio() > 0.9,
                "V={} ratio {}",
                p.v,
                p.metrics.delivery_ratio()
            );
        }
    }
}
