//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Greedy MCKP variant** — the paper's stop-at-first-overflow
//!    (Algorithm 1 line 8) vs the continue-packing improvement;
//! 2. **Presentation-utility function** — logarithmic Eq. 8 (used in the
//!    paper) vs polynomial Eq. 9;
//! 3. **Round length** — the paper's "tune time duration of each round
//!    proportional to the frequency of the feed" knob;
//! 4. **Energy control** — the Lyapunov virtual energy queue under a tight
//!    κ vs an unconstrained scheduler.

use super::ExperimentEnv;
use crate::metrics::AggregateMetrics;
use crate::report::{f1, f3, Table};
use crate::simulator::{PolicyKind, PopulationSim, SimulationConfig};
use richnote_core::mckp::GreedyOptions;
use richnote_core::paper;
use richnote_core::presentation::AudioPresentationSpec;
use richnote_core::scheduler::RichNoteConfig;
use richnote_core::utility::DurationUtility;
use serde::{Deserialize, Serialize};

/// A labeled simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Variant label.
    pub variant: String,
    /// Weekly budget (MB).
    pub budget_mb: u64,
    /// Aggregate metrics.
    pub metrics: AggregateMetrics,
}

/// A generic ablation report: variants × budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// What is being ablated.
    pub name: String,
    /// All cells.
    pub points: Vec<AblationPoint>,
}

impl AblationReport {
    /// Renders utility / delivery / delay per variant and budget.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Ablation: {}", self.name),
            &["variant", "budget_mb", "utility", "delivery", "delay_h", "energy_kj", "data_mb"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.variant.clone(),
                format!("{}", p.budget_mb),
                f1(p.metrics.total_utility),
                f3(p.metrics.delivery_ratio()),
                f3(p.metrics.mean_delay_secs() / 3600.0),
                f1(p.metrics.energy_joules / 1000.0),
                f1(p.metrics.bytes_delivered as f64 / 1e6),
            ]);
        }
        t
    }

    /// The metrics of a (variant, budget) cell.
    pub fn get(&self, variant: &str, budget_mb: u64) -> Option<&AggregateMetrics> {
        self.points
            .iter()
            .find(|p| p.variant == variant && p.budget_mb == budget_mb)
            .map(|p| &p.metrics)
    }
}

fn run_cell(env: &ExperimentEnv, cfg: SimulationConfig) -> AggregateMetrics {
    let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
    sim.run(&env.users).0
}

/// Ablation 1: stop-at-first-overflow vs continue-packing greedy.
pub fn greedy_variants(
    env: &ExperimentEnv,
    budgets_mb: &[u64],
    base: &SimulationConfig,
) -> AblationReport {
    let mut points = Vec::new();
    for (label, stop) in [("stop (paper)", true), ("continue", false)] {
        for &budget in budgets_mb {
            let cfg = SimulationConfig {
                policy: PolicyKind::RichNote(RichNoteConfig {
                    greedy: GreedyOptions {
                        stop_at_first_overflow: stop,
                        ..GreedyOptions::default()
                    },
                    ..RichNoteConfig::default()
                }),
                theta_bytes: paper::theta_bytes_per_round(budget),
                ..base.clone()
            };
            points.push(AblationPoint {
                variant: label.to_string(),
                budget_mb: budget,
                metrics: run_cell(env, cfg),
            });
        }
    }
    AblationReport { name: "MCKP greedy overflow handling".to_string(), points }
}

/// Ablation 2: logarithmic (Eq. 8) vs polynomial (Eq. 9) presentation
/// utility driving the ladder.
pub fn utility_function(
    env: &ExperimentEnv,
    budgets_mb: &[u64],
    base: &SimulationConfig,
) -> AblationReport {
    let mut points = Vec::new();
    for (label, f) in [
        ("logarithmic (Eq. 8)", DurationUtility::paper_logarithmic()),
        // The raw Eq. 9 decreases with duration, so it cannot drive a
        // monotone ladder; its rising counterpart (same exponent, same
        // 40-second ceiling as the log curve) stands in.
        ("polynomial (Eq. 9, rising)", DurationUtility::paper_rising_polynomial()),
    ] {
        let presentation =
            AudioPresentationSpec { duration_utility: f, ..AudioPresentationSpec::paper_default() };
        for &budget in budgets_mb {
            let cfg = SimulationConfig {
                policy: PolicyKind::richnote_default(),
                theta_bytes: paper::theta_bytes_per_round(budget),
                presentation: presentation.clone(),
                ..base.clone()
            };
            points.push(AblationPoint {
                variant: label.to_string(),
                budget_mb: budget,
                metrics: run_cell(env, cfg),
            });
        }
    }
    AblationReport { name: "presentation-utility function".to_string(), points }
}

/// Ablation 3: round length — shorter rounds approximate real-time mode,
/// longer rounds approximate batch mode (Sec. II).
pub fn round_length(
    env: &ExperimentEnv,
    budget_mb: u64,
    base: &SimulationConfig,
) -> AblationReport {
    let weekly_bytes = budget_mb * 1_000_000;
    let horizon_secs = base.rounds as f64 * base.round_secs;
    let mut points = Vec::new();
    for (label, round_secs) in [
        ("15 min", 900.0),
        ("1 hour (paper)", 3_600.0),
        ("6 hours", 21_600.0),
        ("24 hours", 86_400.0),
    ] {
        let rounds = (horizon_secs / round_secs).round() as u64;
        // Same weekly budget regardless of round length: θ = weekly × (round / week).
        let theta_bytes = (weekly_bytes as f64 * round_secs / (7.0 * 86_400.0)) as u64;
        let cfg = SimulationConfig {
            policy: PolicyKind::richnote_default(),
            rounds,
            round_secs,
            theta_bytes,
            ..base.clone()
        };
        points.push(AblationPoint {
            variant: label.to_string(),
            budget_mb,
            metrics: run_cell(env, cfg),
        });
    }
    AblationReport { name: "round length".to_string(), points }
}

/// Ablation 4: the Lyapunov energy controller under starved energy
/// replenishment.
///
/// With the paper's energy model and κ = 3 kJ/round, `e(t)` easily covers
/// the spend and the virtual queue never bites. Starving the *grant*
/// (small `e(t)` per round, e.g. a weak battery) drains `P(t)` toward 0,
/// the `(P − κ)·ρ(i, j)` term turns strongly negative, and the scheduler
/// must retreat to cheap presentations — exactly the "change in battery
/// status" adaptation of Sec. I.
pub fn energy_control(
    env: &ExperimentEnv,
    budget_mb: u64,
    grants_joules_per_round: &[f64],
    base: &SimulationConfig,
) -> AblationReport {
    let mut points = Vec::new();
    for &grant in grants_joules_per_round {
        let cfg = SimulationConfig {
            policy: PolicyKind::richnote_default(), // controller κ = 3 kJ
            kappa: grant,                           // e(t) scale
            theta_bytes: paper::theta_bytes_per_round(budget_mb),
            ..base.clone()
        };
        points.push(AblationPoint {
            variant: format!("RichNote e(t)<={grant}J"),
            budget_mb,
            metrics: run_cell(env, cfg),
        });
    }
    // Uncontrolled baseline at the same budget.
    let cfg = SimulationConfig {
        policy: PolicyKind::Util { level: 3 },
        theta_bytes: paper::theta_bytes_per_round(budget_mb),
        ..base.clone()
    };
    points.push(AblationPoint {
        variant: "UTIL(L3) uncontrolled".to_string(),
        budget_mb,
        metrics: run_cell(env, cfg),
    });
    AblationReport { name: "Lyapunov energy control (starved e(t))".to_string(), points }
}

/// Ablation 5: workload model — the independent per-user Poisson generator
/// vs the activity-driven generator (listening sessions fanned out through
/// the social graph, Sec. II). RichNote's advantages must not be an
/// artifact of smooth arrivals.
pub fn workload_model(seed: u64, budget_mb: u64, rounds: u64) -> AblationReport {
    use richnote_trace::activity::{ActivityConfig, ActivityTraceGenerator};
    use richnote_trace::generator::{TraceConfig, TraceGenerator};
    use std::sync::Arc;

    let mut points = Vec::new();
    let days = rounds / 24;

    let poisson = Arc::new(
        TraceGenerator::new(TraceConfig {
            seed,
            n_users: 150,
            days,
            mean_notifications_per_user_day: 40.0,
            ..TraceConfig::default()
        })
        .generate(),
    );
    let (activity, _) = ActivityTraceGenerator::new(ActivityConfig {
        seed,
        n_users: 150,
        days,
        ..ActivityConfig::default()
    })
    .generate();
    let activity = Arc::new(activity);

    for (label, trace) in [("poisson arrivals", poisson), ("activity-driven", activity)] {
        let users = trace.top_users(60);
        for policy in [PolicyKind::richnote_default(), PolicyKind::Util { level: 3 }] {
            let cfg = SimulationConfig {
                policy,
                rounds,
                theta_bytes: paper::theta_bytes_per_round(budget_mb),
                ..SimulationConfig::default()
            };
            let sim =
                PopulationSim::new(trace.clone(), crate::simulator::constant_utility(0.5), cfg);
            let (agg, _) = sim.run(&users);
            points.push(AblationPoint {
                variant: format!("{label} / {}", policy.name()),
                budget_mb,
                metrics: agg,
            });
        }
    }
    AblationReport { name: "workload model (Poisson vs activity-driven)".to_string(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    fn env() -> ExperimentEnv {
        ExperimentEnv::build(EnvConfig::test_small())
    }

    fn base() -> SimulationConfig {
        SimulationConfig { rounds: 72, ..SimulationConfig::default() }
    }

    #[test]
    fn continue_variant_never_loses_utility() {
        let env = env();
        let r = greedy_variants(&env, &[3, 20], &base());
        for &b in &[3u64, 20] {
            let stop = r.get("stop (paper)", b).unwrap().total_utility;
            let cont = r.get("continue", b).unwrap().total_utility;
            assert!(cont >= stop * 0.999, "continue {cont} must not lose to stop {stop} at {b} MB");
        }
        assert_eq!(r.table().n_rows(), 4);
    }

    #[test]
    fn round_length_trades_delay_for_batching() {
        let env = env();
        let r = round_length(&env, 10, &base());
        let quick =
            r.points.iter().find(|p| p.variant == "15 min").unwrap().metrics.mean_delay_secs();
        let slow =
            r.points.iter().find(|p| p.variant == "24 hours").unwrap().metrics.mean_delay_secs();
        assert!(quick < slow, "shorter rounds must deliver sooner: {quick} vs {slow}");
    }

    #[test]
    fn starved_energy_grants_reduce_energy_spend() {
        let env = env();
        let r = energy_control(&env, 20, &[3_000.0, 5.0], &base());
        let loose = r.get("RichNote e(t)<=3000J", 20).unwrap();
        let tight = r.get("RichNote e(t)<=5J", 20).unwrap();
        assert!(
            tight.energy_joules < loose.energy_joules,
            "starved grants must spend less energy: {} vs {}",
            tight.energy_joules,
            loose.energy_joules
        );
        // The retreat is in presentation depth, not delivery count.
        assert!(tight.delivery_ratio() > 0.9, "{}", tight.delivery_ratio());
    }

    #[test]
    fn richnote_keeps_full_delivery_under_bursty_arrivals() {
        let r = workload_model(3, 10, 48);
        for label in ["poisson arrivals / RichNote", "activity-driven / RichNote"] {
            let m = r.get(label, 10).unwrap();
            assert!(m.delivery_ratio() > 0.95, "{label}: {}", m.delivery_ratio());
        }
        // RichNote beats UTIL on utility under both workload models.
        for workload in ["poisson arrivals", "activity-driven"] {
            let rn = r.get(&format!("{workload} / RichNote"), 10).unwrap().total_utility;
            let util = r.get(&format!("{workload} / UTIL(L3)"), 10).unwrap().total_utility;
            assert!(rn > util * 0.8, "{workload}: RichNote {rn} vs UTIL {util}");
        }
    }

    #[test]
    fn utility_function_ablation_runs_both_forms() {
        let env = env();
        let r = utility_function(&env, &[10], &base());
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(
                p.metrics.delivery_ratio() > 0.9,
                "{}: {}",
                p.variant,
                p.metrics.delivery_ratio()
            );
            assert!(p.metrics.total_utility > 0.0);
        }
    }
}
