//! Sec. V-A: content-utility classifier quality under five-fold
//! cross-validation. Paper reference point: precision 0.700, accuracy
//! 0.689 on the Spotify traces.

use crate::report::{f3, Table};
use richnote_core::content::ContentFeatures;
use richnote_forest::analysis::{forest_roc, permutation_importance, FeatureImportance};
use richnote_forest::calibration::{forest_calibration, CalibrationReport};
use richnote_forest::cv::{cross_validate, CrossValidation};
use richnote_forest::dataset::Dataset;
use richnote_forest::forest::{RandomForest, RandomForestConfig};
use richnote_trace::generator::{classifier_rows, TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};

/// Result of the classifier experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierReport {
    /// Number of labeled rows (clicked + hovered).
    pub n_rows: usize,
    /// Fraction of positive (clicked) rows.
    pub positive_rate: f64,
    /// The cross-validation outcome.
    pub cv: CrossValidation,
    /// Held-out ROC AUC (trained on the first half, scored on the second).
    pub auc: f64,
    /// Held-out calibration diagnostics.
    pub calibration: CalibrationReport,
    /// Permutation feature importance on the held-out half.
    pub importance: FeatureImportance,
    /// Paper reference precision.
    pub paper_precision: f64,
    /// Paper reference accuracy.
    pub paper_accuracy: f64,
}

impl ClassifierReport {
    /// Renders the per-fold and summary tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut folds = Table::new(
            "Sec. V-A: five-fold cross-validation (per fold)",
            &["fold", "precision", "recall", "accuracy", "f1"],
        );
        for (i, f) in self.cv.folds.iter().enumerate() {
            folds.push_row(vec![
                format!("{}", i + 1),
                f3(f.precision),
                f3(f.recall),
                f3(f.accuracy),
                f3(f.f1),
            ]);
        }

        let mut summary = Table::new(
            "Sec. V-A: classifier summary (paper: precision 0.700, accuracy 0.689)",
            &["metric", "measured", "paper"],
        );
        summary.push_row(vec![
            "precision".into(),
            f3(self.cv.pooled.precision),
            f3(self.paper_precision),
        ]);
        summary.push_row(vec![
            "accuracy".into(),
            f3(self.cv.pooled.accuracy),
            f3(self.paper_accuracy),
        ]);
        summary.push_row(vec!["recall".into(), f3(self.cv.pooled.recall), "-".into()]);
        summary.push_row(vec!["auc (held-out)".into(), f3(self.auc), "-".into()]);
        summary.push_row(vec!["brier (held-out)".into(), f3(self.calibration.brier), "-".into()]);
        summary.push_row(vec!["ece (held-out)".into(), f3(self.calibration.ece), "-".into()]);
        summary.push_row(vec!["rows".into(), format!("{}", self.n_rows), "-".into()]);

        let mut importance = Table::new(
            "Permutation feature importance (accuracy drop, held-out half)",
            &["feature", "importance"],
        );
        let names = ContentFeatures::feature_names();
        for &idx in &self.importance.ranking() {
            importance.push_row(vec![
                names.get(idx).copied().unwrap_or("?").to_string(),
                f3(self.importance.drops[idx]),
            ]);
        }
        vec![folds, summary, importance]
    }
}

/// Runs the classifier experiment: generate a trace, extract labeled rows,
/// run five-fold CV with the default forest, then train on the first half
/// and score AUC/calibration/importance on the held-out second half.
pub fn run(trace_cfg: &TraceConfig, folds: usize) -> ClassifierReport {
    let trace = TraceGenerator::new(*trace_cfg).generate();
    let (rows, labels) = classifier_rows(&trace.items);
    let data = Dataset::new(rows, labels).expect("trace produces labeled rows");
    let cv = cross_validate(&data, &RandomForestConfig::default(), folds, trace_cfg.seed);

    // Held-out diagnostics: alternate rows into train/test halves.
    let train_idx: Vec<usize> = (0..data.len()).filter(|i| i % 2 == 0).collect();
    let test_idx: Vec<usize> = (0..data.len()).filter(|i| i % 2 == 1).collect();
    let train = data.subset(&train_idx);
    let test = data.subset(&test_idx);
    let forest = RandomForest::fit(&train, &RandomForestConfig::default(), trace_cfg.seed);
    let auc = forest_roc(&forest, &test).auc;
    let calibration = forest_calibration(&forest, &test, 10);
    let importance = permutation_importance(&forest, &test);

    ClassifierReport {
        n_rows: data.len(),
        positive_rate: data.positive_rate(),
        cv,
        auc,
        calibration,
        importance,
        paper_precision: richnote_core::paper::PAPER_RF_PRECISION,
        paper_accuracy: richnote_core::paper::PAPER_RF_ACCURACY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_lands_in_paper_band() {
        // The calibration target: precision and accuracy within ±0.08 of
        // the paper's numbers on a reasonably sized trace.
        let cfg = TraceConfig { n_users: 250, days: 7, ..TraceConfig::default() };
        let report = run(&cfg, 5);
        assert!(report.n_rows > 3_000, "rows {}", report.n_rows);
        let p = report.cv.pooled.precision;
        let a = report.cv.pooled.accuracy;
        assert!((p - 0.700).abs() < 0.08, "precision {p} not within band of 0.700");
        assert!((a - 0.689).abs() < 0.08, "accuracy {a} not within band of 0.689");
    }

    #[test]
    fn tables_render() {
        let report = run(&TraceConfig::small(5), 3);
        let tables = report.tables();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].n_rows(), 3);
        assert!(tables[1].to_string().contains("precision"));
        assert!(tables[2].to_string().contains("social_tie"));
    }

    #[test]
    fn held_out_diagnostics_are_sane() {
        let report = run(&TraceConfig::small(6), 3);
        // The classifier is informative: AUC above chance.
        assert!(report.auc > 0.55, "auc {}", report.auc);
        assert!(report.auc <= 1.0);
        // Probabilities are usable as utilities: rough calibration.
        assert!(report.calibration.ece < 0.25, "ece {}", report.calibration.ece);
        // The tie and popularity features dominate the temporal flags, as
        // the behaviour model prescribes.
        let names = ContentFeatures::feature_names();
        let top = names[report.importance.ranking()[0]];
        assert!(top == "social_tie" || top.contains("popularity"), "top feature {top}");
    }
}
