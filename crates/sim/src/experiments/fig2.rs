//! Fig. 2: presentation utility from user surveys.
//!
//! * Fig. 2(a): the 20-cell rate × duration grid study collapses to six
//!   useful presentations under Pareto pruning.
//! * Fig. 2(b): the duration-study CDF is fitted by the logarithmic (Eq. 8)
//!   and polynomial (Eq. 9) models; the logarithmic fit wins.

use crate::report::{f3, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use richnote_core::presentation::{pareto_frontier, CandidatePresentation};
use richnote_core::survey::{
    empirical_utility, survey_grid, synthesize_stop_survey, FitComparison, GridCell,
};
use richnote_core::utility::DurationUtility;
use serde::{Deserialize, Serialize};

/// Result of the Fig. 2(a) grid-study pruning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2aReport {
    /// All 20 grid cells.
    pub cells: Vec<GridCell>,
    /// Indices (into `cells`) of the useful presentations.
    pub useful: Vec<usize>,
}

impl Fig2aReport {
    /// Renders the grid with a "useful" marker per cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 2(a): rate x duration survey grid -> Pareto-useful presentations",
            &["rate_khz", "duration_s", "size_kb", "score", "useful"],
        );
        for (i, c) in self.cells.iter().enumerate() {
            t.push_row(vec![
                format!("{}", c.rate_khz),
                format!("{}", c.duration_secs),
                format!("{}", c.size / 1000),
                f3(c.score),
                if self.useful.contains(&i) { "*".into() } else { "".into() },
            ]);
        }
        t
    }
}

/// Runs the Fig. 2(a) pruning.
pub fn run_fig2a() -> Fig2aReport {
    let cells = survey_grid();
    let cands: Vec<CandidatePresentation> =
        cells.iter().enumerate().map(|(i, c)| c.to_candidate(i)).collect();
    let useful = pareto_frontier(&cands).iter().map(|c| c.label_id).collect();
    Fig2aReport { cells, useful }
}

/// Result of the Fig. 2(b) fit comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2bReport {
    /// Empirical `(duration, utility)` points from the synthetic survey.
    pub points: Vec<(f64, f64)>,
    /// Both fits and their SSE.
    pub fits: FitComparison,
    /// The paper's published logarithmic model for reference.
    pub paper_log: DurationUtility,
}

impl Fig2bReport {
    /// Renders the point-wise comparison and the fit summary.
    pub fn tables(&self) -> Vec<Table> {
        let mut pts = Table::new(
            "Fig. 2(b): empirical duration utility vs fitted models",
            &["duration_s", "empirical", "log_fit", "poly_fit", "paper_eq8"],
        );
        for &(d, u) in &self.points {
            pts.push_row(vec![
                format!("{d}"),
                f3(u),
                f3(self.fits.logarithmic.eval(d)),
                f3(self.fits.polynomial.eval(d)),
                f3(self.paper_log.eval(d)),
            ]);
        }
        let mut summary = Table::new(
            "Fig. 2(b): goodness of fit (paper: logarithmic fits better)",
            &["model", "sse", "winner"],
        );
        let log_wins = self.fits.log_fits_better();
        summary.push_row(vec![
            "logarithmic (Eq. 8)".into(),
            format!("{:.5}", self.fits.log_sse),
            if log_wins { "*".into() } else { "".into() },
        ]);
        summary.push_row(vec![
            "polynomial (Eq. 9)".into(),
            format!("{:.5}", self.fits.poly_sse),
            if log_wins { "".into() } else { "*".into() },
        ]);
        vec![pts, summary]
    }
}

/// Runs the Fig. 2(b) survey synthesis + regression comparison.
///
/// # Panics
///
/// Panics if the synthetic survey is degenerate (cannot happen for
/// `participants ≥ 2`).
pub fn run_fig2b(seed: u64, participants: usize) -> Fig2bReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let responses = synthesize_stop_survey(&mut rng, participants, 0.08);
    let grid: Vec<f64> = (1..=8).map(|i| i as f64 * 5.0).collect();
    let points = empirical_utility(&responses, &grid);
    let fits = FitComparison::fit(&points, 60.0).expect("survey fit succeeds");
    Fig2bReport { points, fits, paper_log: DurationUtility::paper_logarithmic() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_reports_six_useful() {
        let r = run_fig2a();
        assert_eq!(r.cells.len(), 20);
        assert_eq!(r.useful.len(), 6);
        assert_eq!(r.table().n_rows(), 20);
    }

    #[test]
    fn fig2b_log_wins_with_survey_scale_population() {
        // 80 participants, as in the paper's duration study.
        let r = run_fig2b(1, 80);
        assert!(r.fits.log_fits_better(), "log {} poly {}", r.fits.log_sse, r.fits.poly_sse);
        assert_eq!(r.tables().len(), 2);
    }

    #[test]
    fn fig2b_fitted_constants_near_paper() {
        let r = run_fig2b(2, 5_000);
        if let DurationUtility::Logarithmic { a, b } = r.fits.logarithmic {
            assert!((a - richnote_core::paper::LOG_UTILITY_A).abs() < 0.15, "a={a}");
            assert!((b - richnote_core::paper::LOG_UTILITY_B).abs() < 0.08, "b={b}");
        } else {
            panic!("log fit expected");
        }
    }
}
