//! Figures 3 and 4: budget sweeps of RichNote vs the FIFO/UTIL baselines.
//!
//! One sweep simulates every (policy, weekly-budget) pair and records the
//! aggregate metrics; Fig. 3 reads delivery ratio / data delivered /
//! recall / precision out of it, Fig. 4 reads utility / clicked utility /
//! energy / queuing delay.

use super::ExperimentEnv;
use crate::metrics::AggregateMetrics;
use crate::report::{f1, f3, mb, Table};
use crate::simulator::{PolicyKind, PopulationSim, SimulationConfig};
use serde::{Deserialize, Serialize};

/// One simulated (policy, budget) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Policy display name.
    pub policy: String,
    /// Weekly data budget in MB.
    pub budget_mb: u64,
    /// Aggregate metrics of the run.
    pub metrics: AggregateMetrics,
}

/// A full budget sweep across policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// All simulated cells, grouped by policy then budget.
    pub points: Vec<SweepPoint>,
    /// The budget axis.
    pub budgets_mb: Vec<u64>,
    /// Policy names in run order.
    pub policies: Vec<String>,
    /// The κ used (J/round), for the Fig. 4(c) cap line.
    pub kappa: f64,
    /// Number of rounds simulated.
    pub rounds: u64,
}

impl SweepReport {
    fn metric_table(&self, title: &str, value: impl Fn(&AggregateMetrics) -> String) -> Table {
        let mut header: Vec<String> = vec!["budget_mb".into()];
        header.extend(self.policies.iter().cloned());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(title, &header_refs);
        for &b in &self.budgets_mb {
            let mut row = vec![format!("{b}")];
            for p in &self.policies {
                let point = self
                    .points
                    .iter()
                    .find(|pt| pt.budget_mb == b && &pt.policy == p)
                    .expect("sweep covers the full grid");
                row.push(value(&point.metrics));
            }
            t.push_row(row);
        }
        t
    }

    /// Fig. 3(a): delivery ratio vs budget.
    pub fn fig3a(&self) -> Table {
        self.metric_table("Fig. 3(a): delivery ratio vs weekly budget", |m| f3(m.delivery_ratio()))
    }

    /// Fig. 3(b): total data delivered (MB) vs budget.
    pub fn fig3b(&self) -> Table {
        self.metric_table("Fig. 3(b): data delivered (MB) vs weekly budget", |m| {
            mb(m.bytes_delivered)
        })
    }

    /// Fig. 3(c): recall vs budget.
    pub fn fig3c(&self) -> Table {
        self.metric_table("Fig. 3(c): recall vs weekly budget", |m| f3(m.recall()))
    }

    /// Fig. 3(d): precision vs budget.
    pub fn fig3d(&self) -> Table {
        self.metric_table("Fig. 3(d): precision vs weekly budget", |m| f3(m.precision()))
    }

    /// Fig. 4(a): total utility of delivered notifications vs budget.
    pub fn fig4a(&self) -> Table {
        self.metric_table("Fig. 4(a): total utility vs weekly budget", |m| f1(m.total_utility))
    }

    /// Fig. 4(b): utility among ground-truth-clicked items vs budget.
    pub fn fig4b(&self) -> Table {
        self.metric_table("Fig. 4(b): utility among clicked items vs weekly budget", |m| {
            f1(m.clicked_utility)
        })
    }

    /// Fig. 4(c): download energy (kJ) vs budget.
    pub fn fig4c(&self) -> Table {
        let cap_kj = self.kappa * self.rounds as f64 / 1000.0;
        self.metric_table(
            &format!("Fig. 4(c): download energy (kJ, per-user cap {cap_kj:.0} kJ x users) vs weekly budget"),
            |m| f1(m.energy_joules / 1000.0),
        )
    }

    /// Fig. 4(d): mean queuing delay (hours) vs budget.
    pub fn fig4d(&self) -> Table {
        self.metric_table("Fig. 4(d): mean queuing delay (hours) vs weekly budget", |m| {
            f3(m.mean_delay_secs() / 3600.0)
        })
    }

    /// All eight tables in figure order.
    pub fn tables(&self) -> Vec<Table> {
        vec![
            self.fig3a(),
            self.fig3b(),
            self.fig3c(),
            self.fig3d(),
            self.fig4a(),
            self.fig4b(),
            self.fig4c(),
            self.fig4d(),
        ]
    }

    /// Convenience lookup of one cell.
    pub fn get(&self, policy: &str, budget_mb: u64) -> Option<&AggregateMetrics> {
        self.points
            .iter()
            .find(|p| p.policy == policy && p.budget_mb == budget_mb)
            .map(|p| &p.metrics)
    }
}

/// Runs the sweep: `policies` × `budgets_mb` over the environment's top
/// users, with `base` supplying all non-budget configuration.
pub fn run(
    env: &ExperimentEnv,
    policies: &[PolicyKind],
    budgets_mb: &[u64],
    base: &SimulationConfig,
) -> SweepReport {
    let mut points = Vec::with_capacity(policies.len() * budgets_mb.len());
    for &policy in policies {
        for &budget in budgets_mb {
            let cfg = SimulationConfig {
                policy,
                theta_bytes: richnote_core::paper::theta_bytes_per_round(budget),
                ..base.clone()
            };
            let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
            let (agg, _) = sim.run(&env.users);
            points.push(SweepPoint { policy: policy.name(), budget_mb: budget, metrics: agg });
        }
    }
    SweepReport {
        points,
        budgets_mb: budgets_mb.to_vec(),
        policies: policies.iter().map(PolicyKind::name).collect(),
        kappa: base.kappa,
        rounds: base.rounds,
    }
}

/// The paper's Fig. 3/4 policy set: RichNote plus FIFO and UTIL fixed at
/// metadata+5s (level 2) and metadata+10s (level 3) — "this matches the
/// current behavior of Spotify embedding an URL to 10s song preview".
pub fn paper_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::richnote_default(),
        PolicyKind::Fifo { level: 2 },
        PolicyKind::Fifo { level: 3 },
        PolicyKind::Util { level: 2 },
        PolicyKind::Util { level: 3 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    fn small_sweep() -> SweepReport {
        let env = ExperimentEnv::build(EnvConfig::test_small());
        let base = SimulationConfig { rounds: 72, ..SimulationConfig::default() };
        run(
            &env,
            &[
                PolicyKind::richnote_default(),
                PolicyKind::Fifo { level: 3 },
                PolicyKind::Util { level: 3 },
            ],
            &[1, 10, 100],
            &base,
        )
    }

    #[test]
    fn sweep_reproduces_fig3_fig4_shapes() {
        let s = small_sweep();

        // Fig 3(a): RichNote ≈ full delivery at every budget; baselines
        // climb with budget.
        let rn_1 = s.get("RichNote", 1).unwrap().delivery_ratio();
        let rn_100 = s.get("RichNote", 100).unwrap().delivery_ratio();
        let fifo_1 = s.get("FIFO(L3)", 1).unwrap().delivery_ratio();
        let fifo_100 = s.get("FIFO(L3)", 100).unwrap().delivery_ratio();
        assert!(rn_1 > 0.95, "RichNote at 1MB delivers {rn_1}");
        assert!(rn_100 > 0.95);
        assert!(fifo_1 < 0.5, "FIFO at 1MB delivers {fifo_1}");
        assert!(fifo_100 > fifo_1);

        // Fig 4(a): RichNote utility beats both baselines at mid budget.
        let rn_u = s.get("RichNote", 10).unwrap().total_utility;
        let fifo_u = s.get("FIFO(L3)", 10).unwrap().total_utility;
        let util_u = s.get("UTIL(L3)", 10).unwrap().total_utility;
        assert!(rn_u > fifo_u, "RichNote {rn_u} vs FIFO {fifo_u}");
        assert!(rn_u > util_u, "RichNote {rn_u} vs UTIL {util_u}");

        // Fig 4(d): RichNote has lower queuing delay at low budget.
        let rn_d = s.get("RichNote", 1).unwrap().mean_delay_secs();
        let fifo_d = s.get("FIFO(L3)", 1).unwrap().mean_delay_secs();
        assert!(rn_d < fifo_d, "delay RichNote {rn_d} vs FIFO {fifo_d}");

        // Fig 3(c): recall ordering follows delivery.
        let rn_r = s.get("RichNote", 1).unwrap().recall();
        let fifo_r = s.get("FIFO(L3)", 1).unwrap().recall();
        assert!(rn_r > fifo_r);
    }

    #[test]
    fn tables_cover_the_grid() {
        let s = small_sweep();
        let tables = s.tables();
        assert_eq!(tables.len(), 8);
        for t in &tables {
            assert_eq!(t.n_rows(), 3, "{t}");
        }
    }

    #[test]
    fn util_beats_fifo_on_utility() {
        // UTIL delivers high-utility items first, so under a constrained
        // budget its utility should be at least FIFO's.
        let s = small_sweep();
        let util_u = s.get("UTIL(L3)", 1).unwrap().total_utility;
        let fifo_u = s.get("FIFO(L3)", 1).unwrap().total_utility;
        assert!(util_u >= fifo_u * 0.95, "UTIL {util_u} vs FIFO {fifo_u}");
    }
}
