//! Experiment harnesses — one per table/figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`classifier`] | Sec. V-A classifier quality (precision 0.700, accuracy 0.689) |
//! | [`fig2`] | Fig. 2(a) Pareto presentations, Fig. 2(b) utility fits |
//! | [`sweep`] | Figs. 3(a–d) and 4(a–d): budget sweeps of RichNote vs FIFO vs UTIL |
//! | [`fig5`] | Figs. 5(a–d): adaptation, presentation mix, WiFi, user categories |
//! | [`lyapunov`] | Sec. V-D5: sensitivity to the control knob `V` |
//!
//! All harnesses share an [`ExperimentEnv`]: a generated evaluation trace, a
//! random forest trained on a *separate* training trace (no leakage), and
//! the top-N users by notification volume (the paper simulates the top 10k).

pub mod ablation;
pub mod classifier;
pub mod fig2;
pub mod fig5;
pub mod lyapunov;
pub mod network;
pub mod stability;
pub mod sweep;

use crate::simulator::{forest_utility, UtilityFn};
use richnote_core::ids::UserId;
use richnote_forest::dataset::Dataset;
use richnote_forest::forest::{RandomForest, RandomForestConfig};
use richnote_trace::generator::{classifier_rows, Trace, TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Scale and seeding of an experiment environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Base seed (training trace uses `seed + 1`).
    pub seed: u64,
    /// Users in the generated population.
    pub n_users: usize,
    /// Top-N users (by volume) actually simulated.
    pub top_users: usize,
    /// Mean notifications per user per day.
    pub mean_notifications_per_user_day: f64,
    /// Horizon in days.
    pub days: u64,
}

impl EnvConfig {
    /// The scale used by the `repro` harness: a scaled-down version of the
    /// paper's 10k-user week that runs in seconds.
    ///
    /// The paper simulates the *top* 10k users by delivered notifications —
    /// users "for whom the resource budget constraints are important" — so
    /// per-user volumes must be high enough that the weekly budget binds
    /// deep into the presentation ladder. At 40 notifications per user-day
    /// the top users' fixed-level demand is tens of MB per week, matching
    /// the paper's 1–100 MB budget axis.
    pub fn repro_default() -> Self {
        Self {
            seed: 2015,
            n_users: 400,
            top_users: 200,
            mean_notifications_per_user_day: 40.0,
            days: 7,
        }
    }

    /// A tiny scale for unit tests (same volume regime, fewer users/days).
    ///
    /// The per-user rate is set high enough that the 1–10 MB/week budgets
    /// used by the experiment tests stay *binding* for the top users —
    /// the paper's dominance results (RichNote over FIFO/UTIL) only hold
    /// when the data budget actually constrains selection; with slack
    /// budgets every policy delivers everything and fixed-level baselines
    /// can tie or edge ahead on utility.
    pub fn test_small() -> Self {
        Self {
            seed: 42,
            n_users: 80,
            top_users: 30,
            mean_notifications_per_user_day: 60.0,
            days: 3,
        }
    }

    fn trace_config(&self, seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            n_users: self.n_users,
            days: self.days,
            mean_notifications_per_user_day: self.mean_notifications_per_user_day,
            ..TraceConfig::default()
        }
    }
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self::repro_default()
    }
}

/// A ready-to-simulate environment: evaluation trace, trained classifier
/// and the top-N user list.
pub struct ExperimentEnv {
    /// The evaluation trace (replayed through the schedulers).
    pub trace: Arc<Trace>,
    /// Forest trained on a disjoint training trace.
    pub forest: Arc<RandomForest>,
    /// Users simulated (top-N by volume).
    pub users: Vec<UserId>,
    /// The configuration that built this environment.
    pub cfg: EnvConfig,
}

impl ExperimentEnv {
    /// Builds the environment: generates the training and evaluation
    /// traces, trains the forest, ranks users.
    ///
    /// # Panics
    ///
    /// Panics if the training trace yields no labeled rows (cannot happen
    /// at the provided scales).
    pub fn build(cfg: EnvConfig) -> Self {
        let train_trace = TraceGenerator::new(cfg.trace_config(cfg.seed + 1)).generate();
        let (rows, labels) = classifier_rows(&train_trace.items);
        let data = Dataset::new(rows, labels).expect("training trace must produce labeled rows");
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), cfg.seed);

        let trace = TraceGenerator::new(cfg.trace_config(cfg.seed)).generate();
        let users = trace.top_users(cfg.top_users);

        Self { trace: Arc::new(trace), forest: Arc::new(forest), users, cfg }
    }

    /// The content-utility function backed by the trained forest.
    pub fn utility(&self) -> UtilityFn {
        forest_utility(self.forest.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_ranks_users() {
        let env = ExperimentEnv::build(EnvConfig::test_small());
        assert_eq!(env.users.len(), 30);
        assert!(!env.trace.items.is_empty());
        // Forest produces probabilities on the evaluation trace.
        let u = env.utility();
        for item in env.trace.items.iter().take(20) {
            let p = u(item);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn forest_is_informative_on_eval_trace() {
        // The classifier must separate clicked from hovered items better
        // than chance on the *evaluation* trace (it was trained on a
        // different seed).
        let env = ExperimentEnv::build(EnvConfig::test_small());
        let u = env.utility();
        let mut clicked = Vec::new();
        let mut hovered = Vec::new();
        for item in env.trace.items.iter() {
            match item.interaction {
                richnote_core::content::Interaction::Clicked { .. } => clicked.push(u(item)),
                richnote_core::content::Interaction::Hovered => hovered.push(u(item)),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&clicked) > mean(&hovered) + 0.02,
            "clicked {} vs hovered {}",
            mean(&clicked),
            mean(&hovered)
        );
    }
}
