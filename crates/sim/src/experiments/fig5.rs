//! Figure 5: adaptation of RichNote.
//!
//! * Fig. 5(a): RichNote vs *every* fixed presentation level across budgets
//!   — no fixed level wins everywhere; crossovers appear as budget grows.
//! * Fig. 5(b): stacked presentation-level mix vs budget (cellular).
//! * Fig. 5(c): the same mix under the WiFi/Cell/Off Markov model — richer
//!   presentations when WiFi is available.
//! * Fig. 5(d): average per-user utility by user-volume category — heavy
//!   users benefit more.

use super::ExperimentEnv;
use crate::metrics::{UserMetrics, MAX_LEVEL};
use crate::report::{f1, f3, Table};
use crate::simulator::{NetworkKind, PolicyKind, PopulationSim, SimulationConfig};
use serde::{Deserialize, Serialize};

/// Fig. 5(a): total utility for RichNote and each fixed level, per budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5aReport {
    /// Budget axis (MB/week).
    pub budgets_mb: Vec<u64>,
    /// Series names: "RichNote", "L1".."L6".
    pub series: Vec<String>,
    /// `utility[series][budget]`.
    pub utility: Vec<Vec<f64>>,
}

impl Fig5aReport {
    /// Renders the utility matrix.
    pub fn table(&self) -> Table {
        let mut header: Vec<String> = vec!["budget_mb".into()];
        header.extend(self.series.iter().cloned());
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t =
            Table::new("Fig. 5(a): utility of RichNote vs fixed presentation levels", &refs);
        for (bi, &b) in self.budgets_mb.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for s in 0..self.series.len() {
                row.push(f1(self.utility[s][bi]));
            }
            t.push_row(row);
        }
        t
    }

    /// The best fixed level (series index ≥ 1) at a budget index.
    pub fn best_fixed_at(&self, budget_idx: usize) -> usize {
        (1..self.series.len())
            .max_by(|&a, &b| self.utility[a][budget_idx].total_cmp(&self.utility[b][budget_idx]))
            .expect("at least one fixed series")
    }
}

/// Runs Fig. 5(a).
pub fn run_fig5a(env: &ExperimentEnv, budgets_mb: &[u64], base: &SimulationConfig) -> Fig5aReport {
    let max_level = base.presentation.preview_secs.len() as u8 + 1;
    let mut series = vec!["RichNote".to_string()];
    let mut policies = vec![PolicyKind::richnote_default()];
    for level in 1..=max_level {
        series.push(format!("L{level}"));
        policies.push(PolicyKind::Util { level });
    }

    let mut utility = vec![vec![0.0; budgets_mb.len()]; series.len()];
    for (si, &policy) in policies.iter().enumerate() {
        for (bi, &budget) in budgets_mb.iter().enumerate() {
            let cfg = SimulationConfig {
                policy,
                theta_bytes: richnote_core::paper::theta_bytes_per_round(budget),
                ..base.clone()
            };
            let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
            let (agg, _) = sim.run(&env.users);
            utility[si][bi] = agg.total_utility;
        }
    }
    Fig5aReport { budgets_mb: budgets_mb.to_vec(), series, utility }
}

/// Fig. 5(b)/(c): presentation-level mix per budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelMixReport {
    /// Which figure this is ("Fig. 5(b)" or "Fig. 5(c)").
    pub figure: String,
    /// Budget axis (MB/week).
    pub budgets_mb: Vec<u64>,
    /// `mix[budget][level]` = fraction of arrived items delivered at level
    /// (index 0 = not delivered).
    pub mix: Vec<[f64; MAX_LEVEL]>,
}

impl LevelMixReport {
    /// Renders the stacked-bar data.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("{}: presentation mix by budget (fractions of arrived items)", self.figure),
            &["budget_mb", "undelivered", "metadata", "5s", "10s", "20s", "30s", "40s"],
        );
        for (bi, &b) in self.budgets_mb.iter().enumerate() {
            let m = &self.mix[bi];
            let mut row = vec![format!("{b}")];
            for &share in &m[..7] {
                row.push(f3(share));
            }
            t.push_row(row);
        }
        t
    }

    /// Fraction of items delivered with any media preview (level ≥ 2).
    pub fn preview_fraction(&self, budget_idx: usize) -> f64 {
        self.mix[budget_idx][2..].iter().sum()
    }
}

/// Runs the level-mix experiment under a given connectivity model.
pub fn run_level_mix(
    env: &ExperimentEnv,
    budgets_mb: &[u64],
    base: &SimulationConfig,
    network: NetworkKind,
    figure: &str,
) -> LevelMixReport {
    let mut mix = Vec::with_capacity(budgets_mb.len());
    for &budget in budgets_mb {
        let cfg = SimulationConfig {
            policy: PolicyKind::richnote_default(),
            network,
            theta_bytes: richnote_core::paper::theta_bytes_per_round(budget),
            ..base.clone()
        };
        let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
        let (agg, _) = sim.run(&env.users);
        mix.push(agg.level_mix());
    }
    LevelMixReport { figure: figure.to_string(), budgets_mb: budgets_mb.to_vec(), mix }
}

/// Fig. 5(d): per-user utility by user-volume category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5dReport {
    /// Category upper bounds (items per user), derived from the simulated
    /// population's volume quintiles; last is unbounded.
    pub bounds: Vec<usize>,
    /// Per-category: (label, user count, mean utility, stddev).
    pub categories: Vec<(String, usize, f64, f64)>,
}

impl Fig5dReport {
    /// Renders the category table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 5(d): per-user utility by notification-volume category",
            &["category_items", "users", "mean_utility", "stddev"],
        );
        for (label, n, mean, sd) in &self.categories {
            t.push_row(vec![label.clone(), format!("{n}"), f1(*mean), f1(*sd)]);
        }
        t
    }
}

/// Runs Fig. 5(d) at a given budget.
pub fn run_fig5d(env: &ExperimentEnv, budget_mb: u64, base: &SimulationConfig) -> Fig5dReport {
    let cfg = SimulationConfig {
        policy: PolicyKind::richnote_default(),
        theta_bytes: richnote_core::paper::theta_bytes_per_round(budget_mb),
        ..base.clone()
    };
    let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
    let (_, per_user) = sim.run(&env.users);

    // Volume-quintile bounds over the simulated population, so the
    // categories stay populated at any scale (the paper buckets users "with
    // a given number of content items").
    let mut volumes: Vec<usize> = per_user.iter().map(|m| m.arrived).collect();
    volumes.sort_unstable();
    let q = |f: f64| volumes[((volumes.len() - 1) as f64 * f) as usize];
    let mut bounds = vec![q(0.2), q(0.4), q(0.6), q(0.8)];
    bounds.dedup();
    let mut buckets: Vec<Vec<&UserMetrics>> = vec![Vec::new(); bounds.len() + 1];
    for m in &per_user {
        let idx = bounds.iter().position(|&b| m.arrived < b).unwrap_or(bounds.len());
        buckets[idx].push(m);
    }

    let mut categories = Vec::new();
    let mut lo = 0usize;
    for (i, bucket) in buckets.iter().enumerate() {
        let label =
            if i < bounds.len() { format!("{}-{}", lo, bounds[i] - 1) } else { format!("{lo}+") };
        if i < bounds.len() {
            lo = bounds[i];
        }
        let n = bucket.len();
        let utilities: Vec<f64> = bucket.iter().map(|m| m.total_utility).collect();
        let mean = if n == 0 { 0.0 } else { utilities.iter().sum::<f64>() / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            utilities.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / n as f64
        };
        categories.push((label, n, mean, var.sqrt()));
    }
    Fig5dReport { bounds, categories }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    fn env() -> ExperimentEnv {
        ExperimentEnv::build(EnvConfig::test_small())
    }

    fn base() -> SimulationConfig {
        SimulationConfig { rounds: 72, ..SimulationConfig::default() }
    }

    #[test]
    fn fig5a_no_fixed_level_dominates_richnote() {
        let env = env();
        let r = run_fig5a(&env, &[1, 20, 100], &base());
        // RichNote at least matches the best fixed level everywhere
        // (within a small tolerance for stochastic connectivity).
        for bi in 0..r.budgets_mb.len() {
            let best_fixed = r.best_fixed_at(bi);
            assert!(
                r.utility[0][bi] >= 0.9 * r.utility[best_fixed][bi],
                "budget {}: RichNote {} vs best fixed {} ({})",
                r.budgets_mb[bi],
                r.utility[0][bi],
                r.utility[best_fixed][bi],
                r.series[best_fixed],
            );
        }
        // Crossover: the best fixed level at 1 MB differs from 100 MB.
        assert_ne!(r.best_fixed_at(0), r.best_fixed_at(2), "fixed levels should cross");
        assert_eq!(r.table().n_rows(), 3);
    }

    #[test]
    fn fig5b_mix_gets_richer_with_budget() {
        let env = env();
        let r = run_level_mix(&env, &[1, 100], &base(), NetworkKind::CellAlways, "Fig. 5(b)");
        let poor = r.preview_fraction(0);
        let rich = r.preview_fraction(1);
        assert!(rich > poor, "previews at 100MB ({rich}) must exceed 1MB ({poor})");
        // At 1 MB/week almost everything is metadata-only.
        assert!(r.mix[0][1] > 0.5, "metadata share at 1MB: {}", r.mix[0][1]);
        assert_eq!(r.table().n_rows(), 2);
    }

    #[test]
    fn fig5c_wifi_enables_richer_presentations() {
        let env = env();
        let budgets = [20u64];
        let cell = run_level_mix(&env, &budgets, &base(), NetworkKind::CellAlways, "Fig. 5(b)");
        let wifi = run_level_mix(&env, &budgets, &base(), NetworkKind::Markov, "Fig. 5(c)");
        // The Markov model includes OFF rounds, so fewer items may deliver,
        // but among delivered items WiFi capacity should not *reduce* the
        // preview share by much; with equal budgets the shapes are close.
        // The decisive check: the experiment runs and produces a valid mix.
        for m in &wifi.mix {
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert_eq!(cell.budgets_mb, wifi.budgets_mb);
    }

    #[test]
    fn fig5d_heavy_users_gain_more() {
        let env = env();
        let r = run_fig5d(&env, 20, &base());
        let nonempty: Vec<&(String, usize, f64, f64)> =
            r.categories.iter().filter(|c| c.1 > 0).collect();
        assert!(nonempty.len() >= 2, "need at least two populated categories");
        // Mean utility grows with category volume.
        assert!(nonempty.last().unwrap().2 > nonempty.first().unwrap().2, "{:?}", r.categories);
    }
}
