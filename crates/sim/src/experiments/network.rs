//! Network-dynamics experiments beyond Fig. 5(c): how the policies cope
//! with sporadic connectivity ("users ... are connected to the broker
//! sporadically through a cellular connection", Sec. V-C), and how much
//! the *learned* content-utility model is worth compared to a constant and
//! to the ground-truth oracle.

use super::ExperimentEnv;
use crate::metrics::AggregateMetrics;
use crate::report::{f1, f3, Table};
use crate::simulator::{
    constant_utility, oracle_utility, NetworkKind, PolicyKind, PopulationSim, SimulationConfig,
    UtilityFn,
};
use serde::{Deserialize, Serialize};

/// One availability cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPoint {
    /// Policy display name.
    pub policy: String,
    /// Per-round probability the device is reachable.
    pub availability: f64,
    /// Aggregate metrics.
    pub metrics: AggregateMetrics,
}

/// Availability-sweep report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Budget used (MB/week).
    pub budget_mb: u64,
    /// All cells.
    pub points: Vec<AvailabilityPoint>,
}

impl AvailabilityReport {
    /// Renders the sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Network availability sweep at {} MB/week", self.budget_mb),
            &["policy", "availability", "delivery", "utility", "delay_h"],
        );
        for p in &self.points {
            t.push_row(vec![
                p.policy.clone(),
                f3(p.availability),
                f3(p.metrics.delivery_ratio()),
                f1(p.metrics.total_utility),
                f3(p.metrics.mean_delay_secs() / 3600.0),
            ]);
        }
        t
    }

    /// Lookup of one cell.
    pub fn get(&self, policy: &str, availability: f64) -> Option<&AggregateMetrics> {
        self.points
            .iter()
            .find(|p| p.policy == policy && (p.availability - availability).abs() < 1e-9)
            .map(|p| &p.metrics)
    }
}

/// Sweeps per-round availability for RichNote and UTIL.
pub fn availability_sweep(
    env: &ExperimentEnv,
    availabilities: &[f64],
    budget_mb: u64,
    base: &SimulationConfig,
) -> AvailabilityReport {
    let mut points = Vec::new();
    for policy in [PolicyKind::richnote_default(), PolicyKind::Util { level: 3 }] {
        for &a in availabilities {
            let cfg = SimulationConfig {
                policy,
                network: NetworkKind::CellSporadic(a),
                theta_bytes: richnote_core::paper::theta_bytes_per_round(budget_mb),
                ..base.clone()
            };
            let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
            let (agg, _) = sim.run(&env.users);
            points.push(AvailabilityPoint { policy: policy.name(), availability: a, metrics: agg });
        }
    }
    AvailabilityReport { budget_mb, points }
}

/// One connectivity-model cell of the model comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityPoint {
    /// Model label.
    pub model: String,
    /// Aggregate metrics.
    pub metrics: AggregateMetrics,
}

/// Comparison of connectivity models at a fixed budget: always-on cellular
/// (Figs. 3–5(b)), the Markov chain (Fig. 5(c)) and the diurnal rhythm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Budget used (MB/week).
    pub budget_mb: u64,
    /// Cells in model order.
    pub points: Vec<ConnectivityPoint>,
}

impl ConnectivityReport {
    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Connectivity models at {} MB/week (RichNote)", self.budget_mb),
            &["model", "delivery", "preview_frac", "delay_h", "energy_kj"],
        );
        for p in &self.points {
            let mix = p.metrics.level_mix();
            let preview: f64 = mix[2..].iter().sum();
            t.push_row(vec![
                p.model.clone(),
                f3(p.metrics.delivery_ratio()),
                f3(preview),
                f3(p.metrics.mean_delay_secs() / 3600.0),
                f1(p.metrics.energy_joules / 1000.0),
            ]);
        }
        t
    }
}

/// Runs RichNote under the three connectivity models.
pub fn connectivity_models(
    env: &ExperimentEnv,
    budget_mb: u64,
    base: &SimulationConfig,
) -> ConnectivityReport {
    let models = [
        ("cell-always", NetworkKind::CellAlways),
        ("markov (Fig. 5c)", NetworkKind::Markov),
        ("diurnal", NetworkKind::Diurnal),
    ];
    let mut points = Vec::new();
    for (label, network) in models {
        let cfg = SimulationConfig {
            policy: PolicyKind::richnote_default(),
            network,
            theta_bytes: richnote_core::paper::theta_bytes_per_round(budget_mb),
            ..base.clone()
        };
        let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
        let (agg, _) = sim.run(&env.users);
        points.push(ConnectivityPoint { model: label.to_string(), metrics: agg });
    }
    ConnectivityReport { budget_mb, points }
}

/// One utility-model cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelValuePoint {
    /// Model label ("constant", "forest", "oracle").
    pub model: String,
    /// Aggregate metrics under UTIL selection at a tight budget.
    pub metrics: AggregateMetrics,
}

/// Report on the value of the learned content-utility model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelValueReport {
    /// Budget used (MB/week).
    pub budget_mb: u64,
    /// Cells in (constant, forest, oracle) order.
    pub points: Vec<ModelValuePoint>,
}

impl ModelValueReport {
    /// Renders the comparison.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Value of the content-utility model (UTIL selection, {} MB/week)",
                self.budget_mb
            ),
            &["model", "clicked_share", "precision", "recall", "utility"],
        );
        for p in &self.points {
            let share = if p.metrics.total_utility == 0.0 {
                0.0
            } else {
                p.metrics.clicked_utility / p.metrics.total_utility
            };
            t.push_row(vec![
                p.model.clone(),
                f3(share),
                f3(p.metrics.precision()),
                f3(p.metrics.recall()),
                f1(p.metrics.total_utility),
            ]);
        }
        t
    }

    /// Clicked-utility share of a model.
    pub fn clicked_share(&self, model: &str) -> f64 {
        self.points
            .iter()
            .find(|p| p.model == model)
            .map(|p| {
                if p.metrics.total_utility == 0.0 {
                    0.0
                } else {
                    p.metrics.clicked_utility / p.metrics.total_utility
                }
            })
            .unwrap_or(0.0)
    }
}

/// Compares constant, learned and oracle content utility under a tight
/// budget where *selection* matters most.
pub fn model_value(
    env: &ExperimentEnv,
    budget_mb: u64,
    base: &SimulationConfig,
) -> ModelValueReport {
    let models: Vec<(&str, UtilityFn)> = vec![
        ("constant", constant_utility(0.5)),
        ("forest", env.utility()),
        ("oracle", oracle_utility()),
    ];
    let mut points = Vec::new();
    for (label, utility) in models {
        let cfg = SimulationConfig {
            policy: PolicyKind::Util { level: 2 },
            theta_bytes: richnote_core::paper::theta_bytes_per_round(budget_mb),
            ..base.clone()
        };
        let sim = PopulationSim::new(env.trace.clone(), utility, cfg);
        let (agg, _) = sim.run(&env.users);
        points.push(ModelValuePoint { model: label.to_string(), metrics: agg });
    }
    ModelValueReport { budget_mb, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    fn env() -> ExperimentEnv {
        ExperimentEnv::build(EnvConfig::test_small())
    }

    fn base() -> SimulationConfig {
        SimulationConfig { rounds: 72, ..SimulationConfig::default() }
    }

    #[test]
    fn richnote_degrades_gracefully_with_availability() {
        let env = env();
        let r = availability_sweep(&env, &[0.25, 1.0], 10, &base());
        let low = r.get("RichNote", 0.25).unwrap();
        let high = r.get("RichNote", 1.0).unwrap();
        // Offline rounds bank budget; delivery stays near-complete, only
        // the delay grows.
        assert!(low.delivery_ratio() > 0.9, "{}", low.delivery_ratio());
        assert!(low.mean_delay_secs() > high.mean_delay_secs());
        // UTIL's delivery also survives (its budget rolls over), but its
        // delay under sporadic connectivity is far above RichNote's.
        let util_low = r.get("UTIL(L3)", 0.25).unwrap();
        assert!(util_low.mean_delay_secs() > low.mean_delay_secs());
        assert_eq!(r.table().n_rows(), 4);
    }

    #[test]
    fn diurnal_model_delays_but_still_delivers() {
        let env = env();
        let r = connectivity_models(&env, 10, &base());
        let cell = &r.points[0].metrics;
        let diurnal = &r.points[2].metrics;
        assert!(diurnal.delivery_ratio() > 0.9, "{}", diurnal.delivery_ratio());
        assert!(
            diurnal.mean_delay_secs() > cell.mean_delay_secs(),
            "overnight gaps must add delay: {} vs {}",
            diurnal.mean_delay_secs(),
            cell.mean_delay_secs()
        );
        assert_eq!(r.table().n_rows(), 3);
    }

    #[test]
    fn learned_model_sits_between_constant_and_oracle() {
        let env = env();
        let r = model_value(&env, 3, &base());
        let constant = r.clicked_share("constant");
        let forest = r.clicked_share("forest");
        let oracle = r.clicked_share("oracle");
        assert!(
            constant < forest && forest < oracle,
            "clicked-utility shares must order constant {constant} < forest {forest} < oracle {oracle}"
        );
        assert!((oracle - 1.0).abs() < 1e-9);
    }
}
