//! Queue-stability experiment: the Lyapunov framework's core guarantee.
//!
//! Sec. III-C: "the queue of the scheduler should remain bounded or stable
//! over time", and Sec. V-D5 credits the framework with "continued and
//! stable performance despite changes in connectivity and energy budget".
//! This experiment tracks the *per-round backlog* of each policy under a
//! constrained budget: RichNote's backlog stays bounded (items drain every
//! round at adapted levels), while the fixed-level baselines accumulate
//! unbounded queues whenever fixed-level demand exceeds the budget.

use super::ExperimentEnv;
use crate::report::{f1, Table};
use crate::simulator::{PolicyKind, PopulationSim, SimulationConfig};
use serde::{Deserialize, Serialize};

/// Backlog trajectory of one policy, averaged over users.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BacklogSeries {
    /// Policy display name.
    pub policy: String,
    /// Mean items queued after each round.
    pub mean_backlog: Vec<f64>,
}

impl BacklogSeries {
    /// Least-squares slope of the backlog over the second half of the
    /// horizon (items per round). Stable queues have slope ≈ arrival −
    /// service ≈ 0; unstable ones grow linearly.
    pub fn late_slope(&self) -> f64 {
        let n = self.mean_backlog.len();
        if n < 4 {
            return 0.0;
        }
        let tail = &self.mean_backlog[n / 2..];
        let m = tail.len() as f64;
        let sx = (0..tail.len()).map(|i| i as f64).sum::<f64>();
        let sy: f64 = tail.iter().sum();
        let sxx = (0..tail.len()).map(|i| (i * i) as f64).sum::<f64>();
        let sxy = tail.iter().enumerate().map(|(i, &y)| i as f64 * y).sum::<f64>();
        let denom = m * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            0.0
        } else {
            (m * sxy - sx * sy) / denom
        }
    }
}

/// The queue-stability report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Budget used (MB/week).
    pub budget_mb: u64,
    /// One series per policy.
    pub series: Vec<BacklogSeries>,
}

impl StabilityReport {
    /// Renders sampled backlog values plus the late-horizon growth slope.
    pub fn table(&self) -> Table {
        let rounds = self.series.first().map(|s| s.mean_backlog.len()).unwrap_or(0);
        let samples: Vec<usize> = (0..5).map(|i| (rounds.saturating_sub(1)) * i / 4).collect();
        let mut header: Vec<String> = vec!["policy".into()];
        header.extend(samples.iter().map(|r| format!("r{r}")));
        header.push("slope/round".into());
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("Queue stability at {} MB/week: mean backlog per round", self.budget_mb),
            &refs,
        );
        for s in &self.series {
            let mut row = vec![s.policy.clone()];
            for &r in &samples {
                row.push(f1(s.mean_backlog.get(r).copied().unwrap_or(0.0)));
            }
            row.push(format!("{:+.3}", s.late_slope()));
            t.push_row(row);
        }
        t
    }

    /// Series lookup by policy name.
    pub fn get(&self, policy: &str) -> Option<&BacklogSeries> {
        self.series.iter().find(|s| s.policy == policy)
    }
}

/// Runs the backlog-trajectory comparison at `budget_mb`.
pub fn run(env: &ExperimentEnv, budget_mb: u64, base: &SimulationConfig) -> StabilityReport {
    let policies = [
        PolicyKind::richnote_default(),
        PolicyKind::Fifo { level: 3 },
        PolicyKind::Util { level: 3 },
    ];
    let mut series = Vec::new();
    for policy in policies {
        let cfg = SimulationConfig {
            policy,
            record_backlog: true,
            theta_bytes: richnote_core::paper::theta_bytes_per_round(budget_mb),
            ..base.clone()
        };
        let rounds = cfg.rounds as usize;
        let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
        let (_, per_user) = sim.run(&env.users);
        let mut mean_backlog = vec![0.0f64; rounds];
        for m in &per_user {
            for (r, &b) in m.backlog_series.iter().enumerate() {
                mean_backlog[r] += b as f64;
            }
        }
        for b in &mut mean_backlog {
            *b /= per_user.len().max(1) as f64;
        }
        series.push(BacklogSeries { policy: policy.name(), mean_backlog });
    }
    StabilityReport { budget_mb, series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::EnvConfig;

    #[test]
    fn richnote_queue_is_stable_while_baselines_grow() {
        let env = ExperimentEnv::build(EnvConfig::test_small());
        let base = SimulationConfig { rounds: 72, ..SimulationConfig::default() };
        // A budget far below fixed-level demand.
        let r = run(&env, 3, &base);

        let richnote = r.get("RichNote").unwrap();
        let fifo = r.get("FIFO(L3)").unwrap();

        // RichNote's backlog stays around the per-round arrival count.
        let max_rn = richnote.mean_backlog.iter().cloned().fold(0.0, f64::max);
        assert!(max_rn < 25.0, "RichNote backlog peaked at {max_rn}");
        assert!(richnote.late_slope().abs() < 0.1, "slope {}", richnote.late_slope());

        // FIFO at a fixed level accumulates roughly linearly.
        let last_fifo = *fifo.mean_backlog.last().unwrap();
        assert!(last_fifo > 10.0 * max_rn, "FIFO backlog {last_fifo} vs RichNote {max_rn}");
        assert!(fifo.late_slope() > 0.5, "FIFO slope {}", fifo.late_slope());
    }

    #[test]
    fn slope_is_zero_for_flat_series() {
        let s = BacklogSeries { policy: "x".into(), mean_backlog: vec![5.0; 40] };
        assert!(s.late_slope().abs() < 1e-12);
        let growing = BacklogSeries {
            policy: "y".into(),
            mean_backlog: (0..40).map(|i| i as f64 * 2.0).collect(),
        };
        assert!((growing.late_slope() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_series_slope_is_zero() {
        let s = BacklogSeries { policy: "x".into(), mean_backlog: vec![1.0, 2.0] };
        assert_eq!(s.late_slope(), 0.0);
    }
}
