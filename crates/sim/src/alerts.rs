//! Virtual-time alert evaluation over a finished simulation run.
//!
//! The daemon evaluates its [`richnote_obs::AlertEngine`] once per tick
//! batch at `rounds × round_secs`; this module gives the simulator the
//! *same* evaluation at the *same* virtual instants, so an alert rule can
//! be rehearsed against a synthetic population before it watches
//! production. The per-round counter feed is reconstructed from the run:
//!
//! * `richnote_pubs_total{shard="sim"}` — cumulative arrivals across the
//!   simulated cohort, from each item's arrival round.
//! * `richnote_queue_dropped_total{shard="sim"}` — cumulative aggregate
//!   backlog *growth* (`Σ max(0, B(r) − B(r−1))`). The simulator's
//!   per-user queues are unbounded, so nothing is literally dropped; a
//!   round where the backlog grows is exactly a round where the daemon's
//!   bounded queues would have shed, which makes growth the honest
//!   virtual-time proxy for the default `shed_rate` rule.
//! * `richnote_backlog{shard="sim"}` — the aggregate backlog gauge.
//!
//! Everything is derived from deterministic run output, so the same
//! trace + seed + rules yield a byte-identical timeline
//! ([`timeline_json`]) — pinned by tests here and relied on by the
//! alert-rehearsal workflow.
//!
//! Requires [`crate::SimulationConfig::record_backlog`]; without the
//! per-round backlog series the dropped proxy reads zero and only
//! rules over `richnote_pubs_total` can ever fire.

use crate::metrics::UserMetrics;
use crate::simulator::SimulationConfig;
use richnote_obs::{AlertEngine, AlertEvent, AlertRule, MetricsHistory, Registry};
use richnote_trace::generator::Trace;

/// Replays `rules` over a finished run in virtual time and returns the
/// full alert timeline (every state transition, in evaluation order).
///
/// `per_user` must come from a run with
/// [`record_backlog`](crate::SimulationConfig::record_backlog) enabled;
/// evaluation happens at the end of every round, at the same
/// `round × round_secs` instants the daemon uses.
pub fn alert_timeline(
    trace: &Trace,
    per_user: &[UserMetrics],
    cfg: &SimulationConfig,
    rules: Vec<AlertRule>,
) -> Vec<AlertEvent> {
    let rounds = cfg.rounds as usize;
    let mut arrivals = vec![0u64; rounds];
    for m in per_user {
        for item in trace.items_for(m.user) {
            let r = item.arrival_round(cfg.round_secs) as usize;
            if let Some(slot) = arrivals.get_mut(r) {
                *slot += 1;
            }
        }
    }
    let mut backlog = vec![0u64; rounds];
    for m in per_user {
        for (r, &b) in m.backlog_series.iter().enumerate().take(rounds) {
            backlog[r] += b as u64;
        }
    }

    let mut engine = AlertEngine::new(rules);
    let mut history = MetricsHistory::new(rounds.max(1));
    let mut events = Vec::new();
    let mut pubs = 0u64;
    let mut dropped = 0u64;
    let mut prev_backlog = 0u64;
    for r in 0..rounds {
        pubs += arrivals[r];
        dropped += backlog[r].saturating_sub(prev_backlog);
        prev_backlog = backlog[r];

        let mut reg = Registry::new();
        let labels = [("shard", "sim")];
        let p = reg.counter("richnote_pubs_total", "Publications ingested", &labels);
        reg.set_counter(p, pubs);
        let d = reg.counter(
            "richnote_queue_dropped_total",
            "Backlog growth (virtual-time shed proxy)",
            &labels,
        );
        reg.set_counter(d, dropped);
        let b = reg.gauge("richnote_backlog", "Notifications queued, pending selection", &labels);
        reg.set_gauge(b, backlog[r] as f64);

        let now_secs = (r as f64 + 1.0) * cfg.round_secs;
        history.record(now_secs, reg.snapshot());
        events.extend(engine.evaluate(now_secs, &history, None));
    }
    events
}

/// The timeline as one canonical JSON line — the byte-identical artifact
/// two same-seed runs are compared on.
pub fn timeline_json(events: &[AlertEvent]) -> String {
    serde_json::to_string(&events.to_vec()).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{constant_utility, NetworkKind, PopulationSim};
    use richnote_obs::{default_rules, AlertState};
    use richnote_trace::generator::{TraceConfig, TraceGenerator};
    use std::sync::Arc;

    fn mass_event_run() -> (Arc<Trace>, Vec<UserMetrics>, SimulationConfig) {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(11)).generate());
        let users = trace.top_users(8);
        let cfg = SimulationConfig {
            network: NetworkKind::MassEvent,
            rounds: 48,
            record_backlog: true,
            ..SimulationConfig::default()
        };
        let sim = PopulationSim::new(trace.clone(), constant_utility(0.7), cfg.clone());
        let (_, per_user) = sim.run(&users);
        (trace, per_user, cfg)
    }

    #[test]
    fn mass_event_fires_the_shed_alert_in_virtual_time() {
        let (trace, per_user, cfg) = mass_event_run();
        let events = alert_timeline(&trace, &per_user, &cfg, default_rules());
        // The congested evening window backs queues up, so the default
        // shed-rate rule must fire — and at a round boundary, because
        // the simulator only evaluates at `round × round_secs`.
        let fired: Vec<&AlertEvent> =
            events.iter().filter(|e| e.rule == "shed_rate" && e.to == AlertState::Firing).collect();
        assert!(!fired.is_empty(), "no shed_rate firing in {events:?}");
        for e in &events {
            let rounds = e.at_secs / cfg.round_secs;
            assert!(
                (rounds - rounds.round()).abs() < 1e-9,
                "transition at {} is not a round boundary",
                e.at_secs
            );
        }
    }

    #[test]
    fn same_seed_runs_yield_byte_identical_timelines() {
        let (trace_a, users_a, cfg_a) = mass_event_run();
        let (trace_b, users_b, cfg_b) = mass_event_run();
        let a = timeline_json(&alert_timeline(&trace_a, &users_a, &cfg_a, default_rules()));
        let b = timeline_json(&alert_timeline(&trace_b, &users_b, &cfg_b, default_rules()));
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn without_backlog_recording_the_shed_proxy_stays_quiet() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(11)).generate());
        let users = trace.top_users(4);
        let cfg = SimulationConfig {
            network: NetworkKind::MassEvent,
            rounds: 24,
            record_backlog: false,
            ..SimulationConfig::default()
        };
        let sim = PopulationSim::new(trace.clone(), constant_utility(0.7), cfg.clone());
        let (_, per_user) = sim.run(&users);
        let events = alert_timeline(&trace, &per_user, &cfg, default_rules());
        assert!(
            events.iter().all(|e| e.rule != "shed_rate" || e.to != AlertState::Firing),
            "shed proxy fired without a backlog feed: {events:?}"
        );
    }
}
