//! Adapter from the `richnote-energy` models to the core scheduler's
//! [`TransferCost`] trait.

use richnote_core::scheduler::TransferCost;
use richnote_energy::model::NetworkEnergyModel;

/// Wraps a [`NetworkEnergyModel`] as a [`TransferCost`] — the per-item
/// energy estimate `ρ(i, j)` the scheduler consults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCost(pub NetworkEnergyModel);

impl EnergyCost {
    /// Cellular cost model.
    pub fn cellular() -> Self {
        Self(NetworkEnergyModel::cellular())
    }

    /// WiFi cost model.
    pub fn wifi() -> Self {
        Self(NetworkEnergyModel::wifi())
    }
}

impl TransferCost for EnergyCost {
    fn energy(&self, bytes: u64) -> f64 {
        self.0.transfer_energy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_matches_model() {
        let model = NetworkEnergyModel::cellular();
        let cost = EnergyCost(model);
        assert_eq!(cost.energy(100_000), model.transfer_energy(100_000));
    }

    #[test]
    fn wifi_cheaper_than_cell_for_big_payloads() {
        assert!(EnergyCost::wifi().energy(1_000_000) < EnergyCost::cellular().energy(1_000_000));
    }
}
