//! Bridge from the simulator's paper-metric accumulators to the shared
//! `richnote-obs` vocabulary.
//!
//! The paper-figure structs in [`crate::metrics`] stay — delivery ratio,
//! precision/recall and the level mix are evaluation quantities a
//! counters-and-gauges registry cannot express. What this module removes
//! is the *second vocabulary*: every operational quantity the simulator
//! shares with the daemon (publications, deliveries, bytes, rounds,
//! backlog, queuing-delay distribution) is exported under the exact
//! metric families the daemon serves on `/metrics`, labeled
//! `shard="sim"`, so dashboards and scrape-side tooling work unchanged
//! against either producer. Everything exported is virtual-time
//! deterministic: same trace + same seed → byte-identical exposition.

use crate::metrics::AggregateMetrics;
use richnote_core::paper;
use richnote_core::quality::{
    DELIVERED_BYTES_FAMILY, DELIVERED_BYTES_HELP, SUPPRESSED_FAMILY, SUPPRESSED_HELP,
    UTILITY_FAMILY, UTILITY_HELP,
};
use richnote_obs::{
    encode_text, split_above, Log2Histogram, Registry, RegistrySnapshot, SloEngine, SloReport,
    SloSpec,
};

/// Exports one finished run into the shared registry vocabulary.
///
/// `rounds` is the simulated horizon ([`crate::SimulationConfig::rounds`]);
/// it is not recoverable from the aggregate itself.
pub fn export_registry(agg: &AggregateMetrics, rounds: u64) -> RegistrySnapshot {
    let mut r = Registry::new();
    let labels = [("shard", "sim")];
    let pubs = r.counter("richnote_pubs_total", "Publications ingested", &labels);
    let selected = r.counter("richnote_selected_total", "Notifications delivered", &labels);
    let rounds_h = r.counter("richnote_rounds_total", "Selection rounds run", &labels);
    let bytes = r.counter("richnote_bytes_spent_total", "Bytes delivered to devices", &labels);
    let users = r.gauge("richnote_users", "Users with scheduler state", &labels);
    let backlog = r.gauge("richnote_backlog", "Notifications queued, pending selection", &labels);
    let delay = r.histogram(
        "richnote_selection_latency_us",
        "Ingest-to-selection latency (virtual time for the simulator)",
        &labels,
    );
    r.set_counter(pubs, agg.arrived as u64);
    r.set_counter(selected, agg.delivered as u64);
    r.set_counter(rounds_h, rounds);
    r.set_counter(bytes, agg.bytes_delivered);
    r.set_gauge(users, agg.users as f64);
    r.set_gauge(backlog, agg.final_backlog as f64);
    r.merge_histogram(delay, &agg.delay_histogram);
    // Delivery-quality cohorts, under the exact family names, help
    // strings, and label order the daemon's shards export — so a
    // dashboard keyed on `richnote_utility_total` reads either producer.
    let policy = agg.quality.policy();
    if !policy.is_empty() {
        for cell in agg.quality.cells() {
            let lv = usize::from(cell.level).to_string();
            let labels = [
                ("connectivity", cell.connectivity.as_str()),
                ("level", lv.as_str()),
                ("policy", policy),
                ("shard", "sim"),
            ];
            let u = r.gauge(UTILITY_FAMILY, UTILITY_HELP, &labels);
            r.set_gauge(u, cell.utility);
            let b = r.counter(DELIVERED_BYTES_FAMILY, DELIVERED_BYTES_HELP, &labels);
            r.set_counter(b, cell.bytes);
        }
        for (cohort, count) in agg.quality.suppressed_cells() {
            let labels = [("connectivity", cohort.as_str()), ("policy", policy), ("shard", "sim")];
            let s = r.counter(SUPPRESSED_FAMILY, SUPPRESSED_HELP, &labels);
            r.set_counter(s, count);
        }
    }
    r.snapshot()
}

/// The run as Prometheus text exposition — the same format the daemon
/// serves on `--metrics-addr`.
pub fn exposition(agg: &AggregateMetrics, rounds: u64) -> String {
    encode_text(&export_registry(agg, rounds))
}

/// SLO policy applied to a finished simulation run, in virtual time.
///
/// The daemon's engine watches wall-clock windows; the simulator instead
/// grades the whole run at once, so the policy is just the two budgets
/// and the thresholds that define "bad".
#[derive(Debug, Clone, PartialEq)]
pub struct SimSloPolicy {
    /// Queuing delays strictly beyond this many virtual microseconds
    /// count against the latency budget (bucketed at log2 granularity,
    /// like the daemon's `split_above`).
    pub delay_threshold_us: u64,
    /// Budgeted fraction of deliveries allowed past the threshold.
    pub delay_target: f64,
    /// Budgeted fraction of arrivals the run may shed (neither delivered
    /// nor still queued at the end).
    pub shed_target: f64,
    /// Fast-window burn threshold, shared by both objectives.
    pub fast_burn_threshold: f64,
}

impl Default for SimSloPolicy {
    fn default() -> Self {
        SimSloPolicy {
            // Six selection rounds: under hourly rounds a notification
            // queued most of a workday has lost its freshness value.
            delay_threshold_us: (6.0 * paper::ROUND_SECS * 1e6) as u64,
            delay_target: 0.10,
            shed_target: 0.05,
            fast_burn_threshold: 8.0,
        }
    }
}

/// Grades one finished run against `policy`, deterministically: same
/// aggregate → identical [`SloReport`].
///
/// The whole run lands in the engine's open bucket (virtual time is
/// anchored at zero and never advanced), so fast and slow burn rates
/// coincide — what matters here is the verdict and remaining budget,
/// not windowing.
pub fn evaluate_slos(agg: &AggregateMetrics, policy: &SimSloPolicy) -> SloReport {
    let mut engine = SloEngine::new(60, 12);
    let delay = engine.objective(SloSpec {
        name: "delivery_delay".to_string(),
        target: policy.delay_target,
        fast_burn_threshold: policy.fast_burn_threshold,
    });
    let shed = engine.objective(SloSpec {
        name: "shed".to_string(),
        target: policy.shed_target,
        fast_burn_threshold: policy.fast_burn_threshold,
    });
    engine.advance(0);

    let (good, bad) =
        split_above(&Log2Histogram::new(), &agg.delay_histogram, policy.delay_threshold_us);
    engine.record(delay, good, bad);

    let arrived = agg.arrived as u64;
    let retained = (agg.delivered + agg.final_backlog) as u64;
    let shed_count = arrived.saturating_sub(retained);
    engine.record(shed, arrived - shed_count, shed_count);

    engine.evaluate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{constant_utility, PopulationSim, SimulationConfig};
    use richnote_trace::generator::{TraceConfig, TraceGenerator};
    use std::sync::Arc;

    #[test]
    fn export_matches_the_aggregate_and_uses_shared_names() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(3)).generate());
        let users = trace.top_users(8);
        let cfg = SimulationConfig { rounds: 48, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace, constant_utility(0.6), cfg);
        let (agg, _) = sim.run(&users);
        assert!(agg.delivered > 0);

        let snap = export_registry(&agg, 48);
        assert_eq!(snap.counter_total("richnote_pubs_total"), agg.arrived as u64);
        assert_eq!(snap.counter_total("richnote_selected_total"), agg.delivered as u64);
        assert_eq!(snap.counter_total("richnote_rounds_total"), 48);
        assert_eq!(snap.counter_total("richnote_bytes_spent_total"), agg.bytes_delivered);
        let hist = snap.histogram_merged("richnote_selection_latency_us");
        assert_eq!(hist.count(), agg.delivered as u64, "one delay sample per delivery");

        let text = exposition(&agg, 48);
        assert!(text.contains("richnote_pubs_total{shard=\"sim\"}"));
        assert!(text.contains("richnote_selection_latency_us_count{shard=\"sim\"}"));
    }

    #[test]
    fn export_carries_quality_cohorts_under_daemon_names() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(7)).generate());
        let users = trace.top_users(8);
        // Markov connectivity so real cell/wifi cohorts appear, unlike the
        // daemon whose round contexts carry no network signal.
        let cfg = SimulationConfig {
            rounds: 48,
            network: crate::simulator::NetworkKind::Markov,
            ..SimulationConfig::default()
        };
        let sim = PopulationSim::new(trace, constant_utility(0.6), cfg);
        let (agg, _) = sim.run(&users);
        assert!(agg.delivered > 0);
        assert!(!agg.quality.is_empty(), "deliveries must feed the ledger");
        assert!(
            (agg.quality.total_utility() - agg.total_utility).abs() < 1e-9,
            "ledger utility {} must equal the aggregate's {}",
            agg.quality.total_utility(),
            agg.total_utility
        );
        assert_eq!(agg.quality.total_bytes(), agg.bytes_delivered);
        assert!(agg.utility_per_mb().expect("bytes were delivered") > 0.0);

        let snap = export_registry(&agg, 48);
        let family = snap.family("richnote_utility_total").expect("utility family exported");
        assert!(!family.series.is_empty());
        let text = exposition(&agg, 48);
        assert!(
            text.contains("richnote_utility_total{connectivity=\"cell\"")
                || text.contains("richnote_utility_total{connectivity=\"wifi\""),
            "sim cohorts must carry real connectivity states:\n{text}"
        );
        assert!(text.contains("policy=\"RichNote\",shard=\"sim\"}"), "label order must match");
        assert!(text.contains("richnote_delivered_bytes_total{connectivity="));
    }

    #[test]
    fn same_seed_quality_exposition_is_byte_identical() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(7)).generate());
        let users = trace.top_users(8);
        let cfg = SimulationConfig {
            rounds: 48,
            network: crate::simulator::NetworkKind::Markov,
            ..SimulationConfig::default()
        };
        let sim = PopulationSim::new(trace, constant_utility(0.6), cfg);
        let (a, _) = sim.run(&users);
        let (b, _) = sim.run(&users);
        assert!(!a.quality.is_empty());
        assert_eq!(a.quality, b.quality, "same-seed runs must fill identical ledgers");
        assert_eq!(
            exposition(&a, 48),
            exposition(&b, 48),
            "same-seed analytics exposition must be byte-identical"
        );
    }

    #[test]
    fn slo_report_is_deterministic_across_runs() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(9)).generate());
        let users = trace.top_users(6);
        let cfg = SimulationConfig { rounds: 24, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace, constant_utility(0.5), cfg);
        let (a, _) = sim.run(&users);
        let (b, _) = sim.run(&users);
        let policy = SimSloPolicy::default();
        let ra = evaluate_slos(&a, &policy);
        let rb = evaluate_slos(&b, &policy);
        assert_eq!(ra, rb);
        let names: Vec<&str> = ra.verdicts.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["delivery_delay", "shed"]);
    }

    #[test]
    fn slo_verdicts_track_the_aggregate() {
        use richnote_obs::SloStatus;
        // A calm run: everything delivered promptly, nothing shed.
        let mut agg = AggregateMetrics::from_users(&[]);
        agg.arrived = 1000;
        agg.delivered = 990;
        agg.final_backlog = 10;
        for _ in 0..990 {
            agg.delay_histogram.record_us(1_000_000); // 1 virtual second
        }
        let report = evaluate_slos(&agg, &SimSloPolicy::default());
        assert_eq!(report.status, SloStatus::Ok, "calm run must grade Ok: {report:?}");
        for v in &report.verdicts {
            assert!(v.budget_remaining > 0.9, "{}: budget {}", v.name, v.budget_remaining);
        }

        // The same run shedding half its arrivals blows the shed budget.
        agg.arrived = 2000;
        let report = evaluate_slos(&agg, &SimSloPolicy::default());
        let shed = report.verdicts.iter().find(|v| v.name == "shed").expect("shed verdict");
        assert!(shed.status > SloStatus::Ok, "shedding half must fire: {shed:?}");
        assert!(report.status > SloStatus::Ok);

        // And a run whose deliveries all straggle past the threshold
        // blows the delay budget instead.
        let mut late = AggregateMetrics::from_users(&[]);
        late.arrived = 100;
        late.delivered = 100;
        for _ in 0..100 {
            late.delay_histogram.record_us(48 * 3_600_000_000); // two virtual days
        }
        let report = evaluate_slos(&late, &SimSloPolicy::default());
        let delay =
            report.verdicts.iter().find(|v| v.name == "delivery_delay").expect("delay verdict");
        assert!(delay.status > SloStatus::Ok, "all-late run must fire: {delay:?}");
    }

    #[test]
    fn exposition_is_deterministic_across_runs() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(5)).generate());
        let users = trace.top_users(6);
        let cfg = SimulationConfig { rounds: 24, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace, constant_utility(0.5), cfg);
        let (a, _) = sim.run(&users);
        let (b, _) = sim.run(&users);
        assert_eq!(exposition(&a, 24), exposition(&b, 24));
    }
}
