//! Bridge from the simulator's paper-metric accumulators to the shared
//! `richnote-obs` vocabulary.
//!
//! The paper-figure structs in [`crate::metrics`] stay — delivery ratio,
//! precision/recall and the level mix are evaluation quantities a
//! counters-and-gauges registry cannot express. What this module removes
//! is the *second vocabulary*: every operational quantity the simulator
//! shares with the daemon (publications, deliveries, bytes, rounds,
//! backlog, queuing-delay distribution) is exported under the exact
//! metric families the daemon serves on `/metrics`, labeled
//! `shard="sim"`, so dashboards and scrape-side tooling work unchanged
//! against either producer. Everything exported is virtual-time
//! deterministic: same trace + same seed → byte-identical exposition.

use crate::metrics::AggregateMetrics;
use richnote_obs::{encode_text, Registry, RegistrySnapshot};

/// Exports one finished run into the shared registry vocabulary.
///
/// `rounds` is the simulated horizon ([`crate::SimulationConfig::rounds`]);
/// it is not recoverable from the aggregate itself.
pub fn export_registry(agg: &AggregateMetrics, rounds: u64) -> RegistrySnapshot {
    let mut r = Registry::new();
    let labels = [("shard", "sim")];
    let pubs = r.counter("richnote_pubs_total", "Publications ingested", &labels);
    let selected = r.counter("richnote_selected_total", "Notifications delivered", &labels);
    let rounds_h = r.counter("richnote_rounds_total", "Selection rounds run", &labels);
    let bytes = r.counter("richnote_bytes_spent_total", "Bytes delivered to devices", &labels);
    let users = r.gauge("richnote_users", "Users with scheduler state", &labels);
    let backlog = r.gauge("richnote_backlog", "Notifications queued, pending selection", &labels);
    let delay = r.histogram(
        "richnote_selection_latency_us",
        "Ingest-to-selection latency (virtual time for the simulator)",
        &labels,
    );
    r.set_counter(pubs, agg.arrived as u64);
    r.set_counter(selected, agg.delivered as u64);
    r.set_counter(rounds_h, rounds);
    r.set_counter(bytes, agg.bytes_delivered);
    r.set_gauge(users, agg.users as f64);
    r.set_gauge(backlog, agg.final_backlog as f64);
    r.merge_histogram(delay, &agg.delay_histogram);
    r.snapshot()
}

/// The run as Prometheus text exposition — the same format the daemon
/// serves on `--metrics-addr`.
pub fn exposition(agg: &AggregateMetrics, rounds: u64) -> String {
    encode_text(&export_registry(agg, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{constant_utility, PopulationSim, SimulationConfig};
    use richnote_trace::generator::{TraceConfig, TraceGenerator};
    use std::sync::Arc;

    #[test]
    fn export_matches_the_aggregate_and_uses_shared_names() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(3)).generate());
        let users = trace.top_users(8);
        let cfg = SimulationConfig { rounds: 48, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace, constant_utility(0.6), cfg);
        let (agg, _) = sim.run(&users);
        assert!(agg.delivered > 0);

        let snap = export_registry(&agg, 48);
        assert_eq!(snap.counter_total("richnote_pubs_total"), agg.arrived as u64);
        assert_eq!(snap.counter_total("richnote_selected_total"), agg.delivered as u64);
        assert_eq!(snap.counter_total("richnote_rounds_total"), 48);
        assert_eq!(snap.counter_total("richnote_bytes_spent_total"), agg.bytes_delivered);
        let hist = snap.histogram_merged("richnote_selection_latency_us");
        assert_eq!(hist.count(), agg.delivered as u64, "one delay sample per delivery");

        let text = exposition(&agg, 48);
        assert!(text.contains("richnote_pubs_total{shard=\"sim\"}"));
        assert!(text.contains("richnote_selection_latency_us_count{shard=\"sim\"}"));
    }

    #[test]
    fn exposition_is_deterministic_across_runs() {
        let trace = Arc::new(TraceGenerator::new(TraceConfig::small(5)).generate());
        let users = trace.top_users(6);
        let cfg = SimulationConfig { rounds: 24, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace, constant_utility(0.5), cfg);
        let (a, _) = sim.run(&users);
        let (b, _) = sim.run(&users);
        assert_eq!(exposition(&a, 24), exposition(&b, 24));
    }
}
