//! Deterministic per-publication span traces for simulator runs.
//!
//! The daemon mints trace ids client-side at publish time; the simulator
//! has no wall clock and no wire, so ids derive purely from logical
//! coordinates — the run seed, the item's virtual arrival time
//! (`f64::to_bits`) and the content id — via
//! [`richnote_obs::derive_trace_id`]. The harness stages a Publish and a
//! Queue span for every arrival, then rides the
//! [`SelectionObserver`] hook of the per-user round loop
//! ([`crate::user::simulate_user_observed`]) to finish each trace with
//! Select (carrying the decision: chosen level, utility, winning
//! gradient, budget remaining) and Serialize spans the moment the MCKP
//! selector commits.
//!
//! Head sampling mirrors the daemon: a finished tree is kept when the
//! [`SampleRate`] keeps its id *or* the trace is anomalous (selection
//! downgraded to level 0–1), so post-mortem-interesting traces survive
//! any sampling rate. Everything recorded is virtual-time only — the
//! same seed and trace always dump byte-identical span trees, which is
//! asserted by test below and makes simulator span dumps diffable
//! artifacts.

use crate::simulator::SimulationConfig;
use crate::user::simulate_user_observed;
use crate::UserMetrics;
use richnote_core::content::ContentItem;
use richnote_core::ids::{ContentId, UserId};
use richnote_core::policy::{SelectDecision, SelectionObserver};
use richnote_obs::{derive_trace_id, SampleRate, SpanDecision, SpanRecord, SpanTree};
use std::collections::HashMap;

/// Stages spans per publication and assembles finished trees, applying
/// head sampling with anomaly bypass. Implements [`SelectionObserver`]
/// so it can ride any policy's round loop.
pub struct SpanHarness {
    user: u64,
    sample: SampleRate,
    staged: HashMap<u64, Vec<SpanRecord>>,
    finished: Vec<SpanTree>,
}

impl SpanHarness {
    /// A harness for one user's run: mints an id per item and stages its
    /// Publish and Queue spans up front (arrival order, so staging is
    /// deterministic).
    ///
    /// The Queue span's round is the round the arrival falls into
    /// (`arrival / round_secs`), matching the shard's "round at ingest"
    /// semantics.
    pub fn new(
        cfg: &SimulationConfig,
        sample: SampleRate,
        user: UserId,
        items: &[&ContentItem],
    ) -> Self {
        let mut staged = HashMap::new();
        if !sample.is_off() {
            for (idx, item) in items.iter().enumerate() {
                let trace = derive_trace_id(cfg.seed, item.arrival.to_bits(), item.id.value());
                let round = (item.arrival / cfg.round_secs).max(0.0) as u64;
                staged.insert(
                    item.id.value(),
                    vec![
                        SpanRecord::publish(trace, idx as u64, item.id.value()),
                        SpanRecord::queued(trace, 0, round, user.value(), item.id.value()),
                    ],
                );
            }
        }
        SpanHarness { user: user.value(), sample, staged, finished: Vec::new() }
    }

    /// Trees finished so far, in selection order.
    pub fn into_trees(self) -> Vec<SpanTree> {
        self.finished
    }
}

impl SelectionObserver for SpanHarness {
    fn on_select(&mut self, round: u64, content: ContentId, decision: &SelectDecision) {
        let Some(mut spans) = self.staged.remove(&content.value()) else {
            return;
        };
        let trace = spans[0].trace;
        spans.push(SpanRecord::selected(
            trace,
            0,
            round,
            self.user,
            content.value(),
            SpanDecision {
                level: decision.level,
                utility: decision.utility,
                gradient: decision.gradient,
                budget_remaining: decision.budget_remaining,
            },
        ));
        spans.push(SpanRecord::serialized(trace, 0, round, content.value(), decision.size));
        let anomalous = decision.level <= 1;
        if anomalous || self.sample.keeps(trace) {
            self.finished.push(SpanTree { trace, spans });
        }
    }
}

/// Runs one user's round loop with span tracing: [`simulate_user_observed`]
/// with a [`SpanHarness`] riding the selection hook. Returns the metrics
/// plus the kept span trees in selection order.
pub fn simulate_user_spans(
    user: UserId,
    items: &[&ContentItem],
    content_utility: &(dyn Fn(&ContentItem) -> f64 + Sync),
    cfg: &SimulationConfig,
    sample: SampleRate,
) -> (UserMetrics, Vec<SpanTree>) {
    let mut harness = SpanHarness::new(cfg, sample, user, items);
    let metrics = simulate_user_observed(user, items, content_utility, cfg, &mut harness);
    (metrics, harness.into_trees())
}

/// Renders trees as JSON lines (one span per line, trees in selection
/// order) — the byte format compared across seeded runs.
pub fn dump_json_lines(trees: &[SpanTree]) -> String {
    trees.iter().map(SpanTree::to_json_lines).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::PolicyKind;
    use richnote_core::content::{ContentFeatures, ContentKind, Interaction};
    use richnote_core::ids::{AlbumId, ArtistId, TrackId};
    use richnote_obs::SpanStage;

    fn item(id: u64, arrival: f64) -> ContentItem {
        ContentItem {
            id: ContentId::new(id),
            recipient: UserId::new(1),
            sender: None,
            kind: ContentKind::FriendFeed,
            track: TrackId::new(id),
            album: AlbumId::new(id),
            artist: ArtistId::new(id),
            arrival,
            track_secs: 276.0,
            features: ContentFeatures::default(),
            interaction: Interaction::Hovered,
        }
    }

    fn cfg(theta_bytes: u64) -> SimulationConfig {
        SimulationConfig {
            policy: PolicyKind::richnote_default(),
            rounds: 24,
            theta_bytes,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn traced_run_captures_the_full_shard_side_path() {
        let items: Vec<ContentItem> = (0..8).map(|i| item(i, i as f64 * 900.0)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let uc = |_: &ContentItem| 0.8;
        let (m, trees) =
            simulate_user_spans(UserId::new(1), &refs, &uc, &cfg(1_000_000), SampleRate::ALL);
        assert_eq!(trees.len(), m.delivered, "one kept tree per delivery at 1/1");
        for t in &trees {
            for st in
                [SpanStage::Publish, SpanStage::Queue, SpanStage::Select, SpanStage::Serialize]
            {
                assert!(t.stage(st).is_some(), "tree {:#x} missing {st:?}", t.trace);
            }
            let d = t
                .stage(SpanStage::Select)
                .and_then(|s| s.decision.as_ref())
                .expect("select span carries the decision");
            assert!(d.level >= 1 && d.level <= 6);
            let bytes = t.stage(SpanStage::Serialize).and_then(|s| s.bytes).expect("bytes");
            assert!(bytes > 0);
        }
    }

    #[test]
    fn same_seed_runs_dump_byte_identical_spans() {
        let items: Vec<ContentItem> = (0..12).map(|i| item(i, i as f64 * 700.0)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let uc = |i: &ContentItem| 0.3 + 0.05 * (i.id.value() % 10) as f64;
        let run = || {
            let (_, trees) =
                simulate_user_spans(UserId::new(3), &refs, &uc, &cfg(500_000), SampleRate::ALL);
            dump_json_lines(&trees)
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(a, b, "seeded span dumps must be byte-identical");

        // A different seed mints different ids, so dumps differ.
        let other = {
            let c = SimulationConfig { seed: 99, ..cfg(500_000) };
            let (_, trees) = simulate_user_spans(UserId::new(3), &refs, &uc, &c, SampleRate::ALL);
            dump_json_lines(&trees)
        };
        assert_ne!(a, other);
    }

    #[test]
    fn anomalous_selections_bypass_head_sampling() {
        let items: Vec<ContentItem> = (0..10).map(|i| item(i, 0.0)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let uc = |_: &ContentItem| 0.6;
        // A budget only fit for metadata forces level-1 selections: all
        // anomalous, so every delivery's tree survives a 1-in-a-million
        // sampling rate.
        let rare = SampleRate::one_in(1_000_000);
        let (m, trees) = simulate_user_spans(UserId::new(1), &refs, &uc, &cfg(300), rare);
        assert!(m.delivered > 0);
        assert_eq!(trees.len(), m.delivered);
        assert!(trees.iter().all(|t| t.is_anomalous()));

        // With a roomy budget the selections are healthy and the rare
        // sampler keeps (almost surely) none of them.
        let (m2, trees2) = simulate_user_spans(UserId::new(1), &refs, &uc, &cfg(10_000_000), rare);
        assert!(m2.delivered > 0);
        assert!(trees2.iter().all(|t| t.is_anomalous()), "only forced keeps may survive");
    }

    #[test]
    fn sampling_off_stages_nothing() {
        let items: Vec<ContentItem> = (0..4).map(|i| item(i, 0.0)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let uc = |_: &ContentItem| 0.8;
        let (m, trees) =
            simulate_user_spans(UserId::new(1), &refs, &uc, &cfg(1_000_000), SampleRate::OFF);
        assert!(m.delivered > 0);
        assert!(trees.is_empty());
    }
}
