//! # richnote-sim
//!
//! Discrete-event simulator and experiment harness reproducing the
//! RichNote evaluation (Sec. V).
//!
//! The simulator replays a (synthetic) Spotify-like notification trace
//! through per-user brokers running one of the three scheduling policies —
//! RichNote, FIFO, UTIL — under data budgets, battery-driven energy grants
//! and Markov/cellular connectivity, and measures exactly the paper's
//! metrics: delivery ratio, precision/recall, utility, download energy and
//! queuing delay.
//!
//! Layout:
//!
//! * [`cost`] — adapts the `richnote-energy` models to the scheduler's
//!   [`richnote_core::scheduler::TransferCost`] trait;
//! * [`events`] — a generic time-ordered event queue (the simulation core);
//! * [`feed`] — the Sec. II generation path: activity routed through the
//!   pub/sub broker into notification candidates;
//! * [`metrics`] — per-user and aggregate metric accumulators;
//! * [`obs`] — export into the shared `richnote-obs` metric vocabulary
//!   (the same families the daemon serves on `--metrics-addr`);
//! * [`spans`] — deterministic per-publication span traces (ids derived
//!   from seed + virtual time, head-sampled with anomaly bypass);
//! * [`user`] — the single-user round loop (Algorithm 2 driven end-to-end);
//! * [`simulator`] — population-level orchestration with thread-parallel
//!   user simulation;
//! * [`report`] — text tables, CSV and JSON export;
//! * [`scenarios`] — the deterministic scenario pack (commute flaky-cell,
//!   evening-WiFi surge, mass-event congestion, battery-critical cohort)
//!   with utility-per-MB / shed-rate reports;
//! * [`experiments`] — one module per figure/table of the paper, plus
//!   ablations and network/model-value studies.

pub mod alerts;
pub mod cost;
pub mod events;
pub mod experiments;
pub mod feed;
pub mod metrics;
pub mod obs;
pub mod report;
pub mod scenarios;
pub mod simulator;
pub mod spans;
pub mod user;

pub use alerts::{alert_timeline, timeline_json};
pub use cost::EnergyCost;
pub use metrics::{AggregateMetrics, UserMetrics};
pub use obs::{evaluate_slos, export_registry, exposition, SimSloPolicy};
pub use scenarios::{run_all, run_scenario, ScenarioReport, ScenarioSpec, SCENARIO_NAMES};
pub use simulator::{NetworkKind, PolicyKind, PopulationSim, SimulationConfig};
pub use spans::{dump_json_lines, simulate_user_spans, SpanHarness};
