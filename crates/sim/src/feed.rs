//! The notification *generation* path of Sec. II: routing music activity
//! through the topic-based pub/sub broker.
//!
//! The trace generator produces per-recipient notification items directly;
//! this module wires the same social structure through `richnote-pubsub`
//! so the full Spotify pipeline — activity → publication → subscription
//! match → notification candidate — is exercised end-to-end:
//!
//! * every user subscribes to the friend feeds of users they follow
//!   (real-time mode, as deployed);
//! * every user subscribes to their favorite artists' pages (round mode —
//!   RichNote's middle ground between real-time and batch).

use richnote_core::content::{ContentItem, ContentKind};
use richnote_core::ids::{ContentId, UserId};
use richnote_pubsub::broker::{Broker, Delivery, DeliveryMode};
use richnote_pubsub::topic::{Publication, Topic};
use richnote_trace::graph::SocialGraph;

/// A pub/sub router derived from a social graph.
#[derive(Debug)]
pub struct FeedRouter {
    broker: Broker<ContentId>,
}

impl FeedRouter {
    /// Builds the subscription tables from a social graph: friend feeds in
    /// real-time mode, artist pages flushed every `round_secs`.
    pub fn from_graph(graph: &SocialGraph, round_secs: f64) -> Self {
        let mut broker = Broker::new();
        for u in 0..graph.n_users() {
            let user = UserId::new(u as u64);
            for followee in graph.followees(user) {
                broker.subscribe_with_mode(
                    user,
                    Topic::FriendFeed(followee),
                    DeliveryMode::Realtime,
                );
            }
            for &artist in graph.favorites(user) {
                broker.subscribe_with_mode(
                    user,
                    Topic::ArtistPage(artist),
                    DeliveryMode::Rounds { round_secs },
                );
            }
        }
        Self { broker }
    }

    /// Publishes the activity behind a notification item and returns the
    /// matched real-time deliveries. Friend-feed items publish on the
    /// sender's feed topic; album releases on the artist page (buffered
    /// until [`Self::flush`]); playlist updates have no sender topic here
    /// and match nothing.
    pub fn route(&mut self, item: &ContentItem) -> Vec<Delivery<ContentId>> {
        let topic = match (item.kind, item.sender) {
            (ContentKind::FriendFeed, Some(sender)) => Topic::FriendFeed(sender),
            (ContentKind::AlbumRelease, _) => Topic::ArtistPage(item.artist),
            _ => return Vec::new(),
        };
        self.broker.publish(Publication::new(topic, item.id, item.arrival))
    }

    /// Flushes round-mode buffers at `now`.
    pub fn flush(&mut self, now: f64) -> Vec<Delivery<ContentId>> {
        self.broker.flush(now)
    }

    /// Matching statistics: `(publications, matches, buffered)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.broker.published_count(), self.broker.matched_count(), self.broker.buffered_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use richnote_trace::generator::{TraceConfig, TraceGenerator};

    #[test]
    fn friend_feed_items_reach_their_recipient_in_realtime() {
        let trace = TraceGenerator::new(TraceConfig::small(6)).generate();
        let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);
        let mut checked = 0;
        for item in &trace.items {
            if item.kind == ContentKind::FriendFeed && item.sender.is_some() {
                let deliveries = router.route(item);
                assert!(
                    deliveries.iter().any(|d| d.subscriber == item.recipient),
                    "recipient {} missing from fan-out of {}",
                    item.recipient,
                    item.id
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "too few friend-feed items checked: {checked}");
    }

    #[test]
    fn album_releases_buffer_until_round_flush() {
        let trace = TraceGenerator::new(TraceConfig::small(6)).generate();
        let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);
        let album_items: Vec<_> =
            trace.items.iter().filter(|i| i.kind == ContentKind::AlbumRelease).take(20).collect();
        assert!(!album_items.is_empty());
        for item in &album_items {
            let immediate = router.route(item);
            assert!(immediate.is_empty(), "album releases are not real-time");
        }
        let (_, _, buffered) = router.stats();
        // At least the favorite-artist releases have subscribers.
        let flushed = router.flush(1e9);
        assert_eq!(flushed.len(), buffered);
    }

    #[test]
    fn playlist_updates_do_not_match() {
        let trace = TraceGenerator::new(TraceConfig::small(6)).generate();
        let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);
        for item in trace.items.iter().filter(|i| i.kind == ContentKind::PlaylistUpdate) {
            assert!(router.route(item).is_empty());
        }
    }

    #[test]
    fn fanout_can_exceed_one() {
        // A sender with several followers produces multi-recipient fan-out
        // for a single publication — the pub/sub amplification the paper's
        // bandwidth numbers (2 TB/day) come from.
        let trace = TraceGenerator::new(TraceConfig::small(6)).generate();
        let mut router = FeedRouter::from_graph(&trace.graph, 3_600.0);
        let mut max_fanout = 0usize;
        for item in &trace.items {
            if item.kind == ContentKind::FriendFeed && item.sender.is_some() {
                max_fanout = max_fanout.max(router.route(item).len());
            }
        }
        assert!(max_fanout > 1, "expected multi-subscriber fan-out, got {max_fanout}");
    }
}
