//! Plain-text tables and JSON export for experiment reports.
//!
//! Every experiment harness produces one or more [`Table`]s whose rows
//! mirror the series of the corresponding paper figure, plus a
//! machine-readable JSON blob for regression diffing.

use serde::Serialize;
use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, column).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes), ready for plotting tools.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal for table cells.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats bytes as megabytes with 2 decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Serializes any report to pretty JSON.
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the report
/// types in this crate).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["budget", "ratio"]);
        t.push_row(vec!["1".into(), "0.5".into()]);
        t.push_row(vec!["100".into(), "1.0".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("budget"));
        // Right-aligned: the "1" lines up under the "t" of budget.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[3].ends_with("0.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["x".into()]);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 0), Some("x"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12349), "0.123");
        assert_eq!(f1(12.34), "12.3");
        assert_eq!(mb(2_500_000), "2.50");
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["plain".into(), "1".into()]);
        t.push_row(vec!["with, comma".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with, comma\",\"quo\"\"te\"");
    }

    #[test]
    fn json_round_trips() {
        #[derive(serde::Serialize)]
        struct S {
            x: u32,
        }
        let s = to_json(&S { x: 7 });
        assert!(s.contains("\"x\": 7"));
    }
}
