//! A generic discrete-event queue — the core of the "custom event-based
//! simulator" the paper evaluates with.
//!
//! Events are popped in non-decreasing time order; ties break by insertion
//! sequence so replays are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<E> {
    /// Simulated time in seconds.
    pub time: f64,
    /// Monotonic sequence number (assigned by the queue).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// BinaryHeap is a max-heap; invert the ordering for earliest-first pops.
impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// ```
/// use richnote_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop().map(|s| s.event), Some("sooner"));
/// assert_eq!(q.pop().map(|s| s.event), Some("later"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the past (before the last popped
    /// event) — simulations must never travel backwards.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must be a number");
        assert!(time >= self.now, "cannot schedule into the past ({time} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop();
        if let Some(s) = &next {
            self.now = s.time;
        }
        next
    }

    /// The earliest pending event time, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().event, "first");
        assert_eq!(q.pop().unwrap().event, "second");
        assert_eq!(q.pop().unwrap().event, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn can_schedule_at_current_time() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.pop();
        q.schedule(1.0, 2); // same instant is fine
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "must be a number")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(4.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }
}
