//! The single-user round loop: Algorithm 2 driven end-to-end for one user
//! over the evaluation horizon.

use crate::cost::EnergyCost;
use crate::events::EventQueue;
use crate::metrics::{UserMetrics, MAX_LEVEL};
use crate::simulator::{NetworkKind, SimulationConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use richnote_core::content::ContentItem;
use richnote_core::ids::{ContentId, UserId};
use richnote_core::policy::{AdaptiveDecision, NoopObserver, SelectDecision, SelectionObserver};
use richnote_core::quality::{CohortLedger, QualitySample};
use richnote_core::scheduler::{NetSignal, QueuedNotification, RoundContext};
use richnote_core::utility::DurationUtility;
use richnote_energy::battery::{energy_grant, BatteryTrace, BatteryTraceConfig};
use richnote_energy::model::NetworkEnergyModel;
use richnote_net::connectivity::{CellOnly, ConnectivitySchedule};
use richnote_net::diurnal::DiurnalConfig;
use richnote_net::markov::{MarkovConnectivity, NetworkState};
use std::collections::HashMap;

/// Forwards every observation to the caller's observer while also
/// accumulating the per-cohort quality ledger that lands in
/// [`UserMetrics::quality`]. The sim builds round contexts with a real
/// [`NetSignal`], so cohorts here carry true connectivity states rather
/// than the daemon's `unknown`.
struct QualityTee<'a> {
    inner: &'a mut dyn SelectionObserver,
    ledger: CohortLedger,
}

impl SelectionObserver for QualityTee<'_> {
    fn on_select(&mut self, round: u64, content: ContentId, decision: &SelectDecision) {
        self.inner.on_select(round, content, decision);
    }

    fn on_adapt(&mut self, round: u64, decision: &AdaptiveDecision) {
        self.inner.on_adapt(round, decision);
    }

    fn on_quality(&mut self, round: u64, sample: &QualitySample<'_>) {
        self.ledger.record(sample);
        self.inner.on_quality(round, sample);
    }
}

/// Events of the per-user simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UserEvent {
    /// A notification arrives at the broker (index into the item slice).
    Arrival(usize),
    /// A scheduling round fires.
    Round(u64),
}

/// Simulates one user through all rounds and returns their metrics.
///
/// `items` must all belong to `user` and be sorted by arrival time;
/// `content_utility` supplies `Uc(i)` (e.g. a trained random forest).
pub fn simulate_user(
    user: UserId,
    items: &[&ContentItem],
    content_utility: &(dyn Fn(&ContentItem) -> f64 + Sync),
    cfg: &SimulationConfig,
) -> UserMetrics {
    simulate_user_observed(user, items, content_utility, cfg, &mut NoopObserver)
}

/// [`simulate_user`] with a live [`SelectionObserver`]: every selection
/// decision (chosen level, utility, winning gradient, budget remaining)
/// is reported as it is made, which is how the span harness in
/// [`crate::spans`] captures deterministic per-publication traces.
pub fn simulate_user_observed(
    user: UserId,
    items: &[&ContentItem],
    content_utility: &(dyn Fn(&ContentItem) -> f64 + Sync),
    cfg: &SimulationConfig,
    obs: &mut dyn SelectionObserver,
) -> UserMetrics {
    let mut metrics = UserMetrics::new(user);
    metrics.arrived = items.len();
    metrics.clicked_total = items.iter().filter(|i| i.interaction.is_click()).count();

    // Per-user deterministic randomness: connectivity, battery phase and
    // (optionally) personalized taste.
    let user_seed = cfg.seed ^ user.value().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = SmallRng::seed_from_u64(user_seed);

    let ladder = if cfg.taste_spread > 0.0 {
        // Scale the duration-utility slope by a per-user lognormal factor.
        let z = {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let factor = (cfg.taste_spread * z).exp();
        let mut spec = cfg.presentation.clone();
        spec.duration_utility = match spec.duration_utility {
            DurationUtility::Logarithmic { a, b } => {
                DurationUtility::Logarithmic { a: a * factor, b: b * factor }
            }
            DurationUtility::Polynomial { a, b, d_max } => {
                DurationUtility::Polynomial { a: a * factor, b, d_max }
            }
            DurationUtility::RisingPolynomial { a, b, d_max } => {
                DurationUtility::RisingPolynomial { a: a * factor, b, d_max }
            }
        };
        spec.ladder()
    } else {
        cfg.presentation.ladder()
    };
    // One shared ladder per user; each arrival enqueues an `Arc` handle.
    let ladder = std::sync::Arc::new(ladder);
    let mut scheduler = cfg.policy.build();

    let battery = BatteryTrace::synthesize(
        &BatteryTraceConfig { phase_hours: (user.value() % 24) as f64, ..cfg.battery },
        cfg.rounds,
    );
    let mut cell_only = CellOnly::sporadic(match cfg.network {
        NetworkKind::CellSporadic(p) => p,
        _ => 1.0,
    });
    let mut markov = MarkovConnectivity::paper_default(NetworkState::Cell);
    let mut diurnal =
        DiurnalConfig { phase_hours: (user.value() % 5) as f64 - 2.0, ..DiurnalConfig::default() }
            .synthesize(&mut rng, cfg.rounds);
    // Scenario-pack rhythms are synthesized only for their own network
    // kind so the RNG stream of the existing kinds is untouched.
    let scenario_phase = (user.value() % 5) as f64 - 2.0;
    let mut scenario = match cfg.network {
        NetworkKind::CommuteFlaky => {
            Some(crate::scenarios::commute_flaky_trace(&mut rng, cfg.rounds, scenario_phase))
        }
        NetworkKind::EveningWifi => {
            Some(crate::scenarios::evening_wifi_trace(&mut rng, cfg.rounds, scenario_phase))
        }
        NetworkKind::MassEvent => {
            Some(crate::scenarios::mass_event_trace(&mut rng, cfg.rounds, scenario_phase))
        }
        _ => None,
    };

    let click_time: HashMap<ContentId, f64> =
        items.iter().filter_map(|i| i.interaction.click_time().map(|t| (i.id, t))).collect();

    let mut obs = QualityTee { inner: obs, ledger: CohortLedger::new() };

    // Build the event timeline: arrivals interleaved with round ticks.
    let mut queue: EventQueue<UserEvent> = EventQueue::new();
    for (idx, item) in items.iter().enumerate() {
        queue.schedule(item.arrival, UserEvent::Arrival(idx));
    }
    for round in 0..cfg.rounds {
        // Rounds fire at the *end* of their hour so items arriving during
        // round r are scheduled at its closing tick.
        queue.schedule((round + 1) as f64 * cfg.round_secs, UserEvent::Round(round));
    }

    while let Some(scheduled) = queue.pop() {
        match scheduled.event {
            UserEvent::Arrival(idx) => {
                let item = items[idx];
                let uc = content_utility(item).clamp(0.0, 1.0);
                scheduler.enqueue(QueuedNotification {
                    item: item.clone(),
                    ladder: ladder.clone(),
                    content_utility: uc,
                    enqueued_at: item.arrival,
                });
            }
            UserEvent::Round(round) => {
                let now = scheduled.time;
                let state = match cfg.network {
                    NetworkKind::Markov => markov.state_for_round(round, &mut rng),
                    NetworkKind::Diurnal => diurnal.state_for_round(round, &mut rng),
                    NetworkKind::CommuteFlaky
                    | NetworkKind::EveningWifi
                    | NetworkKind::MassEvent => scenario
                        .as_mut()
                        .expect("scenario trace synthesized for its kind")
                        .state_for_round(round, &mut rng),
                    _ => cell_only.state_for_round(round, &mut rng),
                };
                let model = match state {
                    NetworkState::Wifi => NetworkEnergyModel::wifi(),
                    _ => NetworkEnergyModel::cellular(),
                };
                let cost = EnergyCost(model);
                let grant = energy_grant(battery.fraction_at(round), cfg.kappa);
                let link_capacity = cfg.link.capacity(state, cfg.round_secs);
                let ctx = RoundContext::builder(&cost)
                    .round(round)
                    .now(now)
                    .round_secs(cfg.round_secs)
                    .online(state.is_online())
                    .link_capacity(link_capacity)
                    .data_grant(cfg.theta_bytes)
                    .energy_grant(grant)
                    .net(NetSignal::observed(state))
                    .build();
                let delivered = scheduler.select_round(&ctx, &mut obs);

                let mut round_bytes = 0u64;
                for d in &delivered {
                    metrics.delivered += 1;
                    metrics.bytes_delivered += d.size;
                    round_bytes += d.size;
                    metrics.total_utility += d.utility;
                    metrics.energy_joules += d.energy;
                    let delay = d.queuing_delay();
                    metrics.delay_sum_secs += delay;
                    metrics.delay_histogram.record_us((delay * 1e6) as u64);
                    let lvl = (d.level as usize).min(MAX_LEVEL - 1);
                    metrics.level_histogram[lvl] += 1;
                    if let Some(&t) = click_time.get(&d.content) {
                        metrics.clicked_utility += d.utility;
                        if d.delivered_at <= t {
                            metrics.delivered_before_click += 1;
                        }
                    }
                }
                metrics.session_energy_joules += model.session_energy(round_bytes);
                if cfg.record_backlog {
                    metrics.backlog_series.push(scheduler.backlog());
                }
            }
        }
    }

    metrics.final_backlog = scheduler.backlog();
    metrics.level_histogram[0] = metrics.arrived.saturating_sub(metrics.delivered);
    metrics.quality = obs.ledger;
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{PolicyKind, SimulationConfig};
    use richnote_core::content::{ContentFeatures, ContentKind, Interaction};
    use richnote_core::ids::{AlbumId, ArtistId, TrackId};

    fn item(id: u64, arrival: f64, clicked: bool) -> ContentItem {
        ContentItem {
            id: ContentId::new(id),
            recipient: UserId::new(1),
            sender: None,
            kind: ContentKind::FriendFeed,
            track: TrackId::new(id),
            album: AlbumId::new(id),
            artist: ArtistId::new(id),
            arrival,
            track_secs: 276.0,
            features: ContentFeatures::default(),
            interaction: if clicked {
                Interaction::Clicked { at: arrival + 7_200.0 }
            } else {
                Interaction::Hovered
            },
        }
    }

    fn base_cfg(policy: PolicyKind) -> SimulationConfig {
        SimulationConfig {
            policy,
            rounds: 24,
            theta_bytes: 1_000_000,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn generous_budget_delivers_everything() {
        let items: Vec<ContentItem> =
            (0..10).map(|i| item(i, i as f64 * 1_000.0, i % 2 == 0)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = base_cfg(PolicyKind::richnote_default());
        let uc = |_: &ContentItem| 0.8;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert_eq!(m.arrived, 10);
        assert_eq!(m.delivered, 10);
        assert_eq!(m.final_backlog, 0);
        assert!(m.total_utility > 0.0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_delivers_nothing() {
        let items: Vec<ContentItem> = (0..5).map(|i| item(i, 100.0, false)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = SimulationConfig { theta_bytes: 0, rounds: 24, ..SimulationConfig::default() };
        let uc = |_: &ContentItem| 0.8;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert_eq!(m.delivered, 0);
        assert_eq!(m.final_backlog, 5);
        assert_eq!(m.level_histogram[0], 5);
    }

    #[test]
    fn recall_counts_only_pre_click_deliveries() {
        // One clicked item, delivered within the first round (click is two
        // hours after arrival, delivery at the end of the first hour).
        let items = [item(0, 10.0, true)];
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = base_cfg(PolicyKind::Fifo { level: 1 });
        let uc = |_: &ContentItem| 0.5;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.clicked_total, 1);
        assert_eq!(m.delivered_before_click, 1);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 1.0);
    }

    #[test]
    fn delays_are_at_least_the_round_remainder() {
        let items = [item(0, 1_800.0, false)];
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = base_cfg(PolicyKind::Util { level: 1 });
        let uc = |_: &ContentItem| 0.5;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert_eq!(m.delivered, 1);
        // Arrived mid-round, delivered at the 3600 s tick plus the paced
        // transfer time of the 200-byte metadata payload.
        assert!(m.mean_delay_secs() >= 1_800.0);
        assert!(m.mean_delay_secs() < 1_801.0, "{}", m.mean_delay_secs());
    }

    #[test]
    fn fixed_level_histogram_is_concentrated() {
        let items: Vec<ContentItem> = (0..6).map(|i| item(i, 0.0, false)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = base_cfg(PolicyKind::Util { level: 3 });
        let uc = |_: &ContentItem| 0.5;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert_eq!(m.level_histogram[3], m.delivered);
    }

    #[test]
    fn diurnal_network_blocks_overnight_rounds() {
        // A single item arriving at 01:00 (inside the sleep window) cannot
        // be delivered until the device comes back online around 07:00.
        let items = [item(0, 3_600.0, false)];
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = SimulationConfig {
            network: NetworkKind::Diurnal,
            rounds: 24,
            theta_bytes: 1_000_000,
            ..SimulationConfig::default()
        };
        let uc = |_: &ContentItem| 0.9;
        // User 2 has diurnal phase 0 (sleep window covers hours 0–7); the
        // run is fully deterministic given the user seed.
        let m = simulate_user(UserId::new(2), &refs, &uc, &cfg);
        assert_eq!(m.delivered, 1);
        // Delay spans the remaining sleep window (several hours), far more
        // than the sub-hour delay of an always-on link.
        assert!(
            m.mean_delay_secs() > 2.0 * 3_600.0,
            "delay {} should span the sleep window",
            m.mean_delay_secs()
        );
    }

    #[test]
    fn taste_spread_diversifies_per_user_utilities() {
        let items: Vec<ContentItem> = (0..20).map(|i| item(i, 0.0, false)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let uc = |_: &ContentItem| 0.8;
        let run = |spread: f64, user: u64| {
            let cfg = SimulationConfig {
                taste_spread: spread,
                rounds: 24,
                theta_bytes: 100_000_000,
                ..SimulationConfig::default()
            };
            simulate_user(UserId::new(user), &refs, &uc, &cfg).total_utility
        };
        // Without personalization every user realizes identical utility.
        assert_eq!(run(0.0, 1), run(0.0, 2));
        // With personalization, users differ.
        assert_ne!(run(0.4, 1), run(0.4, 2));
    }

    #[test]
    fn session_energy_is_bounded_by_item_energy() {
        let items: Vec<ContentItem> = (0..8).map(|i| item(i, 0.0, false)).collect();
        let refs: Vec<&ContentItem> = items.iter().collect();
        let cfg = base_cfg(PolicyKind::richnote_default());
        let uc = |_: &ContentItem| 0.9;
        let m = simulate_user(UserId::new(1), &refs, &uc, &cfg);
        assert!(m.delivered > 0);
        assert!(m.session_energy_joules <= m.energy_joules + 1e-9);
    }
}
