//! `simulate` — run one custom RichNote simulation from the command line.
//!
//! ```text
//! simulate [--policy richnote|fifo|util|adaptive] [--level N] [--budget-mb N]
//!          [--network cell|sporadic:P|markov|diurnal|commute-flaky|
//!                     evening-wifi|mass-event]
//!          [--scenario NAME|all] [--quick] [--users N] [--days N]
//!          [--rate N] [--seed N] [--v N] [--kappa N] [--json] [--metrics]
//! ```
//!
//! Example: compare RichNote and UTIL on a 5 MB weekly budget under the
//! Markov network:
//!
//! ```text
//! simulate --policy richnote --budget-mb 5 --network markov
//! simulate --policy util --level 3 --budget-mb 5 --network markov
//! ```
//!
//! `--scenario` switches to the deterministic scenario pack and prints a
//! [`richnote_sim::scenarios::ScenarioReport`] per run:
//!
//! ```text
//! simulate --scenario commute-flaky --policy adaptive --quick --json
//! simulate --scenario all --policy richnote --json
//! ```

use richnote_core::paper;
use richnote_sim::experiments::{EnvConfig, ExperimentEnv};
use richnote_sim::report::to_json;
use richnote_sim::simulator::{NetworkKind, PolicyKind, PopulationSim, SimulationConfig};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    policy: String,
    level: u8,
    budget_mb: u64,
    scenario: Option<String>,
    quick: bool,
    network: NetworkKind,
    users: usize,
    days: u64,
    rate: f64,
    seed: u64,
    v: f64,
    kappa: f64,
    json: bool,
    metrics: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            policy: "richnote".to_string(),
            level: 3,
            budget_mb: 20,
            scenario: None,
            quick: false,
            network: NetworkKind::CellAlways,
            users: 150,
            days: 7,
            rate: 40.0,
            seed: 2015,
            v: paper::LYAPUNOV_V,
            kappa: paper::KAPPA_JOULES_PER_ROUND,
            json: false,
            metrics: false,
        }
    }
}

fn parse() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--policy" => opts.policy = take("--policy")?,
            "--level" => {
                opts.level = take("--level")?.parse().map_err(|e| format!("bad level: {e}"))?
            }
            "--budget-mb" => {
                opts.budget_mb =
                    take("--budget-mb")?.parse().map_err(|e| format!("bad budget: {e}"))?
            }
            "--network" => {
                let v = take("--network")?;
                opts.network = match v.as_str() {
                    "cell" => NetworkKind::CellAlways,
                    "markov" => NetworkKind::Markov,
                    "diurnal" => NetworkKind::Diurnal,
                    "commute-flaky" => NetworkKind::CommuteFlaky,
                    "evening-wifi" => NetworkKind::EveningWifi,
                    "mass-event" => NetworkKind::MassEvent,
                    other if other.starts_with("sporadic:") => {
                        let p: f64 = other["sporadic:".len()..]
                            .parse()
                            .map_err(|e| format!("bad availability: {e}"))?;
                        NetworkKind::CellSporadic(p)
                    }
                    other => return Err(format!("unknown network {other}")),
                };
            }
            "--users" => {
                opts.users = take("--users")?.parse().map_err(|e| format!("bad users: {e}"))?
            }
            "--days" => {
                opts.days = take("--days")?.parse().map_err(|e| format!("bad days: {e}"))?
            }
            "--rate" => {
                opts.rate = take("--rate")?.parse().map_err(|e| format!("bad rate: {e}"))?
            }
            "--seed" => {
                opts.seed = take("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?
            }
            "--v" => opts.v = take("--v")?.parse().map_err(|e| format!("bad v: {e}"))?,
            "--kappa" => {
                opts.kappa = take("--kappa")?.parse().map_err(|e| format!("bad kappa: {e}"))?
            }
            "--scenario" => opts.scenario = Some(take("--scenario")?),
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--metrics" => opts.metrics = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// Runs one scenario (or `all`) from the deterministic pack and prints
/// its report(s).
fn run_scenario_pack(name: &str, policy: PolicyKind, quick: bool, json: bool) -> ExitCode {
    use richnote_sim::scenarios::{run_scenario, spec, ScenarioReport, SCENARIO_NAMES};

    let names: Vec<&str> = if name == "all" {
        SCENARIO_NAMES.to_vec()
    } else if spec(name).is_some() {
        vec![name]
    } else {
        eprintln!("unknown scenario {name} (expected all, {})", SCENARIO_NAMES.join(", "));
        return ExitCode::FAILURE;
    };

    let mut reports: Vec<ScenarioReport> = Vec::new();
    for n in names {
        eprintln!(
            "running scenario {n} under {}{}...",
            policy.name(),
            if quick { " (quick)" } else { "" }
        );
        reports.push(run_scenario(n, policy, quick).expect("validated above"));
    }

    if json {
        if reports.len() == 1 {
            println!("{}", to_json(&reports[0]));
        } else {
            println!("{}", to_json(&reports));
        }
    } else {
        for r in &reports {
            println!(
                "scenario {} | policy {} | {} users x {} rounds",
                r.scenario, r.policy, r.users, r.rounds
            );
            println!("  arrived        {}", r.arrived);
            println!(
                "  delivered      {} ({:.1}%)",
                r.delivered,
                100.0 * r.delivered as f64 / r.arrived.max(1) as f64
            );
            println!("  data           {:.2} MB", r.bytes_delivered as f64 / 1e6);
            println!("  utility        {:.1}", r.total_utility);
            println!("  utility/MB     {:.2}", r.utility_per_mb);
            println!("  shed rate      {:.3}", r.shed_rate);
            println!("  mean delay     {:.2} h", r.mean_delay_secs / 3600.0);
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let policy = match opts.policy.as_str() {
        "richnote" => PolicyKind::richnote_with(opts.v, opts.kappa),
        "fifo" => PolicyKind::Fifo { level: opts.level },
        "util" => PolicyKind::Util { level: opts.level },
        "adaptive" => PolicyKind::adaptive_default(),
        other => {
            eprintln!("unknown policy {other} (expected richnote|fifo|util|adaptive)");
            return ExitCode::FAILURE;
        }
    };

    if let Some(name) = &opts.scenario {
        return run_scenario_pack(name, policy, opts.quick, opts.json);
    }

    eprintln!(
        "building environment: {} users, {} days, ~{} notifications/user-day...",
        opts.users, opts.days, opts.rate
    );
    let env = ExperimentEnv::build(EnvConfig {
        seed: opts.seed,
        n_users: opts.users,
        top_users: opts.users / 2,
        mean_notifications_per_user_day: opts.rate,
        days: opts.days,
    });

    let cfg = SimulationConfig {
        policy,
        network: opts.network,
        rounds: opts.days * 24,
        theta_bytes: paper::theta_bytes_per_round(opts.budget_mb),
        kappa: opts.kappa,
        ..SimulationConfig::default()
    };
    let cfg_rounds = cfg.rounds;
    let sim = PopulationSim::new(env.trace.clone(), env.utility(), cfg);
    let (agg, _) = sim.run(&env.users);

    if opts.json {
        println!("{}", to_json(&agg));
    } else {
        println!(
            "policy {} | budget {} MB/week | {} users simulated",
            policy.name(),
            opts.budget_mb,
            env.users.len()
        );
        println!("  arrived        {}", agg.arrived);
        println!("  delivered      {} ({:.1}%)", agg.delivered, 100.0 * agg.delivery_ratio());
        println!("  data           {:.1} MB", agg.bytes_delivered as f64 / 1e6);
        println!("  utility        {:.1}", agg.total_utility);
        println!("  precision      {:.3}", agg.precision());
        println!("  recall         {:.3}", agg.recall());
        println!("  energy         {:.1} kJ", agg.energy_joules / 1000.0);
        println!("  mean delay     {:.2} h", agg.mean_delay_secs() / 3600.0);
        let mix = agg.level_mix();
        println!(
            "  level mix      meta {:.2} | 5s {:.2} | 10s {:.2} | 20s {:.2} | 30s {:.2} | 40s {:.2}",
            mix[1], mix[2], mix[3], mix[4], mix[5], mix[6]
        );
    }
    if opts.metrics {
        print!("{}", richnote_sim::obs::exposition(&agg, cfg_rounds));
    }
    ExitCode::SUCCESS
}
