//! Population-level simulation: run every user's round loop, in parallel,
//! and aggregate.
//!
//! The paper notes its solution "can potentially scale to a much larger
//! user base using a backend parallel platform since it can work in
//! rounds and independently for each user" — we exploit exactly that
//! independence with thread-parallel user simulation.

use crate::metrics::{AggregateMetrics, UserMetrics};
use crate::user::simulate_user;
use richnote_core::adaptive::{AdaptiveConfig, AdaptivePolicy};
use richnote_core::content::ContentItem;
use richnote_core::ids::UserId;
use richnote_core::lyapunov::LyapunovConfig;
use richnote_core::paper;
use richnote_core::presentation::AudioPresentationSpec;
use richnote_core::scheduler::{FifoScheduler, RichNoteConfig, RichNoteScheduler, UtilScheduler};
use richnote_core::Policy;
use richnote_energy::battery::BatteryTraceConfig;
use richnote_net::connectivity::LinkProfile;
use richnote_trace::generator::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Which scheduling policy a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The RichNote Lyapunov + MCKP scheduler.
    RichNote(RichNoteConfig),
    /// FIFO at a fixed presentation level.
    Fifo {
        /// Fixed presentation level.
        level: u8,
    },
    /// Highest-utility-first at a fixed presentation level.
    Util {
        /// Fixed presentation level.
        level: u8,
    },
    /// Connectivity-aware adaptive RichNote: scales the data grant by a
    /// per-user EWMA throughput estimate and clamps the presentation
    /// ladder on predicted-offline / flaky-cell rounds.
    Adaptive(AdaptiveConfig),
}

impl PolicyKind {
    /// RichNote with the paper's default parameters.
    pub fn richnote_default() -> Self {
        PolicyKind::RichNote(RichNoteConfig::default())
    }

    /// RichNote with a specific Lyapunov `V` and `κ`.
    pub fn richnote_with(v: f64, kappa: f64) -> Self {
        PolicyKind::RichNote(RichNoteConfig {
            lyapunov: LyapunovConfig { v, kappa, initial_energy: kappa },
            ..RichNoteConfig::default()
        })
    }

    /// Adaptive with default estimator/threshold parameters.
    pub fn adaptive_default() -> Self {
        PolicyKind::Adaptive(AdaptiveConfig::default())
    }

    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            PolicyKind::RichNote(_) => "RichNote".to_string(),
            PolicyKind::Fifo { level } => format!("FIFO(L{level})"),
            PolicyKind::Util { level } => format!("UTIL(L{level})"),
            PolicyKind::Adaptive(_) => "Adaptive".to_string(),
        }
    }

    /// Instantiates the policy behind the unified [`Policy`] interface.
    ///
    /// This is the single place the simulator maps configuration onto
    /// concrete schedulers; the per-user round loop is policy-agnostic.
    pub fn build(&self) -> Box<dyn Policy + Send> {
        match *self {
            PolicyKind::RichNote(rn_cfg) => {
                Box::new(RichNoteScheduler::builder().config(rn_cfg).build())
            }
            PolicyKind::Fifo { level } => {
                Box::new(FifoScheduler::builder().fixed_level(level).build())
            }
            PolicyKind::Util { level } => {
                Box::new(UtilScheduler::builder().fixed_level(level).build())
            }
            PolicyKind::Adaptive(a_cfg) => {
                Box::new(AdaptivePolicy::builder().config(a_cfg).build())
            }
        }
    }
}

/// Which connectivity model drives rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Always-on cellular.
    CellAlways,
    /// Sporadic cellular with the given per-round availability.
    CellSporadic(f64),
    /// The paper's WiFi/Cell/Off Markov chain (Sec. V-D3).
    Markov,
    /// A synthesized diurnal rhythm (overnight off, office/home WiFi,
    /// commute cellular) with per-user phase shifts.
    Diurnal,
    /// Scenario-pack rhythm: flaky cellular during commute windows, cell
    /// workdays, home WiFi evenings, overnight radio silence.
    CommuteFlaky,
    /// Scenario-pack rhythm: sporadic daytime cellular with a stable
    /// evening WiFi window (the whole cohort surges online at once).
    EveningWifi,
    /// Scenario-pack rhythm: all-day cellular with a congested mass-event
    /// window in the evening where most rounds draw Off.
    MassEvent,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Connectivity model.
    pub network: NetworkKind,
    /// Number of rounds (paper: 168 hourly rounds over one week).
    pub rounds: u64,
    /// Round length in seconds.
    pub round_secs: f64,
    /// Data grant per round, θ, bytes.
    pub theta_bytes: u64,
    /// Per-round energy budget κ, joules (drives `e(t)` grants).
    pub kappa: f64,
    /// Link bandwidth profile.
    pub link: LinkProfile,
    /// Battery trace configuration.
    pub battery: BatteryTraceConfig,
    /// Presentation ladder specification.
    pub presentation: AudioPresentationSpec,
    /// Per-user taste heterogeneity: the duration-utility slope is scaled
    /// by `exp(spread · z_u)` for a standard-normal per-user draw `z_u`,
    /// so some users value long previews more than others ("personalized
    /// for the user", Sec. I). Zero disables personalization.
    pub taste_spread: f64,
    /// Record the per-round backlog into
    /// [`crate::metrics::UserMetrics::backlog_series`] (costs memory
    /// proportional to rounds; used by the queue-stability experiment).
    pub record_backlog: bool,
    /// Base seed for per-user randomness.
    pub seed: u64,
}

impl SimulationConfig {
    /// One week of hourly rounds with the given weekly budget (MB) and
    /// policy, everything else at paper defaults.
    pub fn weekly(policy: PolicyKind, weekly_budget_mb: u64) -> Self {
        Self {
            policy,
            theta_bytes: paper::theta_bytes_per_round(weekly_budget_mb),
            ..Self::default()
        }
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::richnote_default(),
            network: NetworkKind::CellAlways,
            rounds: paper::ROUNDS_PER_WEEK,
            round_secs: paper::ROUND_SECS,
            theta_bytes: paper::theta_bytes_per_round(20),
            kappa: paper::KAPPA_JOULES_PER_ROUND,
            link: LinkProfile::paper_default(),
            battery: BatteryTraceConfig::default(),
            presentation: AudioPresentationSpec::paper_default(),
            taste_spread: 0.0,
            record_backlog: false,
            seed: 7,
        }
    }
}

/// Shared content-utility function type.
pub type UtilityFn = Arc<dyn Fn(&ContentItem) -> f64 + Send + Sync>;

/// A population simulation bound to a trace and a utility model.
pub struct PopulationSim {
    trace: Arc<Trace>,
    utility: UtilityFn,
    cfg: SimulationConfig,
}

impl PopulationSim {
    /// Creates a simulation over `trace` using `utility` for `Uc(i)`.
    pub fn new(trace: Arc<Trace>, utility: UtilityFn, cfg: SimulationConfig) -> Self {
        Self { trace, utility, cfg }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.cfg
    }

    /// Runs the simulation for the given users in parallel and returns
    /// aggregate plus per-user metrics (per-user results in input order).
    pub fn run(&self, users: &[UserId]) -> (AggregateMetrics, Vec<UserMetrics>) {
        // Group items by recipient once.
        let mut by_user: HashMap<UserId, Vec<&ContentItem>> = HashMap::new();
        for item in &self.trace.items {
            by_user.entry(item.recipient).or_default().push(item);
        }

        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let chunk = users.len().div_ceil(threads.max(1)).max(1);
        let cfg = &self.cfg;
        let utility = &self.utility;

        let mut per_user: Vec<UserMetrics> = Vec::with_capacity(users.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for batch in users.chunks(chunk) {
                let by_user = &by_user;
                handles.push(scope.spawn(move || {
                    batch
                        .iter()
                        .map(|&u| {
                            let empty: Vec<&ContentItem> = Vec::new();
                            let items = by_user.get(&u).unwrap_or(&empty);
                            simulate_user(u, items, &**utility, cfg)
                        })
                        .collect::<Vec<UserMetrics>>()
                }));
            }
            for h in handles {
                per_user.extend(h.join().expect("user simulation thread panicked"));
            }
        });

        (AggregateMetrics::from_users(&per_user), per_user)
    }
}

/// Builds a utility function from a trained random forest over the paper's
/// feature vector.
pub fn forest_utility(forest: Arc<richnote_forest::forest::RandomForest>) -> UtilityFn {
    Arc::new(move |item: &ContentItem| forest.content_utility(&item.features.to_vec()))
}

/// A constant-utility function (null model).
pub fn constant_utility(value: f64) -> UtilityFn {
    Arc::new(move |_: &ContentItem| value)
}

/// An oracle utility reading the ground truth (upper bound).
pub fn oracle_utility() -> UtilityFn {
    Arc::new(|item: &ContentItem| if item.interaction.is_click() { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use richnote_trace::generator::{TraceConfig, TraceGenerator};

    fn small_trace() -> Arc<Trace> {
        Arc::new(TraceGenerator::new(TraceConfig::small(3)).generate())
    }

    #[test]
    fn population_run_covers_requested_users() {
        let trace = small_trace();
        let users = trace.top_users(10);
        let sim = PopulationSim::new(
            trace.clone(),
            constant_utility(0.7),
            SimulationConfig { rounds: 48, theta_bytes: 1_000_000, ..SimulationConfig::default() },
        );
        let (agg, per_user) = sim.run(&users);
        assert_eq!(per_user.len(), 10);
        assert_eq!(agg.users, 10);
        let arrived: usize = users.iter().map(|&u| trace.items_for(u).count()).sum();
        assert_eq!(agg.arrived, arrived);
        assert!(agg.delivered > 0);
    }

    #[test]
    fn parallel_run_is_deterministic() {
        let trace = small_trace();
        let users = trace.top_users(8);
        let cfg = SimulationConfig { rounds: 48, ..SimulationConfig::default() };
        let sim = PopulationSim::new(trace.clone(), constant_utility(0.5), cfg);
        let (a, ua) = sim.run(&users);
        let (b, ub) = sim.run(&users);
        assert_eq!(a, b);
        assert_eq!(ua, ub);
    }

    #[test]
    fn unknown_user_yields_empty_metrics() {
        let trace = small_trace();
        let sim = PopulationSim::new(
            trace,
            constant_utility(0.5),
            SimulationConfig { rounds: 24, ..SimulationConfig::default() },
        );
        let (agg, per_user) = sim.run(&[UserId::new(999_999)]);
        assert_eq!(per_user[0].arrived, 0);
        assert_eq!(agg.delivered, 0);
    }

    #[test]
    fn weekly_config_sets_theta() {
        let cfg = SimulationConfig::weekly(PolicyKind::Fifo { level: 2 }, 168);
        assert_eq!(cfg.theta_bytes, 1_000_000);
        assert_eq!(cfg.rounds, 168);
    }

    #[test]
    fn richnote_beats_baselines_on_utility_in_a_seeded_scenario() {
        let trace = small_trace();
        let users = trace.top_users(12);
        let budget_mb = 5;
        let mut utilities = Vec::new();
        for policy in [
            PolicyKind::richnote_default(),
            PolicyKind::Fifo { level: 3 },
            PolicyKind::Util { level: 3 },
        ] {
            let sim = PopulationSim::new(
                trace.clone(),
                constant_utility(0.6),
                SimulationConfig { rounds: 48, ..SimulationConfig::weekly(policy, budget_mb) },
            );
            let (agg, _) = sim.run(&users);
            utilities.push(agg.total_utility);
        }
        assert!(
            utilities[0] > utilities[1] && utilities[0] > utilities[2],
            "RichNote {} vs FIFO {} vs UTIL {}",
            utilities[0],
            utilities[1],
            utilities[2]
        );
    }
}
