//! Per-user and aggregate metrics — exactly the quantities of Sec. V-C:
//! delivery ratio, precision/recall, average utility, download energy and
//! queuing delay, plus the presentation-level mix behind Fig. 5(b,c).

use richnote_core::ids::UserId;
use richnote_core::quality::CohortLedger;
use richnote_obs::Log2Histogram;
use serde::{Deserialize, Serialize};

/// Maximum presentation level tracked in histograms (level 0 = not sent).
pub const MAX_LEVEL: usize = 8;

/// Metrics of one simulated user over the whole horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserMetrics {
    /// The user.
    pub user: UserId,
    /// Notifications that arrived at the broker for this user.
    pub arrived: usize,
    /// Notifications delivered to the device.
    pub delivered: usize,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Sum of combined utility `U(i, j)` over delivered notifications.
    pub total_utility: f64,
    /// Utility restricted to delivered notifications whose ground truth was
    /// a click (Fig. 4(b)).
    pub clicked_utility: f64,
    /// Ground-truth clicked notifications among the arrived ones.
    pub clicked_total: usize,
    /// Delivered notifications that were ground-truth clicks *and* arrived
    /// on the device before the recorded click time.
    pub delivered_before_click: usize,
    /// Energy spent downloading, joules (per-item scheduler estimates).
    pub energy_joules: f64,
    /// Energy under batched per-round radio sessions, joules.
    pub session_energy_joules: f64,
    /// Sum of queuing delays over delivered notifications, seconds.
    pub delay_sum_secs: f64,
    /// Count of deliveries per presentation level; index 0 counts items
    /// never delivered within the horizon.
    pub level_histogram: [usize; MAX_LEVEL],
    /// Items still queued at the end of the horizon.
    pub final_backlog: usize,
    /// Per-round backlog (items queued after the round ran); empty unless
    /// the simulation enables backlog recording.
    pub backlog_series: Vec<usize>,
    /// Log2-bucketed queuing delay per delivered notification, recorded
    /// in virtual-time microseconds — the simulator's deterministic
    /// counterpart of the daemon's `richnote_selection_latency_us`.
    pub delay_histogram: Log2Histogram,
    /// Per-cohort delivery-quality ledger (utility, bytes, suppressions
    /// keyed by `{connectivity, level}`), fed by the scheduler's
    /// `on_quality` observations — the simulator side of the daemon's
    /// `richnote_utility_total` vocabulary.
    pub quality: CohortLedger,
}

impl UserMetrics {
    /// Creates zeroed metrics for `user`.
    pub fn new(user: UserId) -> Self {
        Self {
            user,
            arrived: 0,
            delivered: 0,
            bytes_delivered: 0,
            total_utility: 0.0,
            clicked_utility: 0.0,
            clicked_total: 0,
            delivered_before_click: 0,
            energy_joules: 0.0,
            session_energy_joules: 0.0,
            delay_sum_secs: 0.0,
            level_histogram: [0; MAX_LEVEL],
            final_backlog: 0,
            backlog_series: Vec::new(),
            delay_histogram: Log2Histogram::new(),
            quality: CohortLedger::new(),
        }
    }

    /// Fraction of arrived notifications delivered.
    pub fn delivery_ratio(&self) -> f64 {
        fraction(self.delivered as f64, self.arrived as f64)
    }

    /// Precision: delivered-before-click ÷ delivered (Sec. V-C).
    pub fn precision(&self) -> f64 {
        fraction(self.delivered_before_click as f64, self.delivered as f64)
    }

    /// Recall: delivered-before-click ÷ ground-truth clicks (Sec. V-C).
    pub fn recall(&self) -> f64 {
        fraction(self.delivered_before_click as f64, self.clicked_total as f64)
    }

    /// Mean utility per delivered notification.
    pub fn avg_utility(&self) -> f64 {
        fraction(self.total_utility, self.delivered as f64)
    }

    /// Mean queuing delay in seconds.
    pub fn mean_delay_secs(&self) -> f64 {
        fraction(self.delay_sum_secs, self.delivered as f64)
    }
}

fn fraction(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Aggregate metrics over a simulated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Number of users aggregated.
    pub users: usize,
    /// Total notifications arrived.
    pub arrived: usize,
    /// Total delivered.
    pub delivered: usize,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    /// Total utility delivered.
    pub total_utility: f64,
    /// Total utility among ground-truth-clicked deliveries.
    pub clicked_utility: f64,
    /// Total ground-truth clicks.
    pub clicked_total: usize,
    /// Total delivered before their click time.
    pub delivered_before_click: usize,
    /// Total energy (per-item estimates), joules.
    pub energy_joules: f64,
    /// Total energy under batched sessions, joules.
    pub session_energy_joules: f64,
    /// Sum of delays, seconds.
    pub delay_sum_secs: f64,
    /// Summed per-level delivery counts.
    pub level_histogram: [usize; MAX_LEVEL],
    /// Total leftover backlog.
    pub final_backlog: usize,
    /// All users' queuing-delay histograms merged.
    pub delay_histogram: Log2Histogram,
    /// All users' quality ledgers merged (element-wise per cohort cell).
    pub quality: CohortLedger,
    /// Mean of per-user delivery ratios (the paper averages metrics
    /// "across all users").
    pub mean_user_delivery_ratio: f64,
    /// Mean of per-user average utilities.
    pub mean_user_avg_utility: f64,
}

impl AggregateMetrics {
    /// Aggregates a set of per-user metrics.
    pub fn from_users(users: &[UserMetrics]) -> Self {
        let mut agg = Self {
            users: users.len(),
            arrived: 0,
            delivered: 0,
            bytes_delivered: 0,
            total_utility: 0.0,
            clicked_utility: 0.0,
            clicked_total: 0,
            delivered_before_click: 0,
            energy_joules: 0.0,
            session_energy_joules: 0.0,
            delay_sum_secs: 0.0,
            level_histogram: [0; MAX_LEVEL],
            final_backlog: 0,
            delay_histogram: Log2Histogram::new(),
            quality: CohortLedger::new(),
            mean_user_delivery_ratio: 0.0,
            mean_user_avg_utility: 0.0,
        };
        for u in users {
            agg.arrived += u.arrived;
            agg.delivered += u.delivered;
            agg.bytes_delivered += u.bytes_delivered;
            agg.total_utility += u.total_utility;
            agg.clicked_utility += u.clicked_utility;
            agg.clicked_total += u.clicked_total;
            agg.delivered_before_click += u.delivered_before_click;
            agg.energy_joules += u.energy_joules;
            agg.session_energy_joules += u.session_energy_joules;
            agg.delay_sum_secs += u.delay_sum_secs;
            agg.final_backlog += u.final_backlog;
            agg.delay_histogram.merge(&u.delay_histogram);
            agg.quality.merge(&u.quality);
            for (a, b) in agg.level_histogram.iter_mut().zip(&u.level_histogram) {
                *a += b;
            }
        }
        if !users.is_empty() {
            agg.mean_user_delivery_ratio =
                users.iter().map(UserMetrics::delivery_ratio).sum::<f64>() / users.len() as f64;
            agg.mean_user_avg_utility =
                users.iter().map(UserMetrics::avg_utility).sum::<f64>() / users.len() as f64;
        }
        agg
    }

    /// Overall delivery ratio.
    pub fn delivery_ratio(&self) -> f64 {
        fraction(self.delivered as f64, self.arrived as f64)
    }

    /// Overall precision.
    pub fn precision(&self) -> f64 {
        fraction(self.delivered_before_click as f64, self.delivered as f64)
    }

    /// Overall recall.
    pub fn recall(&self) -> f64 {
        fraction(self.delivered_before_click as f64, self.clicked_total as f64)
    }

    /// Mean utility per delivered notification.
    pub fn avg_utility(&self) -> f64 {
        fraction(self.total_utility, self.delivered as f64)
    }

    /// Mean queuing delay, seconds.
    pub fn mean_delay_secs(&self) -> f64 {
        fraction(self.delay_sum_secs, self.delivered as f64)
    }

    /// Utility per megabyte delivered, from the cohort ledger (`None`
    /// until any bytes were delivered).
    pub fn utility_per_mb(&self) -> Option<f64> {
        self.quality.utility_per_mb()
    }

    /// Fraction of arrived items delivered at each level (index 0 = never
    /// delivered) — the stacked bars of Fig. 5(b,c).
    pub fn level_mix(&self) -> [f64; MAX_LEVEL] {
        let mut mix = [0.0; MAX_LEVEL];
        if self.arrived == 0 {
            return mix;
        }
        let mut accounted = 0usize;
        for (i, &c) in self.level_histogram.iter().enumerate().skip(1) {
            mix[i] = c as f64 / self.arrived as f64;
            accounted += c;
        }
        mix[0] = (self.arrived.saturating_sub(accounted)) as f64 / self.arrived as f64;
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_user(user: u64) -> UserMetrics {
        UserMetrics {
            user: UserId::new(user),
            arrived: 10,
            delivered: 8,
            bytes_delivered: 1_000,
            total_utility: 4.0,
            clicked_utility: 2.0,
            clicked_total: 4,
            delivered_before_click: 3,
            energy_joules: 100.0,
            session_energy_joules: 60.0,
            delay_sum_secs: 800.0,
            level_histogram: [2, 5, 3, 0, 0, 0, 0, 0],
            final_backlog: 2,
            backlog_series: Vec::new(),
            delay_histogram: Log2Histogram::new(),
            quality: CohortLedger::new(),
        }
    }

    #[test]
    fn user_ratios() {
        let m = sample_user(1);
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 3.0 / 8.0).abs() < 1e-12);
        assert!((m.recall() - 0.75).abs() < 1e-12);
        assert!((m.avg_utility() - 0.5).abs() < 1e-12);
        assert!((m.mean_delay_secs() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_user_is_all_zeros() {
        let m = UserMetrics::new(UserId::new(1));
        assert_eq!(m.delivery_ratio(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.avg_utility(), 0.0);
    }

    #[test]
    fn aggregation_sums_and_averages() {
        let users = vec![sample_user(1), sample_user(2)];
        let agg = AggregateMetrics::from_users(&users);
        assert_eq!(agg.users, 2);
        assert_eq!(agg.arrived, 20);
        assert_eq!(agg.delivered, 16);
        assert_eq!(agg.bytes_delivered, 2_000);
        assert!((agg.total_utility - 8.0).abs() < 1e-12);
        assert!((agg.mean_user_delivery_ratio - 0.8).abs() < 1e-12);
        assert_eq!(agg.level_histogram[1], 10);
    }

    #[test]
    fn level_mix_sums_to_one() {
        let agg = AggregateMetrics::from_users(&[sample_user(1)]);
        let mix = agg.level_mix();
        let sum: f64 = mix.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{mix:?}");
        assert!((mix[1] - 0.5).abs() < 1e-12);
        assert!((mix[0] - 0.2).abs() < 1e-12); // 2 of 10 never delivered
    }

    #[test]
    fn empty_aggregate_is_sane() {
        let agg = AggregateMetrics::from_users(&[]);
        assert_eq!(agg.users, 0);
        assert_eq!(agg.delivery_ratio(), 0.0);
        assert_eq!(agg.level_mix(), [0.0; MAX_LEVEL]);
    }
}
