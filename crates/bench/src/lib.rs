//! # richnote-bench
//!
//! Benchmarks and the `repro` harness for the RichNote reproduction.
//!
//! * `src/bin/repro.rs` — regenerates every table and figure of the paper's
//!   evaluation (`cargo run -p richnote-bench --release --bin repro -- all`).
//! * `benches/` — Criterion micro-benchmarks of the algorithmic kernels:
//!   MCKP selection, Lyapunov rounds, random-forest training/prediction,
//!   trace generation, pub/sub matching and the full single-user
//!   simulation.
//!
//! This library crate only exposes shared fixture helpers for the benches.

use richnote_core::mckp::MckpItem;
use richnote_core::presentation::AudioPresentationSpec;

/// Builds `n` MCKP items over the paper ladder with deterministic,
/// spread-out content utilities — the standard bench fixture.
pub fn mckp_fixture(n: usize) -> Vec<MckpItem> {
    let ladder = AudioPresentationSpec::paper_default().ladder();
    (0..n)
        .map(|i| {
            let uc = 0.1 + 0.8 * ((i * 37) % 101) as f64 / 101.0;
            MckpItem::from_ladder(i, &ladder, uc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_produces_varied_items() {
        let items = mckp_fixture(50);
        assert_eq!(items.len(), 50);
        let first_util = items[0].levels()[1].1;
        let second_util = items[1].levels()[1].1;
        assert_ne!(first_util, second_util);
    }
}
