//! `repro` — regenerate every table and figure of the RichNote paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--json <path>] [--scale small|default]
//!
//! experiments:
//!   classifier   Sec. V-A  five-fold CV of the content-utility classifier
//!   fig2a        Fig. 2(a) survey grid -> Pareto-useful presentations
//!   fig2b        Fig. 2(b) duration-utility fits (Eq. 8 vs Eq. 9)
//!   fig3         Fig. 3    delivery ratio / data / recall / precision
//!   fig4         Fig. 4    utility / clicked utility / energy / delay
//!   fig5a        Fig. 5(a) RichNote vs fixed presentation levels
//!   fig5b        Fig. 5(b) presentation mix vs budget (cellular)
//!   fig5c        Fig. 5(c) presentation mix under the WiFi Markov model
//!   fig5d        Fig. 5(d) utility by user-volume category
//!   lyapunov-v   Sec. V-D5 sensitivity to the control knob V
//!   ablations    design-choice ablations (greedy variant, utility curve,
//!                round length, energy control)
//!   network      availability sweep (sporadic cellular) + connectivity models
//!   model-value  constant vs learned vs oracle content utility
//!   stability    per-round backlog trajectories (Lyapunov queue stability)
//!   all          everything above, in order
//! ```

use richnote_core::paper;
use richnote_sim::experiments::{
    ablation, classifier, fig2, fig5, lyapunov, network, stability, sweep, EnvConfig, ExperimentEnv,
};
use richnote_sim::report::{to_json, Table};
use richnote_sim::simulator::{NetworkKind, SimulationConfig};
use richnote_trace::generator::TraceConfig;
use std::io::Write;
use std::process::ExitCode;

struct Args {
    experiment: String,
    json_path: Option<String>,
    scale: EnvConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut json_path = None;
    let mut scale = EnvConfig::repro_default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a path".to_string())?);
            }
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = EnvConfig::test_small(),
                Some("default") => scale = EnvConfig::repro_default(),
                other => return Err(format!("unknown scale {other:?}")),
            },
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args { experiment, json_path, scale })
}

fn usage() -> String {
    "usage: repro <classifier|fig2a|fig2b|fig3|fig4|fig5a|fig5b|fig5c|fig5d|lyapunov-v|ablations\
     |network|model-value|stability|all> [--json <path>] [--scale small|default]"
        .to_string()
}

fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{t}");
    }
}

fn write_json(path: &Option<String>, name: &str, json: String) {
    if let Some(dir) = path {
        let file = format!("{dir}/{name}.json");
        if let Some(parent) = std::path::Path::new(&file).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::File::create(&file).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => eprintln!("wrote {file}"),
            Err(e) => eprintln!("failed to write {file}: {e}"),
        }
    }
}

struct Harness {
    args: Args,
    env: Option<ExperimentEnv>,
    sweep: Option<sweep::SweepReport>,
}

impl Harness {
    fn env(&mut self) -> &ExperimentEnv {
        if self.env.is_none() {
            eprintln!(
                "building environment: {} users ({} simulated), {} days...",
                self.args.scale.n_users, self.args.scale.top_users, self.args.scale.days
            );
            self.env = Some(ExperimentEnv::build(self.args.scale));
        }
        self.env.as_ref().expect("just built")
    }

    fn base(&self) -> SimulationConfig {
        SimulationConfig { rounds: self.args.scale.days * 24, ..SimulationConfig::default() }
    }

    fn run(&mut self, name: &str) -> Result<(), String> {
        let json_path = self.args.json_path.clone();
        match name {
            "classifier" => {
                let cfg = TraceConfig {
                    seed: self.args.scale.seed,
                    n_users: self.args.scale.n_users,
                    days: self.args.scale.days,
                    mean_notifications_per_user_day: self
                        .args
                        .scale
                        .mean_notifications_per_user_day,
                    ..TraceConfig::default()
                };
                let report = classifier::run(&cfg, 5);
                print_tables(&report.tables());
                write_json(&json_path, "classifier", to_json(&report));
            }
            "fig2a" => {
                let report = fig2::run_fig2a();
                println!("{}", report.table());
                println!(
                    "useful presentations: {} of {} (paper: 6 of 20)\n",
                    report.useful.len(),
                    report.cells.len()
                );
                write_json(&json_path, "fig2a", to_json(&report));
            }
            "fig2b" => {
                let report = fig2::run_fig2b(self.args.scale.seed, paper::SURVEY_PARTICIPANTS);
                print_tables(&report.tables());
                write_json(&json_path, "fig2b", to_json(&report));
            }
            "fig3" | "fig4" => {
                if self.sweep.is_none() {
                    let base = self.base();
                    let env = self.env();
                    eprintln!(
                        "running budget sweep (5 policies x {} budgets)...",
                        paper::BUDGET_SWEEP_MB.len()
                    );
                    self.sweep = Some(sweep::run(
                        env,
                        &sweep::paper_policies(),
                        &paper::BUDGET_SWEEP_MB,
                        &base,
                    ));
                }
                let report = self.sweep.as_ref().expect("just computed");
                if name == "fig3" {
                    print_tables(&[report.fig3a(), report.fig3b(), report.fig3c(), report.fig3d()]);
                } else {
                    print_tables(&[report.fig4a(), report.fig4b(), report.fig4c(), report.fig4d()]);
                }
                write_json(&json_path, name, to_json(report));
            }
            "fig5a" => {
                let base = self.base();
                let env = self.env();
                let report = fig5::run_fig5a(env, &paper::BUDGET_SWEEP_MB, &base);
                println!("{}", report.table());
                write_json(&json_path, "fig5a", to_json(&report));
            }
            "fig5b" => {
                let base = self.base();
                let env = self.env();
                let report = fig5::run_level_mix(
                    env,
                    &paper::BUDGET_SWEEP_MB,
                    &base,
                    NetworkKind::CellAlways,
                    "Fig. 5(b)",
                );
                println!("{}", report.table());
                write_json(&json_path, "fig5b", to_json(&report));
            }
            "fig5c" => {
                let base = self.base();
                let env = self.env();
                let report = fig5::run_level_mix(
                    env,
                    &paper::BUDGET_SWEEP_MB,
                    &base,
                    NetworkKind::Markov,
                    "Fig. 5(c)",
                );
                println!("{}", report.table());
                write_json(&json_path, "fig5c", to_json(&report));
            }
            "fig5d" => {
                let base = self.base();
                let env = self.env();
                let report = fig5::run_fig5d(env, 20, &base);
                println!("{}", report.table());
                write_json(&json_path, "fig5d", to_json(&report));
            }
            "lyapunov-v" => {
                let base = self.base();
                let env = self.env();
                let report = lyapunov::run(
                    env,
                    &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0],
                    10,
                    &base,
                );
                println!("{}", report.table());
                println!(
                    "uniformly better than UTIL: {} (paper: yes)\n",
                    report.uniformly_better()
                );
                write_json(&json_path, "lyapunov_v", to_json(&report));
            }
            "ablations" => {
                let base = self.base();
                let seed = self.args.scale.seed;
                let env = self.env();
                let budgets = [3u64, 10, 50];
                let reports = vec![
                    ablation::greedy_variants(env, &budgets, &base),
                    ablation::utility_function(env, &budgets, &base),
                    ablation::round_length(env, 10, &base),
                    ablation::energy_control(env, 20, &[3_000.0, 100.0, 10.0], &base),
                    ablation::workload_model(seed, 10, base.rounds),
                ];
                for r in &reports {
                    println!("{}", r.table());
                }
                write_json(&json_path, "ablations", to_json(&reports));
            }
            "network" => {
                let base = self.base();
                let env = self.env();
                let report =
                    network::availability_sweep(env, &[0.1, 0.25, 0.5, 0.75, 1.0], 10, &base);
                println!("{}", report.table());
                let models = network::connectivity_models(env, 10, &base);
                println!("{}", models.table());
                write_json(&json_path, "network", to_json(&report));
                write_json(&json_path, "network_models", to_json(&models));
            }
            "model-value" => {
                let base = self.base();
                let env = self.env();
                let report = network::model_value(env, 3, &base);
                println!("{}", report.table());
                write_json(&json_path, "model_value", to_json(&report));
            }
            "stability" => {
                let base = self.base();
                let env = self.env();
                let report = stability::run(env, 3, &base);
                println!("{}", report.table());
                write_json(&json_path, "stability", to_json(&report));
            }
            "all" => {
                for exp in [
                    "classifier",
                    "fig2a",
                    "fig2b",
                    "fig3",
                    "fig4",
                    "fig5a",
                    "fig5b",
                    "fig5c",
                    "fig5d",
                    "lyapunov-v",
                    "ablations",
                    "network",
                    "model-value",
                    "stability",
                ] {
                    eprintln!(">>> {exp}");
                    self.run(exp)?;
                }
            }
            other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let experiment = args.experiment.clone();
    let mut harness = Harness { args, env: None, sweep: None };
    match harness.run(&experiment) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
