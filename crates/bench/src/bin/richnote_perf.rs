//! `richnote-perf`: the deterministic perf-regression harness.
//!
//! ```text
//! richnote-perf [--out BENCH_5.json] [--baseline PATH] [--quick]
//!               [--no-rsrc] [--seed S] [--reps N]
//! ```
//!
//! Runs the loadgen scenarios against an in-process daemon (fixed seeds,
//! virtual-time rounds — the workload itself is bit-for-bit repeatable;
//! only the wall/CPU measurements vary with the machine), then emits a
//! machine-readable `BENCH_<n>.json` with, per scenario:
//!
//! * sustained throughput (publications per wall second),
//! * server-side stage percentiles (select/round p50/p95/p99),
//! * CPU time per publication (per-thread accounting from the shard
//!   workers, see `richnote_obs::rsrc`),
//! * allocations and allocated bytes per publication (this binary
//!   installs the counting global allocator), and
//! * the shed count (queue drops) the scenario provoked,
//!
//! plus the process-wide peak RSS and a machine-speed calibration score
//! (a fixed serial CPU-bound kernel, timed best-of-three). Scenario
//! numbers are the median across `--reps` repetitions.
//! When a baseline file exists (by default the `--out` path it is about
//! to overwrite), every scenario is compared against it with noise-aware
//! thresholds — **>15% throughput loss or >25% CPU-time/publication
//! growth is a regression** — and the process exits nonzero so CI fails
//! the commit that caused it. Throughput is compared *per unit of
//! calibrated machine speed* when both reports carry a score: a CI
//! runner (or a co-tenant-loaded host) that is simply slower than the
//! machine that produced the committed baseline scales both sides
//! equally and does not trip the gate, while a change that makes the
//! daemon itself slower still does.
//!
//! `--quick` scales the workload down for CI smoke runs (quick results
//! are only ever compared against quick baselines). `--no-rsrc` disables
//! both the per-round resource sampling and the allocation counting, the
//! A/B half of the accounting-overhead measurement in EXPERIMENTS.md.
//!
//! Besides the generated `steady`/`surge_shed` workloads (and their
//! `adaptive_steady`/`adaptive_surge_shed` twins, which run the same
//! traces under `--policy adaptive` so the cost of connectivity shaping
//! is directly comparable), a `replayed`
//! scenario feeds the committed golden capture
//! (`tests/goldens/golden.rncap`) through the `richnote-replay` path as
//! fast as possible: a byte-fixed input whose cost numbers move only
//! when the daemon itself changes, never with trace-generation drift.
//! It is skipped (with a warning) when the fixture is absent.

use richnote_obs::rsrc::{set_alloc_counting, CountingAlloc};
use richnote_obs::MetricValue;
use richnote_pubsub::Topic;
use richnote_replay::{replay_into, sanitize_config, ReplayOptions};
use richnote_server::{
    CaptureReader, Client, Log2Histogram, PolicyName, RegistrySnapshot, Server, ServerConfig,
};
use richnote_trace::{TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

/// Allocation accounting covers the whole process, shard workers
/// included, because the daemon under test runs in-process.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Ticks per scenario; virtual-time rounds make each tick one round per
/// shard regardless of wall clock.
const TICKS: u32 = 8;

struct Args {
    out: String,
    baseline: Option<String>,
    quick: bool,
    rsrc: bool,
    seed: u64,
    reps: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_5.json".to_string(),
            baseline: None,
            quick: false,
            rsrc: true,
            seed: 42,
            reps: 3,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: richnote-perf [--out BENCH_5.json] [--baseline PATH] [--quick] \
         [--no-rsrc] [--seed S] [--reps N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--out" => a.out = value("--out"),
            "--baseline" => a.baseline = Some(value("--baseline")),
            "--quick" => a.quick = true,
            "--no-rsrc" => a.rsrc = false,
            "--seed" => {
                a.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --seed");
                    usage()
                })
            }
            "--reps" => {
                a.reps = value("--reps").parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --reps");
                    usage()
                });
                if a.reps == 0 {
                    eprintln!("--reps must be at least 1");
                    usage()
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    a
}

/// Server-side stage latency percentiles, in microseconds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct StagePercentiles {
    select_p50_us: u64,
    select_p95_us: u64,
    select_p99_us: u64,
    round_p50_us: u64,
    round_p95_us: u64,
    round_p99_us: u64,
}

impl StagePercentiles {
    fn from_snapshot(snap: &RegistrySnapshot) -> Self {
        let pcts =
            |h: &Log2Histogram| (h.quantile_us(0.50), h.quantile_us(0.95), h.quantile_us(0.99));
        let select = snap.histogram_merged_where("richnote_stage_duration_us", "stage", "select");
        let round = snap.histogram_merged("richnote_round_duration_us");
        let (select_p50_us, select_p95_us, select_p99_us) = pcts(&select);
        let (round_p50_us, round_p95_us, round_p99_us) = pcts(&round);
        StagePercentiles {
            select_p50_us,
            select_p95_us,
            select_p99_us,
            round_p50_us,
            round_p95_us,
            round_p99_us,
        }
    }
}

/// One scenario's measurements — the unit of baseline comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioResult {
    name: String,
    pubs: u64,
    shed: u64,
    elapsed_secs: f64,
    throughput_pubs_per_sec: f64,
    stage_percentiles: StagePercentiles,
    cpu_us_per_pub: f64,
    allocs_per_pub: f64,
    alloc_bytes_per_pub: f64,
    /// Delivered utility per megabyte, from the daemon's quality cohort
    /// families — lets the report show what the measured throughput
    /// *bought*. `None` when nothing was delivered, and absent from
    /// baselines written before the analytics layer (never gated on).
    utility_per_mb: Option<f64>,
}

/// Utility-per-MB from a merged stats snapshot: total of the
/// `richnote_utility_total` cohort gauges over total delivered megabytes.
fn snapshot_utility_per_mb(snap: &RegistrySnapshot) -> Option<f64> {
    let bytes = snap.counter_total("richnote_delivered_bytes_total");
    if bytes == 0 {
        return None;
    }
    let utility: f64 = snap.family("richnote_utility_total").map_or(0.0, |f| {
        f.series
            .iter()
            .map(|s| match &s.value {
                MetricValue::Gauge(v) => *v,
                _ => 0.0,
            })
            .sum()
    });
    Some(utility / (bytes as f64 / 1e6))
}

/// The whole `BENCH_<n>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    schema: u64,
    bench: u64,
    quick: bool,
    rsrc: bool,
    seed: u64,
    /// Machine-speed score from [`calibration_score`]; `None` in reports
    /// written before the field existed (those compare raw throughput).
    calib_score: Option<f64>,
    scenarios: Vec<ScenarioResult>,
    peak_rss_kb: u64,
}

/// Scores this machine right now: iterations per second of a fixed
/// serial integer kernel, best of three so scheduler preemption (which
/// only ever slows a run) is shaved off. The absolute number is
/// meaningless; the *ratio* between the baseline's score and the
/// checker's score is how much raw-throughput difference the hardware
/// and its current load account for. CPU-time-per-publication needs no
/// such correction — preemption inflates wall time, not thread CPU time
/// — which is why it is the sturdier of the two gates.
fn calibration_score() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..50_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
        best = best.min(started.elapsed().as_secs_f64());
    }
    50_000_000.0 / best.max(1e-9)
}

/// `VmHWM` (peak resident set) from `/proc/self/status`, in KiB; zero
/// where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// The scenario knobs that differ between steady and surge runs.
struct Scenario {
    name: &'static str,
    users: usize,
    days: u64,
    /// Publish the generated trace this many times.
    repeat: usize,
    queue_capacity: usize,
    shards: usize,
    /// Selection policy the daemon runs. The adaptive scenarios measure
    /// the cost of connectivity shaping (EWMA update + Markov prediction
    /// per round) on top of the same workload as their static twins.
    policy: PolicyName,
    /// When set, the scenario ignores the workload knobs above and
    /// replays this wire-level capture as fast as possible instead —
    /// fixed, committed input, so its numbers track daemon-side cost
    /// changes without trace-generation noise.
    capture: Option<String>,
}

/// Finds the committed golden capture relative to this crate (works from
/// any working directory) with a cwd-relative fallback for a relocated
/// binary run from the repo root.
fn golden_capture_path() -> Option<String> {
    let compiled = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens/golden.rncap");
    for candidate in [compiled, "tests/goldens/golden.rncap"] {
        if std::path::Path::new(candidate).exists() {
            return Some(candidate.to_string());
        }
    }
    None
}

impl Scenario {
    fn all(quick: bool) -> Vec<Scenario> {
        // Quick halves the workload rather than gutting it: sub-second
        // scenario runs swing >15% on a noisy host, which would make the
        // CI regression gate cry wolf.
        let scale = if quick { 2 } else { 4 };
        let mut scenarios = vec![
            // Steady state: a roomy queue absorbs everything; measures the
            // selection hot path.
            Scenario {
                name: "steady",
                users: 400 * scale,
                days: 1,
                repeat: 2 * scale,
                queue_capacity: 1 << 20,
                shards: 2,
                policy: PolicyName::RichNote,
                capture: None,
            },
            // Surge: the whole trace bursts into a queue a fraction of its
            // size, exercising eviction/shedding under pressure.
            Scenario {
                name: "surge_shed",
                users: 200 * scale,
                days: 1,
                repeat: 2 * scale,
                queue_capacity: 512,
                shards: 2,
                policy: PolicyName::RichNote,
                capture: None,
            },
            // The steady workload under the adaptive policy: the delta vs
            // `steady` is the per-round price of connectivity shaping
            // (EWMA throughput update + Markov next-state prediction +
            // grant/level clamping) plus the boxed-policy dispatch the
            // non-default policies pay.
            Scenario {
                name: "adaptive_steady",
                users: 400 * scale,
                days: 1,
                repeat: 2 * scale,
                queue_capacity: 1 << 20,
                shards: 2,
                policy: PolicyName::Adaptive,
                capture: None,
            },
            // Adaptive under shedding pressure: shaping must not slow the
            // eviction path.
            Scenario {
                name: "adaptive_surge_shed",
                users: 200 * scale,
                days: 1,
                repeat: 2 * scale,
                queue_capacity: 512,
                shards: 2,
                policy: PolicyName::Adaptive,
                capture: None,
            },
        ];
        // Replayed: the committed golden capture fed through the replay
        // path. Same workload in quick and full mode — the capture *is*
        // the workload.
        match golden_capture_path() {
            Some(capture) => scenarios.push(Scenario {
                name: "replayed",
                users: 0,
                days: 0,
                repeat: 0,
                queue_capacity: 0,
                shards: 0,
                policy: PolicyName::RichNote,
                capture: Some(capture),
            }),
            None => eprintln!(
                "richnote-perf: tests/goldens/golden.rncap not found; skipping the \
                 replayed scenario"
            ),
        }
        scenarios
    }

    /// Runs the scenario against a fresh in-process daemon and measures.
    fn run(&self, seed: u64, rsrc: bool) -> Result<ScenarioResult, String> {
        if let Some(capture) = &self.capture {
            return self.run_replay(capture, rsrc);
        }
        let cfg = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .shards(self.shards)
            .queue_capacity(self.queue_capacity)
            .policy(self.policy)
            .rsrc_enabled(rsrc)
            .build()
            .map_err(|e| format!("config: {e}"))?;
        let (addr, handle) = Server::spawn(cfg).map_err(|e| format!("spawn: {e}"))?;
        let mut client = Client::builder(addr).connect().map_err(|e| format!("connect: {e}"))?;

        let trace = TraceGenerator::new(TraceConfig {
            seed,
            n_users: self.users,
            days: self.days,
            ..TraceConfig::default()
        })
        .generate();
        for item in &trace.items {
            client
                .subscribe(item.recipient, Topic::FriendFeed(item.recipient))
                .map_err(|e| format!("subscribe: {e}"))?;
        }

        // The measured region: offered load, interleaved rounds, drain.
        let started = Instant::now();
        let mut pubs = 0u64;
        for rep in 0..self.repeat {
            for item in &trace.items {
                let topic = Topic::FriendFeed(item.recipient);
                client.publish(topic, item.clone()).map_err(|e| format!("publish: {e}"))?;
                pubs += 1;
            }
            // Interleave rounds with ingest so queues drain realistically
            // (and the surge scenario keeps re-filling its small queue).
            let _ = rep;
            client.tick(1).map_err(|e| format!("tick: {e}"))?;
        }
        client.sync().map_err(|e| format!("sync: {e}"))?;
        client.tick(TICKS).map_err(|e| format!("tick: {e}"))?;
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);

        let snap = client.stats().map_err(|e| format!("stats: {e}"))?.snapshot;
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        handle.join().map_err(|_| "server thread panicked".to_string())?;

        let per_pub = |total: u64| if pubs == 0 { 0.0 } else { total as f64 / pubs as f64 };
        Ok(ScenarioResult {
            name: self.name.to_string(),
            pubs,
            shed: snap.counter_total("richnote_queue_dropped_total"),
            elapsed_secs: elapsed,
            throughput_pubs_per_sec: pubs as f64 / elapsed,
            stage_percentiles: StagePercentiles::from_snapshot(&snap),
            cpu_us_per_pub: per_pub(snap.counter_total("richnote_cpu_us_total")),
            allocs_per_pub: per_pub(snap.counter_total("richnote_allocs_total")),
            alloc_bytes_per_pub: per_pub(snap.counter_total("richnote_alloc_bytes_total")),
            utility_per_mb: snapshot_utility_per_mb(&snap),
        })
    }

    /// Replays the committed capture into a fresh daemon as fast as
    /// possible and measures the daemon-side cost of the replayed load.
    fn run_replay(&self, capture: &str, rsrc: bool) -> Result<ScenarioResult, String> {
        let (header, records) =
            CaptureReader::read_all(capture).map_err(|e| format!("capture: {e}"))?;
        let mut cfg = sanitize_config(header.config);
        cfg.rsrc.enabled = rsrc;
        let (addr, handle) = Server::spawn(cfg).map_err(|e| format!("spawn: {e}"))?;

        let started = Instant::now();
        let opts = ReplayOptions { as_fast_as_possible: true, ..ReplayOptions::default() };
        replay_into(addr, capture, &records, opts).map_err(|e| format!("replay: {e}"))?;
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);

        let mut client = Client::builder(addr).connect().map_err(|e| format!("connect: {e}"))?;
        let snap = client.stats().map_err(|e| format!("stats: {e}"))?.snapshot;
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        handle.join().map_err(|_| "server thread panicked".to_string())?;

        let pubs = snap.counter_total("richnote_pubs_total");
        let per_pub = |total: u64| if pubs == 0 { 0.0 } else { total as f64 / pubs as f64 };
        Ok(ScenarioResult {
            name: self.name.to_string(),
            pubs,
            shed: snap.counter_total("richnote_queue_dropped_total"),
            elapsed_secs: elapsed,
            throughput_pubs_per_sec: pubs as f64 / elapsed,
            stage_percentiles: StagePercentiles::from_snapshot(&snap),
            cpu_us_per_pub: per_pub(snap.counter_total("richnote_cpu_us_total")),
            allocs_per_pub: per_pub(snap.counter_total("richnote_allocs_total")),
            alloc_bytes_per_pub: per_pub(snap.counter_total("richnote_alloc_bytes_total")),
            utility_per_mb: snapshot_utility_per_mb(&snap),
        })
    }
}

/// Maximum tolerated throughput loss vs the baseline (fraction).
const MAX_THROUGHPUT_LOSS: f64 = 0.15;
/// Maximum tolerated CPU-time-per-publication growth vs the baseline.
const MAX_CPU_GROWTH: f64 = 0.25;
/// Absolute ceiling on shard-thread allocations per publication in the
/// steady scenario. The binary-codec + scratch-reuse work brought this
/// to ~0; the gate keeps any future per-publication allocation from
/// creeping back onto the hot path unnoticed. Steady-only: surge sheds
/// (drop bookkeeping) and replay (socket feeding) allocate by design.
const MAX_ALLOCS_PER_PUB: f64 = 1.0;

/// Compares `new` against `base`, returning every regression found.
/// Noise-aware: a metric is only judged when the baseline measured
/// something (nonzero) — a baseline produced without resource accounting
/// (`--no-rsrc`) never fails the CPU gate — and when both reports carry
/// a calibration score, the throughput floor is rescaled by the machine-
/// speed ratio so a slower runner is not mistaken for a slower daemon.
fn regressions(base: &BenchReport, new: &BenchReport) -> Vec<String> {
    let mut out = Vec::new();
    if base.quick != new.quick {
        out.push(format!(
            "baseline was a quick={} run, this is quick={} — not comparable, \
             refusing to judge (regenerate the baseline)",
            base.quick, new.quick
        ));
        return out;
    }
    let speed_ratio = match (base.calib_score, new.calib_score) {
        (Some(b), Some(n)) if b > 0.0 && n > 0.0 => n / b,
        _ => 1.0,
    };
    for n in &new.scenarios {
        let Some(b) = base.scenarios.iter().find(|s| s.name == n.name) else {
            continue;
        };
        if b.throughput_pubs_per_sec > 0.0 {
            let expected = b.throughput_pubs_per_sec * speed_ratio;
            let floor = expected * (1.0 - MAX_THROUGHPUT_LOSS);
            if n.throughput_pubs_per_sec < floor {
                out.push(format!(
                    "{}: throughput {:.0} pubs/s < {:.0} (baseline {:.0} × {:.2} machine-speed \
                     ratio, -{:.0}% allowed)",
                    n.name,
                    n.throughput_pubs_per_sec,
                    floor,
                    b.throughput_pubs_per_sec,
                    speed_ratio,
                    MAX_THROUGHPUT_LOSS * 100.0
                ));
            }
        }
        if b.cpu_us_per_pub > 0.0 && n.cpu_us_per_pub > 0.0 {
            let ceiling = b.cpu_us_per_pub * (1.0 + MAX_CPU_GROWTH);
            if n.cpu_us_per_pub > ceiling {
                out.push(format!(
                    "{}: cpu {:.2} µs/pub > {:.2} (baseline {:.2}, +{:.0}% allowed)",
                    n.name,
                    n.cpu_us_per_pub,
                    ceiling,
                    b.cpu_us_per_pub,
                    MAX_CPU_GROWTH * 100.0
                ));
            }
        }
        // Absolute (not baseline-relative) gate: the steady hot path must
        // stay allocation-free. Only judged when allocation accounting ran
        // in this report, so `--no-rsrc` A/B runs are never misjudged.
        if n.name == "steady" && new.rsrc && n.allocs_per_pub > MAX_ALLOCS_PER_PUB {
            out.push(format!(
                "{}: {:.2} allocs/pub > {:.1} absolute ceiling (hot-path allocation crept back)",
                n.name, n.allocs_per_pub, MAX_ALLOCS_PER_PUB
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    if !args.rsrc {
        set_alloc_counting(false);
    }

    // Read the baseline BEFORE overwriting --out with the new report.
    let baseline_path = args.baseline.clone().unwrap_or_else(|| args.out.clone());
    let baseline: Option<BenchReport> =
        std::fs::read_to_string(&baseline_path).ok().and_then(|s| serde_json::from_str(&s).ok());

    let calib = calibration_score();
    eprintln!("richnote-perf: machine calibration {:.0} ops/s", calib);

    let mut scenarios = Vec::new();
    for sc in Scenario::all(args.quick) {
        eprintln!("richnote-perf: running {} ({} reps) ...", sc.name, args.reps);
        // Median-of-N, not best-of-N: the fastest rep is set by luck (in
        // surge_shed even the amount of work done varies with shed
        // timing), so a lucky baseline rep would be unreachable by an
        // ordinary checking run and the gate would cry wolf. Medians are
        // robust to outliers in both directions and stay comparable when
        // the baseline and the checker use different rep counts.
        let mut reps = Vec::with_capacity(args.reps);
        for rep in 0..args.reps {
            match sc.run(args.seed, args.rsrc) {
                Ok(r) => {
                    eprintln!(
                        "  {} rep {}: {} pubs in {:.2}s = {:.0} pubs/s | cpu {:.2} µs/pub | \
                         {:.1} allocs/pub | shed {} | {} U/MB",
                        r.name,
                        rep,
                        r.pubs,
                        r.elapsed_secs,
                        r.throughput_pubs_per_sec,
                        r.cpu_us_per_pub,
                        r.allocs_per_pub,
                        r.shed,
                        r.utility_per_mb.map_or("-".to_string(), |u| format!("{u:.3}")),
                    );
                    reps.push(r);
                }
                Err(e) => {
                    eprintln!("richnote-perf: scenario {} failed: {e}", sc.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        reps.sort_by(|a, b| a.throughput_pubs_per_sec.total_cmp(&b.throughput_pubs_per_sec));
        let mut median = reps[reps.len() / 2].clone();
        let mut cpus: Vec<f64> = reps.iter().map(|r| r.cpu_us_per_pub).collect();
        cpus.sort_by(f64::total_cmp);
        median.cpu_us_per_pub = cpus[cpus.len() / 2];
        scenarios.push(median);
    }

    let report = BenchReport {
        schema: 1,
        bench: 5,
        quick: args.quick,
        rsrc: args.rsrc,
        seed: args.seed,
        calib_score: Some(calib),
        scenarios,
        peak_rss_kb: peak_rss_kb(),
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("richnote-perf: serialize: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("richnote-perf: write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("richnote-perf: wrote {} (peak RSS {} KiB)", args.out, report.peak_rss_kb);

    match baseline {
        None => {
            eprintln!("richnote-perf: no baseline at {baseline_path}; nothing to compare");
            ExitCode::SUCCESS
        }
        Some(base) => {
            let found = regressions(&base, &report);
            if found.is_empty() {
                eprintln!("richnote-perf: no regression vs {baseline_path}");
                ExitCode::SUCCESS
            } else {
                for r in &found {
                    eprintln!("richnote-perf: REGRESSION {r}");
                }
                ExitCode::FAILURE
            }
        }
    }
}
