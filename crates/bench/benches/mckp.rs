//! MCKP kernel benchmarks: the paper's greedy `SelectPresentations`
//! (Algorithm 1, `O(n + K log n)`) vs the fractional relaxation and the
//! exact DP, plus the greedy's scaling in the number of queued items.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_bench::mckp_fixture;
use richnote_core::mckp::{
    select_exact, select_fractional, select_greedy, select_greedy_with, GreedyOptions,
};
use richnote_core::mckp2::{select_greedy2, EnergyProfile};

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mckp_greedy_scaling");
    for n in [10usize, 100, 1_000, 10_000] {
        let items = mckp_fixture(n);
        // Budget sized so roughly half the demand fits.
        let budget = (n as u64) * 400_000;
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| select_greedy(black_box(items), black_box(budget)))
        });
    }
    group.finish();
}

fn bench_solver_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("mckp_solvers");
    let items = mckp_fixture(200);
    let budget = 40_000_000u64;
    group.bench_function("greedy_paper", |b| {
        b.iter(|| select_greedy(black_box(&items), black_box(budget)))
    });
    group.bench_function("greedy_continue", |b| {
        b.iter(|| {
            select_greedy_with(
                black_box(&items),
                black_box(budget),
                GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
            )
        })
    });
    group.bench_function("fractional", |b| {
        b.iter(|| select_fractional(black_box(&items), black_box(budget)))
    });
    // The two-constraint (data + energy) variant of Eq. 2.
    let energy: Vec<EnergyProfile> = items
        .iter()
        .map(|it| {
            EnergyProfile::from_item(it, |s| if s == 0 { 0.0 } else { 3.5 + s as f64 * 2.5e-5 })
        })
        .collect();
    group.bench_function("greedy_two_constraint", |b| {
        b.iter(|| {
            select_greedy2(
                black_box(&items),
                black_box(&energy),
                black_box(budget),
                black_box(5_000.0),
            )
        })
    });
    group.finish();
}

fn bench_exact_small(c: &mut Criterion) {
    // The DP is O(n · budget); keep it tiny.
    let mut items = mckp_fixture(12);
    // Rescale sizes down so the DP table stays small.
    items = items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let levels: Vec<(u64, f64)> = item
                .levels()
                .iter()
                .skip(1)
                .enumerate()
                // Offset by the level index so the scaled-down metadata
                // level keeps a nonzero, strictly increasing size.
                .map(|(lvl, &(s, u))| (s / 10_000 + lvl as u64 + 1, u))
                .collect();
            richnote_core::mckp::MckpItem::new(i, levels)
        })
        .collect();
    c.bench_function("mckp_exact_dp_small", |b| {
        b.iter(|| select_exact(black_box(&items), black_box(500)))
    });
}

criterion_group!(benches, bench_greedy_scaling, bench_solver_comparison, bench_exact_small);
criterion_main!(benches);
