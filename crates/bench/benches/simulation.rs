//! End-to-end simulation benchmarks: a full 168-round week for one user
//! and a small population, per policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_sim::simulator::{constant_utility, PolicyKind, PopulationSim, SimulationConfig};
use richnote_trace::generator::{Trace, TraceConfig, TraceGenerator};
use std::sync::Arc;

fn trace() -> Arc<Trace> {
    Arc::new(
        TraceGenerator::new(TraceConfig {
            n_users: 60,
            days: 7,
            mean_notifications_per_user_day: 30.0,
            ..TraceConfig::default()
        })
        .generate(),
    )
}

fn bench_week(c: &mut Criterion) {
    let trace = trace();
    let users = trace.top_users(20);
    let mut group = c.benchmark_group("simulate_week_20_users");
    group.sample_size(10);
    for policy in [
        PolicyKind::richnote_default(),
        PolicyKind::Fifo { level: 3 },
        PolicyKind::Util { level: 3 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                let sim = PopulationSim::new(
                    trace.clone(),
                    constant_utility(0.6),
                    SimulationConfig::weekly(policy, 20),
                );
                b.iter(|| black_box(sim.run(&users)))
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use richnote_sim::events::EventQueue;
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-shuffled times in increasing-safe order.
                q.schedule(((i * 2_654_435_761) % 1_000_000) as f64, i);
            }
            let mut sum = 0u64;
            while let Some(s) = q.pop() {
                sum = sum.wrapping_add(s.event);
            }
            black_box(sum)
        })
    });
}

criterion_group!(benches, bench_week, bench_event_queue);
criterion_main!(benches);
