//! Pub/sub matching throughput: publications fanned out to subscribers
//! under real-time and batch modes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_core::ids::UserId;
use richnote_pubsub::broker::{Broker, DeliveryMode};
use richnote_pubsub::topic::{Publication, Topic};

fn subscribed_broker(subscribers: usize, realtime: bool) -> Broker<u64> {
    let mut b = Broker::new();
    let topic = Topic::FriendFeed(UserId::new(0));
    for u in 0..subscribers as u64 {
        let mode = if realtime {
            DeliveryMode::Realtime
        } else {
            DeliveryMode::Rounds { round_secs: 3_600.0 }
        };
        b.subscribe_with_mode(UserId::new(u + 1), topic, mode);
    }
    b
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("pubsub_publish");
    for subs in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("realtime", subs), &subs, |bench, &subs| {
            let broker = subscribed_broker(subs, true);
            bench.iter_batched(
                || broker.clone(),
                |mut b| {
                    black_box(b.publish(Publication::new(
                        Topic::FriendFeed(UserId::new(0)),
                        7,
                        0.0,
                    )))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    c.bench_function("pubsub_flush_1000_buffered", |b| {
        b.iter_batched(
            || {
                let mut broker = subscribed_broker(100, false);
                for i in 0..10 {
                    broker.publish(Publication::new(Topic::FriendFeed(UserId::new(0)), i, 0.0));
                }
                broker
            },
            |mut broker| black_box(broker.flush(3_600.0)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_publish, bench_flush);
criterion_main!(benches);
