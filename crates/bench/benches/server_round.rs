//! The `richnote-server` shard round-loop hot path — broker match, shard
//! placement, scheduler ingest, and one MCKP round across every user — at
//! 1k/10k/100k registered users.
//!
//! The timed closure does exactly what the daemon does between two `Tick`
//! frames for a fixed publication batch: match each publication against the
//! subscription table, hash the subscriber onto its shard, enqueue on that
//! user's scheduler, then run one round on every shard. User count scales
//! the subscription table, the per-shard `BTreeMap` walk, and the idle-user
//! overhead of the round loop; the batch size is held constant so numbers
//! are comparable across scales.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_core::content::{ContentFeatures, ContentItem, ContentKind, Interaction, SocialTie};
use richnote_core::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
use richnote_pubsub::{Broker, DeliveryMode, Publication, Topic};
use richnote_server::{shard_of, ServerConfig, ShardState};
use std::time::Instant;

const SHARDS: usize = 4;
/// Publications matched + ingested per measured round.
const BATCH: u64 = 512;

fn item(id: u64, recipient: u64) -> ContentItem {
    ContentItem {
        id: ContentId::new(id),
        recipient: UserId::new(recipient),
        sender: None,
        kind: ContentKind::FriendFeed,
        track: TrackId::new(id),
        album: AlbumId::new(id % 97),
        artist: ArtistId::new(id % 31),
        arrival: 0.0,
        track_secs: 240.0,
        features: ContentFeatures {
            tie: SocialTie::Mutual,
            track_popularity: 0.2 + 0.6 * ((id * 37) % 101) as f64 / 101.0,
            album_popularity: 0.5,
            artist_popularity: 0.6,
            weekend: false,
            night: false,
        },
        interaction: Interaction::NoActivity,
    }
}

/// A subscription table with every user on its own friend feed, plus the
/// shard states that will own them. Every user gets scheduler state up
/// front (one warm-up item, drained by a warm-up round), so the measured
/// round loop walks the full population the way a long-running daemon
/// would, instead of only the users the batch happens to touch.
fn build(n_users: u64) -> (Broker<ContentItem>, Vec<ShardState>) {
    let mut broker = Broker::new();
    let mut shards: Vec<ShardState> =
        (0..SHARDS).map(|s| ShardState::new(s, ServerConfig::default())).collect();
    let t0 = Instant::now();
    for uid in 0..n_users {
        let user = UserId::new(uid);
        broker.subscribe_with_mode(user, Topic::FriendFeed(user), DeliveryMode::Realtime);
        shards[shard_of(user, SHARDS)].ingest(user, item(u64::MAX - uid, uid), t0, None);
    }
    for shard in &mut shards {
        shard.run_round();
    }
    (broker, shards)
}

fn bench_server_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_round");
    for n_users in [1_000u64, 10_000, 100_000] {
        let (mut broker, mut shards) = build(n_users);
        let mut next_id = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n_users), &n_users, |b, &n| {
            b.iter(|| {
                let t0 = Instant::now();
                // Ingest + match: one publication per target user, spread
                // over the population so every shard sees work.
                for k in 0..BATCH {
                    let recipient = (k * n / BATCH) % n;
                    let id = next_id;
                    next_id += 1;
                    let publication = Publication::new(
                        Topic::FriendFeed(UserId::new(recipient)),
                        item(id, recipient),
                        0.0,
                    );
                    for d in broker.publish(publication) {
                        let shard = shard_of(d.subscriber, SHARDS);
                        shards[shard].ingest(d.subscriber, d.payload, t0, None);
                    }
                }
                // Select: one round on every shard.
                let mut selected = 0usize;
                for shard in &mut shards {
                    selected += shard.run_round().selected.len();
                }
                black_box(selected)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server_round);
criterion_main!(benches);
