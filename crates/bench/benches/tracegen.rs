//! Trace-generation throughput: social graph, catalog and per-user
//! notification streams.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_trace::generator::{TraceConfig, TraceGenerator};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generate");
    group.sample_size(10);
    for n_users in [100usize, 500] {
        let cfg = TraceConfig { n_users, days: 7, ..TraceConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n_users), &cfg, |b, cfg| {
            b.iter(|| TraceGenerator::new(*black_box(cfg)).generate())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
