//! One full RichNote scheduler round (enqueue + adjusted utilities + MCKP +
//! delivery bookkeeping) at several backlog sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use richnote_core::content::{ContentFeatures, ContentItem, ContentKind, Interaction};
use richnote_core::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
use richnote_core::presentation::AudioPresentationSpec;
use richnote_core::scheduler::{
    LinearCost, NotificationScheduler, QueuedNotification, RichNoteScheduler, RoundContext,
};

fn notification(id: u64) -> QueuedNotification {
    QueuedNotification {
        item: ContentItem {
            id: ContentId::new(id),
            recipient: UserId::new(1),
            sender: None,
            kind: ContentKind::FriendFeed,
            track: TrackId::new(id),
            album: AlbumId::new(id),
            artist: ArtistId::new(id),
            arrival: 0.0,
            track_secs: 276.0,
            features: ContentFeatures::default(),
            interaction: Interaction::Hovered,
        },
        ladder: std::sync::Arc::new(AudioPresentationSpec::paper_default().ladder()),
        content_utility: 0.1 + 0.8 * ((id * 37) % 101) as f64 / 101.0,
        enqueued_at: 0.0,
    }
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("richnote_round");
    let cost = LinearCost { fixed: 3.5, per_byte: 2.5e-5 };
    for backlog in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(backlog), &backlog, |b, &n| {
            b.iter_batched(
                || {
                    let mut s = RichNoteScheduler::builder().build();
                    for i in 0..n as u64 {
                        s.enqueue(notification(i));
                    }
                    s
                },
                |mut s| {
                    let ctx = RoundContext::builder(&cost)
                        .now(3_600.0)
                        .data_grant((n as u64) * 50_000)
                        .energy_grant(3_000.0)
                        .build();
                    black_box(s.run_round(&ctx))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
