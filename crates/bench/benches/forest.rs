//! Random-forest training and prediction throughput on trace-shaped data.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use richnote_forest::dataset::Dataset;
use richnote_forest::forest::{RandomForest, RandomForestConfig};
use richnote_trace::generator::{classifier_rows, TraceConfig, TraceGenerator};

fn training_data() -> Dataset {
    let trace =
        TraceGenerator::new(TraceConfig { n_users: 150, days: 3, ..TraceConfig::default() })
            .generate();
    let (rows, labels) = classifier_rows(&trace.items);
    Dataset::new(rows, labels).expect("trace produces rows")
}

fn bench_fit(c: &mut Criterion) {
    let data = training_data();
    let cfg = RandomForestConfig { n_trees: 20, ..RandomForestConfig::default() };
    c.bench_function("forest_fit_20_trees", |b| {
        b.iter(|| RandomForest::fit(black_box(&data), &cfg, 7))
    });
}

fn bench_predict(c: &mut Criterion) {
    let data = training_data();
    let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
    let row: Vec<f64> = data.row(0).to_vec();
    c.bench_function("forest_predict_proba", |b| b.iter(|| forest.predict_proba(black_box(&row))));
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
