//! # richnote-forest
//!
//! A from-scratch Random Forest classifier — the substrate RichNote uses to
//! model **content utility** (Sec. V-A of the paper, where the authors used
//! Weka's Random Forest on Spotify click/hover data).
//!
//! The crate provides:
//!
//! * [`dataset::Dataset`] — a dense feature matrix with binary labels;
//! * [`tree::DecisionTree`] — CART trees with Gini-impurity splits,
//!   depth/size regularization and per-split feature subsampling;
//! * [`forest::RandomForest`] — bootstrap-aggregated trees whose vote
//!   fraction doubles as the confidence score `Pr(x_i)` that becomes the
//!   content utility `Uc(i)`;
//! * [`metrics`] — confusion matrices, precision/recall/accuracy/F1;
//! * [`cv`] — k-fold cross-validation, mirroring the paper's five-fold
//!   protocol (reported: precision 0.700, accuracy 0.689).
//!
//! # Example
//!
//! ```
//! use richnote_forest::dataset::Dataset;
//! use richnote_forest::forest::{RandomForest, RandomForestConfig};
//!
//! // A linearly separable toy problem.
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
//! let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
//! let data = Dataset::new(rows, labels)?;
//! let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 42);
//! assert!(forest.predict_proba(&[0.9]) > 0.5);
//! assert!(forest.predict_proba(&[0.1]) < 0.5);
//! # Ok::<(), richnote_forest::dataset::DatasetError>(())
//! ```

pub mod analysis;
pub mod calibration;
pub mod cv;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod tree;

pub use analysis::{forest_roc, permutation_importance, FeatureImportance, RocCurve};
pub use calibration::{calibration, forest_calibration, CalibrationReport};
pub use cv::{cross_validate, CrossValidation};
pub use dataset::{Dataset, DatasetError};
pub use forest::{RandomForest, RandomForestConfig};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use tree::{DecisionTree, TreeConfig};
