//! Probability calibration diagnostics.
//!
//! RichNote consumes the classifier's confidence directly as the content
//! utility `Uc(i)` (Sec. V-A) — so the *calibration* of those confidences
//! matters as much as their ranking: a forest that says "0.7" should be
//! right about 70% of the time. This module provides reliability diagrams
//! (binned predicted-vs-observed frequencies), the Brier score, and the
//! expected calibration error (ECE).

use crate::dataset::Dataset;
use crate::forest::RandomForest;
use serde::{Deserialize, Serialize};

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Lower edge of the predicted-probability bin.
    pub lo: f64,
    /// Upper edge.
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability.
    pub mean_predicted: f64,
    /// Observed positive frequency.
    pub observed: f64,
}

/// Calibration diagnostics for a set of probabilistic predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Reliability bins (equal-width over `[0, 1]`).
    pub bins: Vec<ReliabilityBin>,
    /// Brier score: mean squared error of the probabilities (lower is
    /// better; 0.25 is the score of always predicting 0.5).
    pub brier: f64,
    /// Expected calibration error: count-weighted mean |predicted −
    /// observed| over non-empty bins.
    pub ece: f64,
}

/// Computes calibration diagnostics from parallel score/label slices.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `n_bins == 0`.
pub fn calibration(scores: &[f64], labels: &[bool], n_bins: usize) -> CalibrationReport {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "need at least one prediction");
    assert!(n_bins > 0, "need at least one bin");

    let mut sum_pred = vec![0.0f64; n_bins];
    let mut sum_pos = vec![0usize; n_bins];
    let mut counts = vec![0usize; n_bins];
    let mut brier = 0.0f64;

    for (&p, &y) in scores.iter().zip(labels) {
        let clamped = p.clamp(0.0, 1.0);
        let idx = ((clamped * n_bins as f64) as usize).min(n_bins - 1);
        counts[idx] += 1;
        sum_pred[idx] += clamped;
        if y {
            sum_pos[idx] += 1;
        }
        let target = if y { 1.0 } else { 0.0 };
        brier += (clamped - target).powi(2);
    }
    brier /= scores.len() as f64;

    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0f64;
    for i in 0..n_bins {
        let lo = i as f64 / n_bins as f64;
        let hi = (i + 1) as f64 / n_bins as f64;
        let (mean_predicted, observed) = if counts[i] > 0 {
            (sum_pred[i] / counts[i] as f64, sum_pos[i] as f64 / counts[i] as f64)
        } else {
            (0.0, 0.0)
        };
        if counts[i] > 0 {
            ece += counts[i] as f64 / scores.len() as f64 * (mean_predicted - observed).abs();
        }
        bins.push(ReliabilityBin { lo, hi, count: counts[i], mean_predicted, observed });
    }

    CalibrationReport { bins, brier, ece }
}

/// Calibration of a trained forest over a dataset.
pub fn forest_calibration(
    forest: &RandomForest,
    data: &Dataset,
    n_bins: usize,
) -> CalibrationReport {
    let scores: Vec<f64> = (0..data.len()).map(|i| forest.predict_proba(data.row(i))).collect();
    calibration(&scores, data.labels(), n_bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;

    #[test]
    fn perfectly_calibrated_scores_have_zero_ece() {
        // Predictions exactly matching frequencies: 1000 samples at p = 0.3
        // with 30% positives (deterministically interleaved).
        let scores = vec![0.3; 1000];
        let labels: Vec<bool> = (0..1000).map(|i| i % 10 < 3).collect();
        let r = calibration(&scores, &labels, 10);
        assert!(r.ece < 1e-9, "ece {}", r.ece);
        // Brier = p(1−p) for a calibrated constant predictor.
        assert!((r.brier - 0.21).abs() < 1e-9);
    }

    #[test]
    fn overconfident_scores_have_high_ece() {
        // Predicting 0.95 for a 50/50 outcome.
        let scores = vec![0.95; 400];
        let labels: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let r = calibration(&scores, &labels, 10);
        assert!((r.ece - 0.45).abs() < 1e-9, "ece {}", r.ece);
        assert!(r.brier > 0.25);
    }

    #[test]
    fn bins_partition_the_unit_interval() {
        let scores = vec![0.05, 0.55, 0.95, 1.0, 0.0];
        let labels = vec![false, true, true, true, false];
        let r = calibration(&scores, &labels, 10);
        assert_eq!(r.bins.len(), 10);
        let total: usize = r.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        assert_eq!(r.bins[9].count, 2, "p=0.95 and p=1.0 share the top bin");
    }

    #[test]
    fn forest_is_reasonably_calibrated_on_held_out_data() {
        // y = x > 0.5 with 20% label noise: the achievable Brier floor is
        // 0.2·0.8 = 0.16. Calibration must be measured on *held-out* data —
        // on the training set the trees memorize the noise and look
        // overconfident.
        let make = |offset: usize, n: usize| {
            let rows: Vec<Vec<f64>> =
                (0..n).map(|i| vec![((offset + i * 7) % 1000) as f64 / 1000.0]).collect();
            let labels: Vec<bool> = (0..n)
                .map(|i| {
                    let x = ((offset + i * 7) % 1000) as f64 / 1000.0;
                    let flip = ((offset + i) as u64 * 2_654_435_761) % 10 < 2;
                    (x > 0.5) ^ flip
                })
                .collect();
            Dataset::new(rows, labels).unwrap()
        };
        let train = make(0, 2_000);
        let test = make(3, 1_000);
        let forest = RandomForest::fit(&train, &RandomForestConfig::default(), 11);
        let r = forest_calibration(&forest, &test, 10);
        assert!(r.brier < 0.24, "brier {}", r.brier);
        assert!(r.ece < 0.15, "ece {}", r.ece);
        // And the training-set view is visibly more confident than honest.
        let on_train = forest_calibration(&forest, &train, 10);
        assert!(on_train.ece >= r.ece * 0.5, "train ece {} vs test {}", on_train.ece, r.ece);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = calibration(&[0.5], &[true, false], 10);
    }

    #[test]
    #[should_panic(expected = "at least one prediction")]
    fn empty_inputs_panic() {
        let _ = calibration(&[], &[], 10);
    }
}
