//! Dense feature matrix with binary labels.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The dataset has no rows.
    Empty,
    /// Row `row` has `found` features but the first row had `expected`.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// Labels and rows differ in length.
    LabelMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::RaggedRow { row, expected, found } => {
                write!(f, "row {row} has {found} features, expected {expected}")
            }
            DatasetError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
        }
    }
}

impl Error for DatasetError {}

/// A dense dataset: `n` rows × `d` features, binary labels.
///
/// Rows are stored contiguously for cache-friendly splitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f64>,
    labels: Vec<bool>,
    n_features: usize,
}

impl Dataset {
    /// Creates a dataset from per-row feature vectors and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the input is empty, ragged, or labels
    /// and rows differ in count.
    pub fn new(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LabelMismatch { rows: rows.len(), labels: labels.len() });
        }
        let n_features = rows[0].len();
        let mut features = Vec::with_capacity(rows.len() * n_features);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    expected: n_features,
                    found: row.len(),
                });
            }
            features.extend_from_slice(row);
        }
        Ok(Self { features, labels, n_features })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature vector of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The label of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }

    /// Builds a new dataset from a subset of row indices (rows may repeat,
    /// enabling bootstrap samples).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset { features, labels, n_features: self.n_features }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]], vec![true, false, true])
            .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let d = small();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert!(!d.label(1));
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
    }

    #[test]
    fn ragged_is_rejected() {
        let err = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).unwrap_err();
        assert_eq!(err, DatasetError::RaggedRow { row: 1, expected: 1, found: 2 });
    }

    #[test]
    fn label_mismatch_is_rejected() {
        let err = Dataset::new(vec![vec![1.0]], vec![true, false]).unwrap_err();
        assert_eq!(err, DatasetError::LabelMismatch { rows: 1, labels: 2 });
    }

    #[test]
    fn positive_rate() {
        assert!((small().positive_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn subset_allows_repeats() {
        let d = small();
        let s = d.subset(&[0, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), s.row(1));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        assert!(s.label(2));
    }
}
