//! CART decision trees with Gini-impurity splits.
//!
//! Trees are grown recursively: at each node a random subset of features is
//! considered (the random-forest decorrelation trick of Breiman 2001), the
//! best threshold per feature is found by a sort-and-scan over the node's
//! rows, and the split minimizing weighted Gini impurity is applied. Leaves
//! store the positive-class fraction, so a single tree already produces
//! probabilities.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for growing one tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum rows in each child for a split to be admissible.
    pub min_samples_leaf: usize,
    /// Number of features sampled per split; `None` means `√d` (the usual
    /// random-forest default).
    pub max_features: Option<usize>,
    /// Weight of positive-class rows in the impurity criterion and leaf
    /// probabilities (negative rows weigh 1). Values above 1 bias the tree
    /// toward recall on the positive class — useful when clicks are the
    /// rare class.
    pub positive_weight: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            positive_weight: 1.0,
        }
    }
}

/// A grown tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Fraction of positive training rows that reached this leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Rows with `x[feature] <= threshold` go left.
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A single CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

/// Gini impurity of a node with `pos` positives out of `n` rows.
fn gini(pos: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

struct Grower<'a, R: Rng> {
    data: &'a Dataset,
    cfg: &'a TreeConfig,
    rng: &'a mut R,
    n_feature_candidates: usize,
}

impl<R: Rng> Grower<'_, R> {
    /// Weighted count of a row (positives weigh `positive_weight`).
    fn weight(&self, i: usize) -> f64 {
        if self.data.label(i) {
            self.cfg.positive_weight
        } else {
            1.0
        }
    }

    fn grow(&mut self, indices: &mut [usize], depth: usize) -> Node {
        let n = indices.len();
        let pos = indices.iter().filter(|&&i| self.data.label(i)).count();
        let pos_w = pos as f64 * self.cfg.positive_weight;
        let total_w = pos_w + (n - pos) as f64;
        let prob = if total_w == 0.0 { 0.0 } else { pos_w / total_w };

        let pure = pos == 0 || pos == n;
        if pure || depth >= self.cfg.max_depth || n < self.cfg.min_samples_split {
            return Node::Leaf { prob };
        }

        match self.best_split(indices) {
            Some((feature, threshold, split_at)) => {
                // Partition indices in place: left = rows <= threshold.
                indices.sort_unstable_by(|&a, &b| {
                    self.data.row(a)[feature].total_cmp(&self.data.row(b)[feature])
                });
                let (left_idx, right_idx) = indices.split_at_mut(split_at);
                let left = self.grow(left_idx, depth + 1);
                let right = self.grow(right_idx, depth + 1);
                Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
            }
            None => Node::Leaf { prob },
        }
    }

    /// Finds the impurity-minimizing `(feature, threshold, left_count)`
    /// among a random subset of features, or `None` when no admissible
    /// split improves on the parent.
    fn best_split(&mut self, indices: &[usize]) -> Option<(usize, f64, usize)> {
        let n = indices.len();
        let total_pos_w: f64 =
            indices.iter().filter(|&&i| self.data.label(i)).map(|&i| self.weight(i)).sum();
        let total_w: f64 = indices.iter().map(|&i| self.weight(i)).sum();
        let parent = gini(total_pos_w, total_w);

        let mut features: Vec<usize> = (0..self.data.n_features()).collect();
        features.shuffle(self.rng);
        features.truncate(self.n_feature_candidates);

        let mut best: Option<(f64, usize, f64, usize)> = None;
        let mut order: Vec<usize> = indices.to_vec();

        for &f in &features {
            order.sort_unstable_by(|&a, &b| self.data.row(a)[f].total_cmp(&self.data.row(b)[f]));
            let mut left_pos_w = 0.0f64;
            let mut left_w = 0.0f64;
            for k in 1..n {
                let prev = order[k - 1];
                left_w += self.weight(prev);
                if self.data.label(prev) {
                    left_pos_w += self.weight(prev);
                }
                let prev_v = self.data.row(prev)[f];
                let cur_v = self.data.row(order[k])[f];
                if prev_v == cur_v {
                    continue; // cannot split between equal values
                }
                if k < self.cfg.min_samples_leaf || n - k < self.cfg.min_samples_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                let right_pos_w = total_pos_w - left_pos_w;
                let weighted = (left_w * gini(left_pos_w, left_w)
                    + right_w * gini(right_pos_w, right_w))
                    / total_w;
                if weighted + 1e-12 < parent && best.is_none_or(|(b, ..)| weighted < b) {
                    let threshold = 0.5 * (prev_v + cur_v);
                    best = Some((weighted, f, threshold, k));
                }
            }
        }

        best.map(|(_, f, t, k)| (f, t, k))
    }
}

impl DecisionTree {
    /// Grows a tree on the full dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty (construction of [`Dataset`] already
    /// forbids this).
    pub fn fit<R: Rng>(data: &Dataset, cfg: &TreeConfig, rng: &mut R) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let d = data.n_features();
        let candidates =
            cfg.max_features.unwrap_or_else(|| (d as f64).sqrt().ceil() as usize).clamp(1, d);
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let mut grower = Grower { data, cfg, rng, n_feature_candidates: candidates };
        let root = grower.grow(&mut indices, 0);
        Self { root, n_features: d }
    }

    /// Probability of the positive class for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector length mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Number of leaves (model-size diagnostic).
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn xor_dataset() -> Dataset {
        // XOR: not linearly separable, needs depth ≥ 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            // Deterministic jitter decorrelates ties without rand.
            let j = (i as f64 * 0.37).sin() * 0.01;
            rows.push(vec![a + j, b - j]);
            labels.push((a as i64 ^ b as i64) == 1);
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn learns_a_threshold() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TreeConfig { max_features: Some(1), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        assert!(!tree.predict(&[10.0]));
        assert!(tree.predict(&[90.0]));
        // A single split suffices.
        assert_eq!(tree.n_leaves(), 2);
    }

    #[test]
    fn learns_xor_with_depth() {
        let data = xor_dataset();
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = TreeConfig { max_features: Some(2), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        let correct =
            (0..data.len()).filter(|&i| tree.predict(data.row(i)) == data.label(i)).count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_zero_yields_prior_leaf() {
        let data = xor_dataset();
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        assert_eq!(tree.n_leaves(), 1);
        let p = tree.predict_proba(data.row(0));
        assert!((p - data.positive_rate()).abs() < 1e-12);
    }

    #[test]
    fn pure_node_stops_early() {
        let data =
            Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![true, true, true]).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_proba(&[0.5]), 1.0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..10).map(|i| i >= 9).collect(); // 1 positive
        let data = Dataset::new(rows, labels).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg =
            TreeConfig { min_samples_leaf: 3, max_features: Some(1), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        // The only impurity-reducing split (9 | 1) has a 1-row leaf, so the
        // admissible splits cannot isolate the positive: allowed but each
        // leaf has ≥ 3 training rows. Verify via leaf count bound.
        assert!(tree.n_leaves() <= 3);
    }

    #[test]
    fn probabilities_are_valid() {
        let data = xor_dataset();
        let mut rng = SmallRng::seed_from_u64(6);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        for i in 0..data.len() {
            let p = tree.predict_proba(data.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_feature_count_panics() {
        let data = xor_dataset();
        let mut rng = SmallRng::seed_from_u64(7);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        let _ = tree.predict_proba(&[1.0]);
    }

    #[test]
    fn positive_weight_boosts_recall_on_imbalanced_data() {
        // 10% positives, weakly separated: the unweighted tree mostly says
        // "no"; an upweighted tree recovers more positives.
        let n = 400;
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i % 10) as f64 + ((i * 13) % 7) as f64 * 0.1]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 10 == 0 && (i * 13) % 7 < 5).collect();
        let data = Dataset::new(rows, labels).unwrap();

        let recall = |w: f64| {
            let mut rng = SmallRng::seed_from_u64(9);
            let cfg =
                TreeConfig { positive_weight: w, max_features: Some(1), ..TreeConfig::default() };
            let tree = DecisionTree::fit(&data, &cfg, &mut rng);
            let tp = (0..n).filter(|&i| data.label(i) && tree.predict(data.row(i))).count();
            let pos = (0..n).filter(|&i| data.label(i)).count();
            tp as f64 / pos as f64
        };
        assert!(
            recall(8.0) >= recall(1.0),
            "upweighting positives must not reduce recall: {} vs {}",
            recall(8.0),
            recall(1.0)
        );
        assert!(recall(8.0) > 0.5, "weighted recall {}", recall(8.0));
    }

    #[test]
    fn leaf_probabilities_reflect_class_weights() {
        // A single leaf with 1 positive of 4 rows: weighted prob with
        // weight 3 is 3/(3+3) = 0.5.
        let data = Dataset::new(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![true, false, false, false],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = TreeConfig { positive_weight: 3.0, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&data, &cfg, &mut rng);
        assert!((tree.predict_proba(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equal_feature_values_are_never_split() {
        let data = Dataset::new(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![true, false, true, false],
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.n_leaves(), 1);
        assert!((tree.predict_proba(&[1.0]) - 0.5).abs() < 1e-12);
    }
}
