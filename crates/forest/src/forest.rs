//! Bootstrap-aggregated decision trees (Random Forest, Breiman 2001).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self { n_trees: 40, tree: TreeConfig::default(), bootstrap_fraction: 1.0 }
    }
}

/// A trained random forest for binary classification.
///
/// The predicted probability is the **mean leaf probability across trees**,
/// which plays the role of the Weka confidence score `Pr(x_i)` the paper
/// converts into content utility:
///
/// ```text
/// Uc(i) = Pr(x=1)       if predicted clicked
///         1 − Pr(x=0)   otherwise
/// ```
///
/// (both branches equal the positive-class probability, which
/// [`RandomForest::content_utility`] returns directly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Trains a forest on `data` with deterministic seeding.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_trees == 0` or `cfg.bootstrap_fraction <= 0`.
    pub fn fit(data: &Dataset, cfg: &RandomForestConfig, seed: u64) -> Self {
        assert!(cfg.n_trees > 0, "a forest needs at least one tree");
        assert!(cfg.bootstrap_fraction > 0.0, "bootstrap fraction must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample_n = ((data.len() as f64 * cfg.bootstrap_fraction).round() as usize).max(1);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let indices: Vec<usize> =
                    (0..sample_n).map(|_| rng.gen_range(0..data.len())).collect();
                let sample = data.subset(&indices);
                DecisionTree::fit(&sample, &cfg.tree, &mut rng)
            })
            .collect();
        Self { trees, n_features: data.n_features() }
    }

    /// Mean positive-class probability across trees, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(features)).sum();
        sum / self.trees.len() as f64
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Content utility per the paper's rule (Sec. V-A). With a calibrated
    /// probabilistic classifier both branches coincide with
    /// `Pr(x = 1 | features)`.
    pub fn content_utility(&self, features: &[f64]) -> f64 {
        self.predict_proba(features)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features expected by [`Self::predict_proba`].
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_threshold(n: usize) -> Dataset {
        // y = x > 0.5, with 15% label noise driven by a deterministic hash.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i as f64) / (n as f64)]).collect();
        let labels: Vec<bool> = (0..n)
            .map(|i| {
                let clean = (i as f64) / (n as f64) > 0.5;
                let flip = (i * 2654435761) % 100 < 15;
                clean ^ flip
            })
            .collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn forest_beats_chance_under_noise() {
        let data = noisy_threshold(500);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
        let correct = (0..data.len())
            .filter(|&i| forest.predict(data.row(i)) == ((i as f64) / 500.0 > 0.5))
            .count();
        assert!(correct as f64 / 500.0 > 0.9, "accuracy vs clean labels too low");
    }

    #[test]
    fn probabilities_average_over_trees() {
        let data = noisy_threshold(200);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
        for i in (0..200).step_by(17) {
            let p = forest.predict_proba(data.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
        // Confident far from the boundary, less so near it.
        assert!(forest.predict_proba(&[0.95]) > forest.predict_proba(&[0.52]));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_threshold(200);
        let a = RandomForest::fit(&data, &RandomForestConfig::default(), 99);
        let b = RandomForest::fit(&data, &RandomForestConfig::default(), 99);
        assert_eq!(a, b);
        let c = RandomForest::fit(&data, &RandomForestConfig::default(), 100);
        assert!(a != c || a.predict_proba(&[0.5]) == c.predict_proba(&[0.5]));
    }

    #[test]
    fn content_utility_equals_positive_probability() {
        let data = noisy_threshold(200);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
        let f = [0.8];
        assert_eq!(forest.content_utility(&f), forest.predict_proba(&f));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let data = noisy_threshold(10);
        let cfg = RandomForestConfig { n_trees: 0, ..RandomForestConfig::default() };
        let _ = RandomForest::fit(&data, &cfg, 1);
    }

    #[test]
    fn bootstrap_fraction_shrinks_samples() {
        let data = noisy_threshold(400);
        let cfg = RandomForestConfig {
            n_trees: 10,
            bootstrap_fraction: 0.25,
            ..RandomForestConfig::default()
        };
        let forest = RandomForest::fit(&data, &cfg, 3);
        assert_eq!(forest.n_trees(), 10);
        assert!(forest.predict_proba(&[0.9]) > 0.5);
    }
}
