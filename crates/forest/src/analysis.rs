//! Classifier analysis beyond point metrics: ROC curves / AUC, permutation
//! feature importance, and out-of-bag-style held-out scoring. These back
//! the deeper classifier diagnostics in the experiment harness.

use crate::dataset::Dataset;
use crate::forest::RandomForest;
use serde::{Deserialize, Serialize};

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate (recall).
    pub tpr: f64,
}

/// A ROC curve with its AUC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Points in decreasing-threshold order, from (0,0) to (1,1).
    pub points: Vec<RocPoint>,
    /// Area under the curve.
    pub auc: f64,
}

/// Computes the ROC curve of `scores` against binary `labels`.
///
/// # Panics
///
/// Panics if the slices differ in length or either class is absent.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> RocCurve {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    assert!(pos > 0 && neg > 0, "ROC needs both classes present");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume all samples tied at this score before emitting a point.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: fp as f64 / neg as f64,
            tpr: tp as f64 / pos as f64,
        });
    }

    // Trapezoidal AUC.
    let mut auc = 0.0;
    for w in points.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
    }
    RocCurve { points, auc }
}

/// Scores a forest over a dataset and returns its ROC curve.
pub fn forest_roc(forest: &RandomForest, data: &Dataset) -> RocCurve {
    let scores: Vec<f64> = (0..data.len()).map(|i| forest.predict_proba(data.row(i))).collect();
    roc_curve(&scores, data.labels())
}

/// Permutation importance of each feature: the accuracy drop when that
/// feature's column is cyclically shifted (breaking its relationship with
/// the label while preserving its marginal distribution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Baseline accuracy on the unperturbed data.
    pub baseline_accuracy: f64,
    /// Accuracy drop per feature (aligned with feature indices); larger
    /// means more important.
    pub drops: Vec<f64>,
}

impl FeatureImportance {
    /// Feature indices sorted by descending importance.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.drops.len()).collect();
        idx.sort_by(|&a, &b| self.drops[b].total_cmp(&self.drops[a]));
        idx
    }
}

/// Computes permutation importance of `forest` on `data` using a
/// deterministic cyclic shift (no RNG needed; shift by `len/3 + 1` breaks
/// alignment for any non-constant column).
pub fn permutation_importance(forest: &RandomForest, data: &Dataset) -> FeatureImportance {
    let accuracy = |rows: &dyn Fn(usize) -> Vec<f64>| -> f64 {
        let correct =
            (0..data.len()).filter(|&i| forest.predict(&rows(i)) == data.label(i)).count();
        correct as f64 / data.len() as f64
    };

    let baseline_accuracy = accuracy(&|i| data.row(i).to_vec());
    let shift = data.len() / 3 + 1;
    let drops = (0..data.n_features())
        .map(|f| {
            let shuffled = accuracy(&|i| {
                let mut row = data.row(i).to_vec();
                row[f] = data.row((i + shift) % data.len())[f];
                row
            });
            baseline_accuracy - shuffled
        })
        .collect();

    FeatureImportance { baseline_accuracy, drops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;

    fn two_feature_data(n: usize) -> Dataset {
        // Feature 0 decides the label; feature 1 is pure noise.
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i as f64) / n as f64, ((i * 31) % 17) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| (i as f64) / n as f64 > 0.5).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let roc = roc_curve(&scores, &labels);
        assert!((roc.auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_give_auc_half() {
        // Alternating labels against monotone scores: AUC ≈ 0.5.
        let n = 1000;
        let scores: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let roc = roc_curve(&scores, &labels);
        assert!((roc.auc - 0.5).abs() < 0.01, "auc {}", roc.auc);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        let roc = roc_curve(&scores, &labels);
        assert!(roc.auc < 0.01);
    }

    #[test]
    fn roc_endpoints_are_corners() {
        let scores = [0.3, 0.6, 0.1, 0.9];
        let labels = [false, true, false, true];
        let roc = roc_curve(&scores, &labels);
        let first = roc.points.first().unwrap();
        let last = roc.points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = roc_curve(&[0.5, 0.6], &[true, true]);
    }

    #[test]
    fn forest_auc_beats_chance_on_separable_data() {
        let data = two_feature_data(300);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 3);
        let roc = forest_roc(&forest, &data);
        assert!(roc.auc > 0.95, "auc {}", roc.auc);
    }

    #[test]
    fn importance_identifies_the_signal_feature() {
        let data = two_feature_data(400);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 3);
        let imp = permutation_importance(&forest, &data);
        assert!(imp.baseline_accuracy > 0.95);
        assert_eq!(imp.ranking()[0], 0, "feature 0 carries the signal: {:?}", imp.drops);
        assert!(imp.drops[0] > 0.2, "{:?}", imp.drops);
        assert!(imp.drops[1] < 0.05, "{:?}", imp.drops);
    }
}
