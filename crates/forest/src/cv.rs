//! k-fold cross-validation, mirroring the paper's five-fold protocol
//! (Sec. V-A): split the data into k equal parts, train on k−1, test on
//! the held-out part, aggregate the confusion matrices.

use crate::dataset::Dataset;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::metrics::{ClassificationReport, ConfusionMatrix};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Per-fold reports, in fold order.
    pub folds: Vec<ClassificationReport>,
    /// Report over the pooled confusion matrix of all folds.
    pub pooled: ClassificationReport,
}

impl CrossValidation {
    /// Mean per-fold precision.
    pub fn mean_precision(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.precision))
    }

    /// Mean per-fold accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.accuracy))
    }

    /// Mean per-fold recall.
    pub fn mean_recall(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.recall))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs k-fold cross-validation of a random forest on `data`.
///
/// Rows are shuffled deterministically from `seed`, divided into `k`
/// near-equal folds; each fold serves once as the test set.
///
/// # Panics
///
/// Panics if `k < 2` or `data.len() < k`.
pub fn cross_validate(
    data: &Dataset,
    cfg: &RandomForestConfig,
    k: usize,
    seed: u64,
) -> CrossValidation {
    assert!(k >= 2, "cross-validation needs at least two folds");
    assert!(data.len() >= k, "need at least one row per fold");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut rng);

    let mut folds = Vec::with_capacity(k);
    let mut pooled_matrix = ConfusionMatrix::new();

    for fold in 0..k {
        let test_idx: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
        let train_idx: Vec<usize> = order
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, i)| i)
            .collect();

        let train = data.subset(&train_idx);
        let forest = RandomForest::fit(&train, cfg, seed.wrapping_add(fold as u64));

        let mut matrix = ConfusionMatrix::new();
        for &i in &test_idx {
            matrix.record(forest.predict(data.row(i)), data.label(i));
        }
        pooled_matrix.merge(&matrix);
        folds.push(ClassificationReport::from(matrix));
    }

    CrossValidation { folds, pooled: ClassificationReport::from(pooled_matrix) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i as f64) / (n as f64), ((i * 7) % 13) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| (i as f64) / (n as f64) > 0.5).collect();
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn five_fold_covers_every_row_once() {
        let data = separable(103); // not divisible by 5
        let cv = cross_validate(&data, &RandomForestConfig::default(), 5, 1);
        assert_eq!(cv.folds.len(), 5);
        let total: u64 = cv.folds.iter().map(|f| f.confusion.total()).sum();
        assert_eq!(total, 103);
        assert_eq!(cv.pooled.confusion.total(), 103);
    }

    #[test]
    fn separable_data_scores_high() {
        let data = separable(300);
        let cfg = RandomForestConfig { n_trees: 15, ..RandomForestConfig::default() };
        let cv = cross_validate(&data, &cfg, 5, 2);
        assert!(cv.pooled.accuracy > 0.9, "accuracy {}", cv.pooled.accuracy);
        assert!(cv.mean_accuracy() > 0.85);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = separable(120);
        let cfg = RandomForestConfig { n_trees: 5, ..RandomForestConfig::default() };
        let a = cross_validate(&data, &cfg, 4, 9);
        let b = cross_validate(&data, &cfg, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let data = separable(10);
        let _ = cross_validate(&data, &RandomForestConfig::default(), 1, 0);
    }

    #[test]
    #[should_panic(expected = "one row per fold")]
    fn too_small_dataset_panics() {
        let data = separable(3);
        let _ = cross_validate(&data, &RandomForestConfig::default(), 5, 0);
    }

    #[test]
    fn mean_metrics_match_folds() {
        let data = separable(100);
        let cfg = RandomForestConfig { n_trees: 3, ..RandomForestConfig::default() };
        let cv = cross_validate(&data, &cfg, 5, 4);
        let expect: f64 = cv.folds.iter().map(|f| f.precision).sum::<f64>() / 5.0;
        assert!((cv.mean_precision() - expect).abs() < 1e-12);
    }
}
