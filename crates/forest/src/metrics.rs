//! Binary-classification metrics: confusion matrix, precision, recall,
//! accuracy and F1 — the quantities the paper reports for its five-fold
//! cross-validation (precision 0.700, accuracy 0.689).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2×2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
        let mut m = Self::new();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.record(p, a);
        }
        m
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `tp / (tp + fp)`; 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when no actual positives.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Accuracy `(tp + tn) / total`; 0 on an empty matrix.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// F1 score, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another matrix into this one (for fold aggregation).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} tn={} (precision {:.3}, recall {:.3}, accuracy {:.3})",
            self.tp,
            self.fp,
            self.fn_,
            self.tn,
            self.precision(),
            self.recall(),
            self.accuracy()
        )
    }
}

/// Summary of a classifier evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Aggregated confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// F1 score.
    pub f1: f64,
}

impl From<ConfusionMatrix> for ClassificationReport {
    fn from(confusion: ConfusionMatrix) -> Self {
        Self {
            precision: confusion.precision(),
            recall: confusion.recall(),
            accuracy: confusion.accuracy(),
            f1: confusion.f1(),
            confusion,
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.3}  recall {:.3}  accuracy {:.3}  f1 {:.3}",
            self.precision, self.recall, self.accuracy, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn known_matrix_values() {
        let m = ConfusionMatrix { tp: 7, fp: 3, fn_: 1, tn: 9 };
        assert!((m.precision() - 0.7).abs() < 1e-12);
        assert!((m.recall() - 7.0 / 8.0).abs() < 1e-12);
        assert!((m.accuracy() - 16.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);

        let never_positive = ConfusionMatrix { tp: 0, fp: 0, fn_: 5, tn: 5 };
        assert_eq!(never_positive.precision(), 0.0);
        assert_eq!(never_positive.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix { tp: 1, fp: 2, fn_: 3, tn: 4 };
        let b = ConfusionMatrix { tp: 10, fp: 20, fn_: 30, tn: 40 };
        a.merge(&b);
        assert_eq!(a, ConfusionMatrix { tp: 11, fp: 22, fn_: 33, tn: 44 });
    }

    #[test]
    fn report_from_matrix() {
        let m = ConfusionMatrix { tp: 7, fp: 3, fn_: 1, tn: 9 };
        let r = ClassificationReport::from(m);
        assert_eq!(r.precision, m.precision());
        assert_eq!(r.confusion, m);
        assert!(r.to_string().contains("precision 0.700"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let _ = ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn record_covers_all_cells() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!(m.total(), 4);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
    }
}
