//! Delivery-quality cohort accounting.
//!
//! The paper's whole evaluation is utility delivered per unit of budget
//! spent, yet the counters the policies historically exported were global:
//! nobody could ask what utility-per-MB the adaptive policy realized *for
//! flaky-cellular users*. This module defines the cohort vocabulary that
//! closes that gap:
//!
//! * [`ConnectivityCohort`] — the connectivity dimension of a cohort key,
//!   derived from the [`NetSignal`] attached to the round context;
//! * [`QualitySample`] — one quality event (a delivery, or a round's worth
//!   of suppressed notifications), reported by every policy through the
//!   defaulted [`SelectionObserver::on_quality`] hook;
//! * [`CohortLedger`] — a fixed-size accumulator of samples keyed by
//!   `{policy, connectivity, level}`, used directly by the simulator and
//!   `richnote-perf` (the daemon streams samples into its metrics registry
//!   instead).
//!
//! The exported metric families are named here once — [`UTILITY_FAMILY`],
//! [`DELIVERED_BYTES_FAMILY`], [`SUPPRESSED_FAMILY`] — so the live daemon
//! and `richnote_sim` agree byte-for-byte on definitions.
//!
//! [`SelectionObserver::on_quality`]: crate::policy::SelectionObserver::on_quality

use crate::policy::SelectionObserver;
use crate::scheduler::NetSignal;
use richnote_net::NetworkState;
use serde::{Deserialize, Serialize};

/// Family name of the per-cohort accumulated utility (a gauge: utility is
/// an `f64` sum, not an integer count).
pub const UTILITY_FAMILY: &str = "richnote_utility_total";
/// Help text of [`UTILITY_FAMILY`].
pub const UTILITY_HELP: &str = "Combined utility delivered, by policy/connectivity/level cohort";
/// Family name of the per-cohort delivered-byte counter.
pub const DELIVERED_BYTES_FAMILY: &str = "richnote_delivered_bytes_total";
/// Help text of [`DELIVERED_BYTES_FAMILY`].
pub const DELIVERED_BYTES_HELP: &str =
    "Bytes delivered to devices, by policy/connectivity/level cohort";
/// Family name of the per-cohort suppressed-notification counter.
pub const SUPPRESSED_FAMILY: &str = "richnote_suppressed_total";
/// Help text of [`SUPPRESSED_FAMILY`].
pub const SUPPRESSED_HELP: &str =
    "Notification-rounds in which a queued notification was withheld, by policy/connectivity";

/// Number of distinct [`ConnectivityCohort`] values.
pub const COHORTS: usize = 4;
/// Presentation levels tracked per cohort (`0..QUALITY_LEVELS`); higher
/// levels clamp into the last slot. Covers both the server's 6-level audio
/// ladder and the simulator's 8-level histograms.
pub const QUALITY_LEVELS: usize = 9;

/// The connectivity dimension of a quality-cohort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConnectivityCohort {
    /// The driver attached no network observation to the round.
    Unknown,
    /// Observed offline.
    Offline,
    /// Observed on cellular.
    Cell,
    /// Observed on WiFi.
    Wifi,
}

impl ConnectivityCohort {
    /// All cohorts, in index order.
    pub const ALL: [ConnectivityCohort; COHORTS] = [
        ConnectivityCohort::Unknown,
        ConnectivityCohort::Offline,
        ConnectivityCohort::Cell,
        ConnectivityCohort::Wifi,
    ];

    /// The cohort a round belongs to, from the round's connectivity
    /// signal.
    pub fn from_net(net: Option<NetSignal>) -> Self {
        match net.and_then(|n| n.state) {
            None => ConnectivityCohort::Unknown,
            Some(NetworkState::Off) => ConnectivityCohort::Offline,
            Some(NetworkState::Cell) => ConnectivityCohort::Cell,
            Some(NetworkState::Wifi) => ConnectivityCohort::Wifi,
        }
    }

    /// The label value used in exported metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnectivityCohort::Unknown => "unknown",
            ConnectivityCohort::Offline => "offline",
            ConnectivityCohort::Cell => "cell",
            ConnectivityCohort::Wifi => "wifi",
        }
    }

    /// Dense index in `0..COHORTS`.
    pub fn index(self) -> usize {
        match self {
            ConnectivityCohort::Unknown => 0,
            ConnectivityCohort::Offline => 1,
            ConnectivityCohort::Cell => 2,
            ConnectivityCohort::Wifi => 3,
        }
    }
}

/// One quality event reported through the observer hook: either a delivery
/// (`bytes`/`utility` set, `suppressed` 0) or a round's suppression tally
/// (`suppressed` set, level 0, no bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySample<'a> {
    /// Reporting policy ("RichNote", "FIFO", "UTIL", "Adaptive").
    pub policy: &'a str,
    /// Connectivity cohort of the round.
    pub connectivity: ConnectivityCohort,
    /// Presentation level delivered at (0 for suppression samples).
    pub level: u8,
    /// Combined utility realized by this delivery.
    pub utility: f64,
    /// Bytes transferred by this delivery.
    pub bytes: u64,
    /// Queued notifications withheld this round.
    pub suppressed: u64,
}

impl<'a> QualitySample<'a> {
    /// A delivery sample.
    pub fn delivered(
        policy: &'a str,
        connectivity: ConnectivityCohort,
        level: u8,
        utility: f64,
        bytes: u64,
    ) -> Self {
        QualitySample { policy, connectivity, level, utility, bytes, suppressed: 0 }
    }
}

/// Reports a round's suppression tally (notifications still queued once
/// selection finished) through the observer; a no-op for empty queues so
/// idle rounds cost nothing.
pub fn report_suppressed(
    obs: &mut dyn SelectionObserver,
    round: u64,
    policy: &str,
    connectivity: ConnectivityCohort,
    queued: usize,
) {
    if queued > 0 {
        obs.on_quality(
            round,
            &QualitySample {
                policy,
                connectivity,
                level: 0,
                utility: 0.0,
                bytes: 0,
                suppressed: queued as u64,
            },
        );
    }
}

/// One non-empty delivery cell of a [`CohortLedger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortCell {
    /// Connectivity cohort.
    pub connectivity: ConnectivityCohort,
    /// Presentation level (clamped to `QUALITY_LEVELS - 1`).
    pub level: u8,
    /// Accumulated combined utility.
    pub utility: f64,
    /// Deliveries counted into this cell.
    pub delivered: u64,
    /// Bytes delivered.
    pub bytes: u64,
}

/// Fixed-memory accumulator of [`QualitySample`]s keyed by
/// `{connectivity, level}` for one policy.
///
/// The storage is `COHORTS × QUALITY_LEVELS` flat vectors allocated once
/// at construction, so recording is two index computations and an add —
/// cheap enough for per-delivery hot paths — and merging per-user ledgers
/// (the simulator's thread-parallel path) is element-wise addition. The
/// policy label is adopted from the first sample; merging ledgers keeps
/// the first non-empty label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortLedger {
    policy: String,
    utility: Vec<f64>,
    delivered: Vec<u64>,
    bytes: Vec<u64>,
    suppressed: Vec<u64>,
}

impl Default for CohortLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl CohortLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CohortLedger {
            policy: String::new(),
            utility: vec![0.0; COHORTS * QUALITY_LEVELS],
            delivered: vec![0; COHORTS * QUALITY_LEVELS],
            bytes: vec![0; COHORTS * QUALITY_LEVELS],
            suppressed: vec![0; COHORTS],
        }
    }

    fn slot(connectivity: ConnectivityCohort, level: u8) -> usize {
        connectivity.index() * QUALITY_LEVELS + (level as usize).min(QUALITY_LEVELS - 1)
    }

    /// The policy label adopted from the first recorded sample ("" while
    /// empty).
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Folds one sample in.
    pub fn record(&mut self, sample: &QualitySample<'_>) {
        if self.policy.is_empty() && !sample.policy.is_empty() {
            self.policy.push_str(sample.policy);
        }
        if sample.suppressed > 0 {
            self.suppressed[sample.connectivity.index()] += sample.suppressed;
        }
        if sample.bytes > 0 || sample.utility != 0.0 {
            let i = Self::slot(sample.connectivity, sample.level);
            self.utility[i] += sample.utility;
            self.delivered[i] += 1;
            self.bytes[i] += sample.bytes;
        }
    }

    /// Element-wise sum of another ledger (the per-user → population fold).
    pub fn merge(&mut self, other: &CohortLedger) {
        if self.policy.is_empty() {
            self.policy.push_str(&other.policy);
        }
        for (a, b) in self.utility.iter_mut().zip(&other.utility) {
            *a += b;
        }
        for (a, b) in self.delivered.iter_mut().zip(&other.delivered) {
            *a += b;
        }
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
        for (a, b) in self.suppressed.iter_mut().zip(&other.suppressed) {
            *a += b;
        }
    }

    /// Whether any sample has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.delivered.iter().all(|&d| d == 0) && self.suppressed.iter().all(|&s| s == 0)
    }

    /// Iterates the non-empty delivery cells in `{connectivity, level}`
    /// order.
    pub fn cells(&self) -> impl Iterator<Item = CohortCell> + '_ {
        ConnectivityCohort::ALL.into_iter().flat_map(move |c| {
            (0..QUALITY_LEVELS).filter_map(move |l| {
                let i = c.index() * QUALITY_LEVELS + l;
                (self.delivered[i] > 0).then_some(CohortCell {
                    connectivity: c,
                    level: l as u8,
                    utility: self.utility[i],
                    delivered: self.delivered[i],
                    bytes: self.bytes[i],
                })
            })
        })
    }

    /// Iterates the non-zero suppression tallies per cohort.
    pub fn suppressed_cells(&self) -> impl Iterator<Item = (ConnectivityCohort, u64)> + '_ {
        ConnectivityCohort::ALL.into_iter().filter_map(move |c| {
            (self.suppressed[c.index()] > 0).then_some((c, self.suppressed[c.index()]))
        })
    }

    /// Total utility across all cohorts.
    pub fn total_utility(&self) -> f64 {
        self.utility.iter().sum()
    }

    /// Total bytes delivered across all cohorts.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total suppressed notification-rounds across all cohorts.
    pub fn total_suppressed(&self) -> u64 {
        self.suppressed.iter().sum()
    }

    /// Utility per megabyte delivered, the paper's headline ratio
    /// (`None` until any bytes have been delivered).
    pub fn utility_per_mb(&self) -> Option<f64> {
        let bytes = self.total_bytes();
        (bytes > 0).then(|| self.total_utility() / (bytes as f64 / 1e6))
    }
}

impl SelectionObserver for CohortLedger {
    fn on_select(&mut self, _: u64, _: crate::ids::ContentId, _: &crate::policy::SelectDecision) {}

    fn on_quality(&mut self, _round: u64, sample: &QualitySample<'_>) {
        self.record(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_from_net_signal() {
        assert_eq!(ConnectivityCohort::from_net(None), ConnectivityCohort::Unknown);
        assert_eq!(
            ConnectivityCohort::from_net(Some(NetSignal::default())),
            ConnectivityCohort::Unknown
        );
        for (state, want) in [
            (NetworkState::Off, ConnectivityCohort::Offline),
            (NetworkState::Cell, ConnectivityCohort::Cell),
            (NetworkState::Wifi, ConnectivityCohort::Wifi),
        ] {
            assert_eq!(ConnectivityCohort::from_net(Some(NetSignal::observed(state))), want);
        }
        for (i, c) in ConnectivityCohort::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }

    #[test]
    fn ledger_records_and_totals() {
        let mut l = CohortLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.utility_per_mb(), None);
        l.record(&QualitySample::delivered(
            "RichNote",
            ConnectivityCohort::Wifi,
            6,
            0.8,
            2_000_000,
        ));
        l.record(&QualitySample::delivered("RichNote", ConnectivityCohort::Cell, 1, 0.3, 200));
        l.on_quality(
            3,
            &QualitySample {
                policy: "RichNote",
                connectivity: ConnectivityCohort::Offline,
                level: 0,
                utility: 0.0,
                bytes: 0,
                suppressed: 4,
            },
        );
        assert!(!l.is_empty());
        assert_eq!(l.policy(), "RichNote");
        assert_eq!(l.total_bytes(), 2_000_200);
        assert_eq!(l.total_suppressed(), 4);
        assert!((l.total_utility() - 1.1).abs() < 1e-12);
        let upmb = l.utility_per_mb().unwrap();
        assert!((upmb - 1.1 / 2.0002).abs() < 1e-9, "{upmb}");
        let cells: Vec<CohortCell> = l.cells().collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].connectivity, ConnectivityCohort::Cell);
        assert_eq!(cells[0].level, 1);
        assert_eq!(cells[1].connectivity, ConnectivityCohort::Wifi);
        assert_eq!(cells[1].bytes, 2_000_000);
        assert_eq!(
            l.suppressed_cells().collect::<Vec<_>>(),
            vec![(ConnectivityCohort::Offline, 4)]
        );
    }

    #[test]
    fn levels_above_the_table_clamp_into_the_last_slot() {
        let mut l = CohortLedger::new();
        l.record(&QualitySample::delivered("X", ConnectivityCohort::Wifi, 200, 1.0, 10));
        let cells: Vec<CohortCell> = l.cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].level, (QUALITY_LEVELS - 1) as u8);
    }

    #[test]
    fn merge_is_elementwise_and_keeps_first_policy() {
        let mut a = CohortLedger::new();
        a.record(&QualitySample::delivered("RichNote", ConnectivityCohort::Cell, 2, 0.5, 100));
        let mut b = CohortLedger::new();
        b.record(&QualitySample::delivered("RichNote", ConnectivityCohort::Cell, 2, 0.25, 50));
        let mut empty = CohortLedger::new();
        empty.merge(&a);
        empty.merge(&b);
        assert_eq!(empty.policy(), "RichNote");
        assert_eq!(empty.total_bytes(), 150);
        assert!((empty.total_utility() - 0.75).abs() < 1e-12);
        let cells: Vec<CohortCell> = empty.cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].delivered, 2);
    }

    #[test]
    fn ledger_roundtrips_through_json() {
        let mut l = CohortLedger::new();
        l.record(&QualitySample::delivered("UTIL", ConnectivityCohort::Wifi, 3, 0.4, 999));
        let s = serde_json::to_string(&l).unwrap();
        let back: CohortLedger = serde_json::from_str(&s).unwrap();
        assert_eq!(l, back);
    }
}
