//! The delivery queue as a transport layer (Fig. 1): selected
//! notifications waiting to be *downloaded*, paced by link bandwidth, with
//! partial progress that survives connectivity gaps.
//!
//! The scheduling policies decide *what* to deliver each round; this
//! module models *how* the bytes actually move: downloads proceed in FIFO
//! order at the current link rate, an interrupted download resumes where
//! it left off (HTTP range semantics), and completion timestamps reflect
//! transfer time rather than scheduling time.

use crate::ids::ContentId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A download in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingDownload {
    /// Content being transferred.
    pub content: ContentId,
    /// Total size in bytes.
    pub size: u64,
    /// Bytes already transferred.
    pub transferred: u64,
    /// When the download was enqueued.
    pub enqueued_at: f64,
}

impl PendingDownload {
    /// Bytes still to transfer.
    pub fn remaining(&self) -> u64 {
        self.size - self.transferred
    }
}

/// A finished download.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedDownload {
    /// Content delivered.
    pub content: ContentId,
    /// Total size transferred.
    pub size: u64,
    /// When the last byte arrived.
    pub completed_at: f64,
    /// When the download was enqueued.
    pub enqueued_at: f64,
}

impl CompletedDownload {
    /// End-to-end transfer latency (seconds).
    pub fn latency(&self) -> f64 {
        self.completed_at - self.enqueued_at
    }
}

/// A FIFO delivery queue with bandwidth-paced, resumable downloads.
///
/// ```
/// use richnote_core::ids::ContentId;
/// use richnote_core::transport::DeliveryQueue;
///
/// let mut q = DeliveryQueue::new();
/// q.push(ContentId::new(1), 1_000, 0.0);
/// // 1000 bytes at 100 B/s takes 10 seconds.
/// let done = q.advance(0.0, 10.0, 100.0);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].completed_at, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeliveryQueue {
    pending: VecDeque<PendingDownload>,
}

impl DeliveryQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a download of `size` bytes at time `enqueued_at`.
    pub fn push(&mut self, content: ContentId, size: u64, enqueued_at: f64) {
        self.pending.push_back(PendingDownload { content, size, transferred: 0, enqueued_at });
    }

    /// Advances the transport by `secs` seconds starting at `now`, moving
    /// bytes at `rate` bytes/second, and returns the downloads that
    /// completed (in completion order, with exact finish timestamps).
    ///
    /// A zero or non-finite rate moves nothing (the device is offline);
    /// partial progress is retained either way.
    pub fn advance(&mut self, now: f64, secs: f64, rate: f64) -> Vec<CompletedDownload> {
        let mut completed = Vec::new();
        if !(rate.is_finite() && rate > 0.0) || secs <= 0.0 {
            return completed;
        }
        let mut budget_bytes = rate * secs;
        let mut clock = now;
        while budget_bytes > 0.0 {
            let Some(head) = self.pending.front_mut() else {
                break;
            };
            let remaining = head.remaining() as f64;
            if remaining <= budget_bytes {
                clock += remaining / rate;
                budget_bytes -= remaining;
                let head = self.pending.pop_front().expect("front exists");
                completed.push(CompletedDownload {
                    content: head.content,
                    size: head.size,
                    completed_at: clock,
                    enqueued_at: head.enqueued_at,
                });
            } else {
                head.transferred += budget_bytes as u64;
                budget_bytes = 0.0;
            }
        }
        completed
    }

    /// Number of downloads still in flight or waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Bytes not yet transferred across all pending downloads.
    pub fn pending_bytes(&self) -> u64 {
        self.pending.iter().map(PendingDownload::remaining).sum()
    }

    /// Bytes already transferred for downloads still pending (partial
    /// progress held across windows).
    pub fn in_flight_bytes(&self) -> u64 {
        self.pending.iter().map(|d| d.transferred).sum()
    }

    /// The download currently on the wire, if any.
    pub fn current(&self) -> Option<&PendingDownload> {
        self.pending.front()
    }

    /// Drops a pending download (e.g. the user dismissed the
    /// notification); returns whether it was found.
    pub fn cancel(&mut self, content: ContentId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|d| d.content != content);
        self.pending.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downloads_complete_in_fifo_order_with_exact_times() {
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 500, 0.0);
        q.push(ContentId::new(2), 300, 0.0);
        let done = q.advance(0.0, 10.0, 100.0);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].content, ContentId::new(1));
        assert_eq!(done[0].completed_at, 5.0);
        assert_eq!(done[1].content, ContentId::new(2));
        assert_eq!(done[1].completed_at, 8.0);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_progress_survives_connectivity_gaps() {
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 1_000, 0.0);
        // First window moves 400 bytes.
        assert!(q.advance(0.0, 4.0, 100.0).is_empty());
        assert_eq!(q.current().unwrap().transferred, 400);
        assert_eq!(q.pending_bytes(), 600);
        // Offline gap: nothing moves.
        assert!(q.advance(4.0, 100.0, 0.0).is_empty());
        assert_eq!(q.pending_bytes(), 600);
        // Back online: the download *resumes* rather than restarting.
        let done = q.advance(104.0, 6.0, 100.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, 110.0);
        assert!((done[0].latency() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn faster_links_finish_sooner() {
        let mut slow = DeliveryQueue::new();
        let mut fast = DeliveryQueue::new();
        slow.push(ContentId::new(1), 10_000, 0.0);
        fast.push(ContentId::new(1), 10_000, 0.0);
        let s = slow.advance(0.0, 3_600.0, 10.0);
        let f = fast.advance(0.0, 3_600.0, 10_000.0);
        assert_eq!(f[0].completed_at, 1.0);
        assert_eq!(s[0].completed_at, 1_000.0);
    }

    #[test]
    fn nonpositive_or_infinite_rates_move_nothing() {
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 100, 0.0);
        assert!(q.advance(0.0, 10.0, 0.0).is_empty());
        assert!(q.advance(0.0, 10.0, -5.0).is_empty());
        assert!(q.advance(0.0, 10.0, f64::NAN).is_empty());
        assert!(q.advance(0.0, 0.0, 100.0).is_empty());
        assert_eq!(q.pending_bytes(), 100);
    }

    #[test]
    fn cancel_drops_only_the_target() {
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 100, 0.0);
        q.push(ContentId::new(2), 100, 0.0);
        assert!(q.cancel(ContentId::new(1)));
        assert!(!q.cancel(ContentId::new(99)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.current().unwrap().content, ContentId::new(2));
    }

    #[test]
    fn zero_size_download_completes_instantly() {
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 0, 5.0);
        let done = q.advance(10.0, 1.0, 100.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, 10.0);
    }

    #[test]
    fn queue_head_blocks_later_items() {
        // Strict FIFO: a huge head delays small followers (head-of-line),
        // matching the delivery-queue semantics of Fig. 1 where the order
        // was fixed by the scheduler's utility ranking.
        let mut q = DeliveryQueue::new();
        q.push(ContentId::new(1), 1_000_000, 0.0);
        q.push(ContentId::new(2), 10, 0.0);
        let done = q.advance(0.0, 1.0, 100.0);
        assert!(done.is_empty());
        assert_eq!(q.current().unwrap().content, ContentId::new(1));
    }
}
