//! Multi-choice knapsack selection of presentations (Sec. III-C / IV,
//! Algorithm 1, `SelectPresentations`).
//!
//! Each content item contributes a *category* of mutually exclusive
//! presentations (its ladder, including the zero-size level 0); the solver
//! picks exactly one presentation per item maximizing total (adjusted)
//! utility under a byte budget.
//!
//! Three solvers are provided:
//!
//! * [`select_greedy`] — the paper's heuristic: repeatedly upgrade the item
//!   with the largest *utility–size gradient*
//!   `∇(i,j) = (U(i,j+1) − U(i,j)) / (s(i,j+1) − s(i,j))` using a max-heap;
//!   `O(n + K·log n)` for `K` total upgrades.
//! * [`select_fractional`] — the LP relaxation: identical except the final
//!   upgrade may be fractional; optimal for monotone concave ladders and an
//!   upper bound used in tests/benches to measure the greedy gap.
//! * [`select_exact`] — textbook dynamic program, exponential-free but
//!   `O(n · budget)`; intended for small instances (tests, ablations).
//!
//! # This module vs [`crate::mckp2`]
//!
//! **Use this module on the production path.** The scheduler folds the
//! energy constraint into the objective via the Lyapunov virtual queue
//! (Sec. IV), leaving a single data constraint — exactly this problem.
//! Use [`crate::mckp2`] only when you need the *hard* two-constraint
//! formulation of Eq. 2 (energy ablations, relaxation-gap measurement).
//! With a slack energy budget the two greedy solvers provably coincide —
//! `tests/mckp_differential.rs` asserts selection-for-selection equality —
//! so there is never a correctness reason to pay mckp2's extra bookkeeping
//! when energy cannot bind.

use crate::presentation::PresentationLadder;
use crate::utility::combined_utility;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One MCKP category: the presentation levels of a single content item.
///
/// Level 0 is always `(size 0, utility 0)` — "not sent". Sizes are strictly
/// increasing with level; utilities may be arbitrary (the Lyapunov-adjusted
/// utility is not necessarily monotone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MckpItem {
    /// Caller-side identifier (e.g. index into the scheduling queue).
    pub id: usize,
    levels: Vec<(u64, f64)>,
}

impl MckpItem {
    /// Creates an item from `(size, utility)` pairs for levels `1..`.
    /// Level 0 is prepended automatically.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or sizes are not strictly increasing.
    pub fn new(id: usize, levels: Vec<(u64, f64)>) -> Self {
        assert!(!levels.is_empty(), "an MCKP item needs at least one deliverable level");
        let mut all = Vec::with_capacity(levels.len() + 1);
        all.push((0u64, 0.0f64));
        all.extend(levels);
        for w in all.windows(2) {
            assert!(w[1].0 > w[0].0, "presentation sizes must be strictly increasing: {:?}", all);
        }
        Self { id, levels: all }
    }

    /// Builds an item from a presentation ladder and a content utility,
    /// using the plain combined utility `U(i,j) = Uc(i) × Up(i,j)` (Eq. 1).
    pub fn from_ladder(id: usize, ladder: &PresentationLadder, content_utility: f64) -> Self {
        let levels = ladder
            .deliverable()
            .iter()
            .map(|p| (p.size, combined_utility(content_utility, p.utility)))
            .collect();
        Self::new(id, levels)
    }

    /// Builds an item with explicit per-level utilities (e.g. the
    /// Lyapunov-adjusted utility `Ua(i,j)`); `sizes` and `utilities` cover
    /// levels `1..` and must have equal lengths.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or sizes are not strictly increasing.
    pub fn from_adjusted(id: usize, sizes: &[u64], utilities: &[f64]) -> Self {
        assert_eq!(sizes.len(), utilities.len(), "sizes and utilities must align");
        Self::new(id, sizes.iter().copied().zip(utilities.iter().copied()).collect())
    }

    /// Rebuilds this item in place from `(size, utility)` pairs for levels
    /// `1..`, reusing the existing level storage. The allocation-free
    /// counterpart of [`MckpItem::new`] for per-round scratch instances.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or sizes are not strictly increasing.
    pub fn reset_with(&mut self, id: usize, levels: impl IntoIterator<Item = (u64, f64)>) {
        self.id = id;
        self.levels.clear();
        self.levels.push((0u64, 0.0f64));
        self.levels.extend(levels);
        assert!(self.levels.len() > 1, "an MCKP item needs at least one deliverable level");
        for w in self.levels.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "presentation sizes must be strictly increasing: {:?}",
                self.levels
            );
        }
    }

    /// Builds an item from an iterator of `(size, utility)` pairs for
    /// levels `1..` (the iterator twin of [`MckpItem::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or sizes are not strictly increasing.
    pub fn from_levels_iter(id: usize, levels: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut item = Self { id, levels: Vec::new() };
        item.reset_with(id, levels);
        item
    }

    /// All levels including level 0, as `(size, utility)` pairs.
    pub fn levels(&self) -> &[(u64, f64)] {
        &self.levels
    }

    /// Highest level index.
    pub fn max_level(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// The utility–size gradient for upgrading from `level` to `level + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is out of range.
    pub fn gradient(&self, level: u8) -> f64 {
        let (s0, u0) = self.levels[level as usize];
        let (s1, u1) = self.levels[level as usize + 1];
        (u1 - u0) / (s1 - s0) as f64
    }
}

/// Result of an MCKP solve: one chosen level per input item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Chosen level for each item, aligned with the input slice.
    pub levels: Vec<u8>,
    /// Total size of the chosen presentations, bytes.
    pub total_size: u64,
    /// Total utility of the chosen presentations.
    pub total_utility: f64,
}

impl Selection {
    fn from_levels(items: &[MckpItem], levels: Vec<u8>) -> Self {
        let mut total_size = 0u64;
        let mut total_utility = 0.0f64;
        for (item, &lvl) in items.iter().zip(&levels) {
            let (s, u) = item.levels[lvl as usize];
            total_size += s;
            total_utility += u;
        }
        Self { levels, total_size, total_utility }
    }

    /// Indices of items selected at level ≥ 1 (i.e. actually delivered).
    pub fn delivered(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.levels.iter().enumerate().filter(|(_, &l)| l > 0).map(|(i, &l)| (i, l))
    }
}

/// Options controlling the greedy heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreedyOptions {
    /// Stop at the first upgrade that does not fit (the paper's Algorithm 1
    /// sets `done ← true` immediately). When `false`, the solver skips the
    /// oversized upgrade and keeps trying other items — a common practical
    /// improvement measured in the ablation benches.
    pub stop_at_first_overflow: bool,
    /// Apply upgrades whose gradient is zero or negative. The paper assumes
    /// monotone utilities so this never helps; it is exposed for ablations
    /// with non-monotone adjusted utilities.
    pub allow_nonpositive_gradients: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        Self { stop_at_first_overflow: true, allow_nonpositive_gradients: false }
    }
}

/// Max-heap entry ordered by gradient (total order via `f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    gradient: f64,
    item: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gradient
            .total_cmp(&other.gradient)
            // Deterministic tie-break on item index.
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// Runs the paper's greedy `SelectPresentations` heuristic (Algorithm 1)
/// with default options.
///
/// Starts every item at level 0 and repeatedly applies the upgrade with the
/// largest utility–size gradient until the budget is exhausted.
///
/// ```
/// use richnote_core::mckp::{select_greedy, MckpItem};
///
/// let items = vec![
///     MckpItem::new(0, vec![(100, 1.0), (300, 1.5)]),
///     MckpItem::new(1, vec![(100, 0.2)]),
/// ];
/// let sel = select_greedy(&items, 350);
/// assert_eq!(sel.levels, vec![2, 0]); // upgrade item 0 twice, skip item 1
/// assert_eq!(sel.total_size, 300);
/// ```
pub fn select_greedy(items: &[MckpItem], budget: u64) -> Selection {
    select_greedy_with(items, budget, GreedyOptions::default())
}

/// Greedy heuristic with explicit [`GreedyOptions`].
pub fn select_greedy_with(items: &[MckpItem], budget: u64, opts: GreedyOptions) -> Selection {
    let mut scratch = GreedyScratch::default();
    select_greedy_into(items, budget, opts, &mut scratch);
    Selection::from_levels(items, std::mem::take(&mut scratch.levels))
}

/// Reusable working memory for [`select_greedy_into`]. One instance per
/// scheduler amortizes the heap and level-vector allocations across
/// rounds — the solver itself then allocates nothing in steady state.
#[derive(Debug, Default, Clone)]
pub struct GreedyScratch {
    heap: BinaryHeap<HeapEntry>,
    /// Chosen level per item after a solve, aligned with the input slice.
    levels: Vec<u8>,
}

impl GreedyScratch {
    /// Chosen level for each item from the most recent solve.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Indices of items chosen at level ≥ 1 (i.e. actually delivered) in
    /// the most recent solve, as `(item index, level)` pairs.
    pub fn delivered(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.levels.iter().enumerate().filter(|(_, &l)| l > 0).map(|(i, &l)| (i, l))
    }
}

/// Allocation-free greedy heuristic: identical selection semantics to
/// [`select_greedy_with`], but working memory lives in `scratch` and the
/// chosen levels are left in [`GreedyScratch::levels`]. Returns the total
/// size of the chosen presentations, bytes.
pub fn select_greedy_into(
    items: &[MckpItem],
    budget: u64,
    opts: GreedyOptions,
    scratch: &mut GreedyScratch,
) -> u64 {
    let levels = &mut scratch.levels;
    levels.clear();
    levels.resize(items.len(), 0u8);
    let mut total_size = 0u64;

    let heap = &mut scratch.heap;
    heap.clear();
    heap.extend(
        items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.max_level() >= 1)
            .map(|(idx, it)| HeapEntry { gradient: it.gradient(0), item: idx }),
    );

    while let Some(entry) = heap.pop() {
        if !opts.allow_nonpositive_gradients && entry.gradient <= 0.0 {
            // Max-heap: nothing later can be positive either.
            break;
        }
        let idx = entry.item;
        let item = &items[idx];
        let cur = levels[idx];
        let size_gain = item.levels[cur as usize + 1].0 - item.levels[cur as usize].0;
        if total_size + size_gain <= budget {
            levels[idx] = cur + 1;
            total_size += size_gain;
            if levels[idx] < item.max_level() {
                heap.push(HeapEntry { gradient: item.gradient(levels[idx]), item: idx });
            }
        } else if opts.stop_at_first_overflow {
            break;
        }
        // else: skip this upgrade permanently and keep draining the heap.
    }
    // A stopped solve leaves stale entries behind; clear so the next
    // round starts from an empty heap without a fresh allocation.
    heap.clear();

    total_size
}

/// The final, possibly partial, upgrade of the fractional relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FractionalUpgrade {
    /// Item receiving the partial upgrade.
    pub item: usize,
    /// Level the item is being upgraded *from*.
    pub from_level: u8,
    /// Fraction of the upgrade that fits in the budget, in `(0, 1)`.
    pub fraction: f64,
    /// Utility contributed by the fractional part.
    pub utility: f64,
}

/// Result of the fractional (LP-relaxation) solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractionalSelection {
    /// The integral part (identical to the greedy solution).
    pub integral: Selection,
    /// The final fractional upgrade, if the budget cut one short.
    pub fractional: Option<FractionalUpgrade>,
}

impl FractionalSelection {
    /// Total utility including the fractional part — for monotone concave
    /// ladders this is an upper bound on the optimal integral utility
    /// (Sinha & Zoltners 1979, as used in Sec. IV).
    pub fn utility_upper_bound(&self) -> f64 {
        self.integral.total_utility + self.fractional.map_or(0.0, |f| f.utility)
    }
}

/// Solves the fractional MCKP relaxation by greedy gradient upgrades with a
/// final partial upgrade.
///
/// Optimal when each item's utilities are monotone increasing and concave in
/// size (true for the paper's presentation ladders); in that case the
/// integral greedy answer is within one upgrade's utility of optimal.
pub fn select_fractional(items: &[MckpItem], budget: u64) -> FractionalSelection {
    let mut levels = vec![0u8; items.len()];
    let mut total_size = 0u64;
    let mut fractional = None;

    let mut heap: BinaryHeap<HeapEntry> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.max_level() >= 1)
        .map(|(idx, it)| HeapEntry { gradient: it.gradient(0), item: idx })
        .collect();

    while let Some(entry) = heap.pop() {
        if entry.gradient <= 0.0 {
            break;
        }
        let idx = entry.item;
        let item = &items[idx];
        let cur = levels[idx];
        let size_gain = item.levels[cur as usize + 1].0 - item.levels[cur as usize].0;
        let util_gain = item.levels[cur as usize + 1].1 - item.levels[cur as usize].1;
        if total_size + size_gain <= budget {
            levels[idx] = cur + 1;
            total_size += size_gain;
            if levels[idx] < item.max_level() {
                heap.push(HeapEntry { gradient: item.gradient(levels[idx]), item: idx });
            }
        } else {
            let remaining = budget - total_size;
            if remaining > 0 {
                let fraction = remaining as f64 / size_gain as f64;
                fractional = Some(FractionalUpgrade {
                    item: idx,
                    from_level: cur,
                    fraction,
                    utility: fraction * util_gain,
                });
            }
            break;
        }
    }

    FractionalSelection { integral: Selection::from_levels(items, levels), fractional }
}

/// Exact MCKP solver by dynamic programming over the budget.
///
/// Complexity is `O(n · budget · max_level)` time and `O(n · budget)`
/// memory — use only for small instances (unit tests, optimality-gap
/// ablations). Budgets are interpreted in bytes; scale sizes down first for
/// large instances.
///
/// # Panics
///
/// Panics if `budget` exceeds `u32::MAX` (guard against accidental
/// million-fold memory blowups).
pub fn select_exact(items: &[MckpItem], budget: u64) -> Selection {
    assert!(budget <= u64::from(u32::MAX), "exact DP is for small budgets only");
    let w = budget as usize + 1;
    // dp[b] = best utility with total size exactly ≤ b; choice[i][b] = level.
    let mut dp = vec![0.0f64; w];
    let mut choice = vec![vec![0u8; w]; items.len()];

    for (i, item) in items.iter().enumerate() {
        let mut next = vec![f64::NEG_INFINITY; w];
        let mut pick = vec![0u8; w];
        for b in 0..w {
            for (lvl, &(size, util)) in item.levels.iter().enumerate() {
                if size as usize <= b {
                    let cand = dp[b - size as usize] + util;
                    if cand > next[b] {
                        next[b] = cand;
                        pick[b] = lvl as u8;
                    }
                }
            }
        }
        dp = next;
        choice[i] = pick;
    }

    // Walk back the choices from the full budget.
    let mut levels = vec![0u8; items.len()];
    let mut b = budget as usize;
    for i in (0..items.len()).rev() {
        let lvl = choice[i][b];
        levels[i] = lvl;
        b -= items[i].levels[lvl as usize].0 as usize;
    }
    Selection::from_levels(items, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::AudioPresentationSpec;

    fn concave_item(id: usize) -> MckpItem {
        MckpItem::from_ladder(id, &AudioPresentationSpec::paper_default().ladder(), 1.0)
    }

    #[test]
    fn empty_input_selects_nothing() {
        let sel = select_greedy(&[], 1_000);
        assert!(sel.levels.is_empty());
        assert_eq!(sel.total_size, 0);
        assert_eq!(sel.total_utility, 0.0);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let items = vec![concave_item(0), concave_item(1)];
        let sel = select_greedy(&items, 0);
        assert_eq!(sel.levels, vec![0, 0]);
    }

    #[test]
    fn greedy_respects_budget() {
        let items: Vec<MckpItem> = (0..50).map(concave_item).collect();
        for budget in [0u64, 199, 200, 10_000, 1_000_000, 50_000_000] {
            let sel = select_greedy(&items, budget);
            assert!(sel.total_size <= budget, "budget {budget}: used {}", sel.total_size);
        }
    }

    #[test]
    fn greedy_prefers_metadata_breadth_at_tiny_budget() {
        // With budget for exactly two metadata presentations, the gradient
        // of the 0→1 upgrade (cheap, high utility/byte) dominates.
        let items = vec![concave_item(0), concave_item(1)];
        let sel = select_greedy(&items, 400);
        assert_eq!(sel.levels, vec![1, 1]);
    }

    #[test]
    fn greedy_goes_deep_when_budget_allows() {
        let items = vec![concave_item(0)];
        let sel = select_greedy(&items, 10_000_000);
        assert_eq!(sel.levels, vec![6]);
    }

    #[test]
    fn greedy_matches_exact_on_small_instances() {
        // Concave ladders: greedy should be near-optimal; we allow the gap
        // of one upgrade proven in Sec. IV.
        let items = vec![
            MckpItem::new(0, vec![(2, 0.5), (5, 0.9), (9, 1.1)]),
            MckpItem::new(1, vec![(3, 0.6), (7, 1.0)]),
            MckpItem::new(2, vec![(1, 0.2), (4, 0.55)]),
        ];
        for budget in 0..=20u64 {
            let g = select_greedy_with(
                &items,
                budget,
                GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
            );
            let e = select_exact(&items, budget);
            let frac = select_fractional(&items, budget);
            assert!(e.total_utility + 1e-9 >= g.total_utility);
            assert!(
                frac.utility_upper_bound() + 1e-9 >= e.total_utility,
                "budget {budget}: frac bound {} < exact {}",
                frac.utility_upper_bound(),
                e.total_utility
            );
        }
    }

    #[test]
    fn fractional_bound_tightness() {
        let items: Vec<MckpItem> = (0..10).map(concave_item).collect();
        let budget = 1_234_567u64;
        let frac = select_fractional(&items, budget);
        let greedy = select_greedy_with(
            &items,
            budget,
            GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
        );
        // Integral greedy is within the last fractional upgrade of the bound.
        assert!(frac.utility_upper_bound() >= greedy.total_utility - 1e-9);
        let gap = frac.utility_upper_bound() - frac.integral.total_utility;
        assert!(gap >= 0.0);
        if let Some(f) = frac.fractional {
            assert!(f.fraction > 0.0 && f.fraction < 1.0);
            assert!((gap - f.utility).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_gradient_levels_are_skipped_by_default() {
        // Adjusted utilities that *decrease* past level 1.
        let items = vec![MckpItem::new(0, vec![(10, 1.0), (20, 0.5)])];
        let sel = select_greedy(&items, 100);
        assert_eq!(sel.levels, vec![1]);
        let sel2 = select_greedy_with(
            &items,
            100,
            GreedyOptions { allow_nonpositive_gradients: true, ..Default::default() },
        );
        assert_eq!(sel2.levels, vec![2]); // forced through for the ablation
    }

    #[test]
    fn stop_at_first_overflow_matches_paper_semantics() {
        // Item 0 has a huge second upgrade that overflows; item 1 still has
        // a small viable upgrade. Paper semantics stop immediately.
        let items = vec![
            MckpItem::new(0, vec![(10, 1.0), (1_000, 1.9)]),
            MckpItem::new(1, vec![(10, 0.5)]),
        ];
        // Budget fits both level-1s, then item0's upgrade (gradient
        // 0.9/990 ≈ 0.0009) is popped before nothing else remains.
        let stop = select_greedy(&items, 40);
        let cont = select_greedy_with(
            &items,
            40,
            GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
        );
        // Both level-1 upgrades fit (20 bytes) either way; the big upgrade
        // never fits; with stopping the behaviour is identical here.
        assert_eq!(stop.levels, vec![1, 1]);
        assert_eq!(cont.levels, vec![1, 1]);

        // Now make the overflow pop *before* a viable cheap upgrade: item0's
        // first upgrade has the best gradient but does not fit.
        let items2 = vec![MckpItem::new(0, vec![(100, 100.0)]), MckpItem::new(1, vec![(10, 0.5)])];
        let stop2 = select_greedy(&items2, 50);
        assert_eq!(stop2.levels, vec![0, 0], "paper variant stops at first overflow");
        let cont2 = select_greedy_with(
            &items2,
            50,
            GreedyOptions { stop_at_first_overflow: false, ..Default::default() },
        );
        assert_eq!(cont2.levels, vec![0, 1], "continue variant keeps packing");
    }

    #[test]
    fn gradient_matches_definition() {
        let item = MckpItem::new(0, vec![(100, 0.5), (300, 0.9)]);
        assert!((item.gradient(0) - 0.5 / 100.0).abs() < 1e-12);
        assert!((item.gradient(1) - 0.4 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn delivered_iterates_only_selected() {
        let items = vec![concave_item(0), concave_item(1), concave_item(2)];
        let sel = select_greedy(&items, 450);
        let delivered: Vec<(usize, u8)> = sel.delivered().collect();
        assert_eq!(delivered.len(), 2); // 450 bytes fit two metadata levels
        assert!(delivered.iter().all(|&(_, l)| l == 1));
    }

    #[test]
    fn selection_totals_are_consistent() {
        let items: Vec<MckpItem> = (0..20).map(concave_item).collect();
        let sel = select_greedy(&items, 2_000_000);
        let mut size = 0u64;
        let mut util = 0.0;
        for (i, &l) in sel.levels.iter().enumerate() {
            let (s, u) = items[i].levels()[l as usize];
            size += s;
            util += u;
        }
        assert_eq!(size, sel.total_size);
        assert!((util - sel.total_utility).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_sizes_panic() {
        let _ = MckpItem::new(0, vec![(10, 0.1), (10, 0.2)]);
    }

    #[test]
    fn exact_dp_walkback_reconstructs_budgeted_solution() {
        let items = vec![
            MckpItem::new(0, vec![(4, 1.0)]),
            MckpItem::new(1, vec![(4, 1.1)]),
            MckpItem::new(2, vec![(4, 1.2)]),
        ];
        let sel = select_exact(&items, 8);
        assert_eq!(sel.total_size, 8);
        // Best two of three.
        assert_eq!(sel.levels, vec![0, 1, 1]);
        assert!((sel.total_utility - 2.3).abs() < 1e-12);
    }
}
