//! Two-constraint MCKP: the paper's original formulation (Eq. 2) with both
//! a **data budget** `Σ s(i,η(i)) ≤ B(t)` and an **energy budget**
//! `Σ ρ(i,η(i)) ≤ E(t)`.
//!
//! The production path (Sec. IV) moves the energy constraint into the
//! objective via the Lyapunov virtual queue; this module implements the
//! hard-constrained problem directly so the relaxation can be evaluated
//! against it (see the `mckp` bench and the energy ablation):
//!
//! * [`select_greedy2`] — greedy on the *composite* gradient
//!   `ΔU / (Δs/B + λ·Δρ/E)`: the marginal utility per unit of normalized
//!   combined resource, with both budgets enforced exactly;
//! * [`select_exact2`] — two-dimensional dynamic program, exponential-free
//!   but `O(n·B·E)`; for small instances (tests, gap measurement).
//!
//! # This module vs [`crate::mckp`]
//!
//! **Reach for this module only when the energy constraint must be hard**:
//! ablations comparing the Lyapunov relaxation against Eq. 2, or offline
//! analysis where exceeding an energy cap invalidates the result. The
//! per-round production path should use [`crate::mckp`] — it is the
//! post-relaxation problem, does strictly less work per upgrade, and when
//! the energy budget is slack [`select_greedy2`] reduces to it exactly
//! (`ΔU/(Δs/B + Δρ/E) → B·ΔU/Δs` as `E → ∞`; both solvers tie-break on
//! item index, so selections match level-for-level — see
//! `tests/mckp_differential.rs`).

use crate::mckp::{MckpItem, Selection};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A per-level resource annotation: the energy cost `ρ(i, j)` aligned with
/// an [`MckpItem`]'s levels (including level 0, which must cost 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyProfile {
    costs: Vec<f64>,
}

impl EnergyProfile {
    /// Creates a profile from level-0-inclusive energy costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty, `costs[0] != 0`, any cost is negative or
    /// non-finite, or costs are not non-decreasing.
    pub fn new(costs: Vec<f64>) -> Self {
        assert!(!costs.is_empty(), "energy profile needs at least level 0");
        assert_eq!(costs[0], 0.0, "level 0 must cost no energy");
        for w in costs.windows(2) {
            assert!(
                w[1].is_finite() && w[1] >= w[0],
                "energy costs must be finite and non-decreasing: {costs:?}"
            );
        }
        Self { costs }
    }

    /// Builds a profile by applying a cost function to an item's sizes.
    pub fn from_item(item: &MckpItem, cost: impl Fn(u64) -> f64) -> Self {
        Self::new(item.levels().iter().map(|&(s, _)| cost(s)).collect())
    }

    /// Energy at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn cost(&self, level: u8) -> f64 {
        self.costs[level as usize]
    }

    /// Number of levels (including level 0).
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the profile covers only level 0.
    pub fn is_empty(&self) -> bool {
        self.costs.len() <= 1
    }
}

/// Result of a two-constraint solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection2 {
    /// Chosen level per item.
    pub levels: Vec<u8>,
    /// Total bytes of chosen presentations.
    pub total_size: u64,
    /// Total energy of chosen presentations.
    pub total_energy: f64,
    /// Total utility.
    pub total_utility: f64,
}

impl Selection2 {
    fn from_levels(items: &[MckpItem], energy: &[EnergyProfile], levels: Vec<u8>) -> Self {
        let mut total_size = 0u64;
        let mut total_energy = 0.0;
        let mut total_utility = 0.0;
        for ((item, prof), &lvl) in items.iter().zip(energy).zip(&levels) {
            let (s, u) = item.levels()[lvl as usize];
            total_size += s;
            total_energy += prof.cost(lvl);
            total_utility += u;
        }
        Self { levels, total_size, total_energy, total_utility }
    }

    /// Downgrades to a single-constraint [`Selection`] (drops energy).
    pub fn into_selection(self) -> Selection {
        Selection {
            levels: self.levels,
            total_size: self.total_size,
            total_utility: self.total_utility,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    gradient: f64,
    item: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gradient.total_cmp(&other.gradient).then_with(|| other.item.cmp(&self.item))
    }
}

/// Greedy heuristic for the two-constraint MCKP.
///
/// Upgrades are ranked by utility per unit of *normalized combined
/// resource*: an upgrade consuming `Δs` bytes and `Δρ` joules against
/// budgets `B` and `E` scores `ΔU / (Δs/B + Δρ/E)`. An upgrade is applied
/// only if **both** budgets still accommodate it; upgrades that do not fit
/// are skipped (the heap keeps draining — the "continue" variant, which
/// dominates the stop-at-first-overflow variant on two constraints).
///
/// # Panics
///
/// Panics if `items` and `energy` differ in length or a profile's level
/// count differs from its item's.
pub fn select_greedy2(
    items: &[MckpItem],
    energy: &[EnergyProfile],
    data_budget: u64,
    energy_budget: f64,
) -> Selection2 {
    assert_eq!(items.len(), energy.len(), "items and energy profiles must align");
    for (item, prof) in items.iter().zip(energy) {
        assert_eq!(item.levels().len(), prof.len(), "level counts must align");
    }

    let b = (data_budget as f64).max(1.0);
    let e = energy_budget.max(1e-12);
    let gradient = |item: &MckpItem, prof: &EnergyProfile, lvl: u8| -> f64 {
        let (s0, u0) = item.levels()[lvl as usize];
        let (s1, u1) = item.levels()[lvl as usize + 1];
        let ds = (s1 - s0) as f64 / b;
        let de = (prof.cost(lvl + 1) - prof.cost(lvl)) / e;
        (u1 - u0) / (ds + de).max(1e-15)
    };

    let mut levels = vec![0u8; items.len()];
    let mut used_size = 0u64;
    let mut used_energy = 0.0f64;

    let mut heap: BinaryHeap<HeapEntry> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.max_level() >= 1)
        .map(|(i, it)| HeapEntry { gradient: gradient(it, &energy[i], 0), item: i })
        .collect();

    while let Some(entry) = heap.pop() {
        if entry.gradient <= 0.0 {
            break;
        }
        let i = entry.item;
        let item = &items[i];
        let prof = &energy[i];
        let cur = levels[i];
        let size_gain = item.levels()[cur as usize + 1].0 - item.levels()[cur as usize].0;
        let energy_gain = prof.cost(cur + 1) - prof.cost(cur);
        if used_size + size_gain <= data_budget && used_energy + energy_gain <= energy_budget {
            levels[i] = cur + 1;
            used_size += size_gain;
            used_energy += energy_gain;
            if levels[i] < item.max_level() {
                heap.push(HeapEntry { gradient: gradient(item, prof, levels[i]), item: i });
            }
        }
        // else: skip this upgrade; cheaper upgrades may still fit.
    }

    Selection2::from_levels(items, energy, levels)
}

/// Exact two-dimensional DP for small instances.
///
/// Energy is discretized into `energy_steps` buckets of the energy budget;
/// complexity is `O(n · data_budget · energy_steps · max_level)`.
///
/// # Panics
///
/// Panics on misaligned inputs, `data_budget > u32::MAX`, or
/// `energy_steps == 0`.
pub fn select_exact2(
    items: &[MckpItem],
    energy: &[EnergyProfile],
    data_budget: u64,
    energy_budget: f64,
    energy_steps: usize,
) -> Selection2 {
    assert_eq!(items.len(), energy.len(), "items and energy profiles must align");
    assert!(data_budget <= u64::from(u32::MAX), "exact DP is for small budgets");
    assert!(energy_steps > 0, "need at least one energy bucket");

    let w = data_budget as usize + 1;
    let h = energy_steps + 1;
    let bucket = |joules: f64| -> usize {
        if energy_budget <= 0.0 {
            if joules > 0.0 {
                h
            } else {
                0
            }
        } else {
            (joules / energy_budget * energy_steps as f64).ceil() as usize
        }
    };

    // dp[b][k] = best utility with size ≤ b and energy ≤ k buckets.
    let mut dp = vec![vec![0.0f64; h]; w];
    let mut choice: Vec<Vec<Vec<u8>>> = Vec::with_capacity(items.len());

    for (item, prof) in items.iter().zip(energy) {
        let mut next = vec![vec![f64::NEG_INFINITY; h]; w];
        let mut pick = vec![vec![0u8; h]; w];
        for bb in 0..w {
            for kk in 0..h {
                for (lvl, &(size, util)) in item.levels().iter().enumerate() {
                    let eb = bucket(prof.cost(lvl as u8));
                    if size as usize <= bb && eb <= kk {
                        let cand = dp[bb - size as usize][kk - eb] + util;
                        if cand > next[bb][kk] {
                            next[bb][kk] = cand;
                            pick[bb][kk] = lvl as u8;
                        }
                    }
                }
            }
        }
        dp = next;
        choice.push(pick);
    }

    let mut levels = vec![0u8; items.len()];
    let mut bb = data_budget as usize;
    let mut kk = energy_steps;
    for i in (0..items.len()).rev() {
        let lvl = choice[i][bb][kk];
        levels[i] = lvl;
        bb -= items[i].levels()[lvl as usize].0 as usize;
        kk -= bucket(energy[i].cost(lvl));
    }
    Selection2::from_levels(items, energy, levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: usize, pairs: Vec<(u64, f64)>) -> MckpItem {
        MckpItem::new(id, pairs)
    }

    fn linear_energy(item: &MckpItem, per_byte: f64) -> EnergyProfile {
        EnergyProfile::from_item(item, |s| s as f64 * per_byte)
    }

    #[test]
    fn respects_both_budgets() {
        let items = vec![
            item(0, vec![(10, 1.0), (30, 1.8)]),
            item(1, vec![(10, 0.9), (30, 1.6)]),
            item(2, vec![(10, 0.8)]),
        ];
        let energy: Vec<EnergyProfile> = items.iter().map(|it| linear_energy(it, 0.5)).collect();
        for (db, eb) in [(15u64, 100.0), (100, 6.0), (100, 100.0), (0, 0.0)] {
            let sel = select_greedy2(&items, &energy, db, eb);
            assert!(sel.total_size <= db, "size {} > {db}", sel.total_size);
            assert!(sel.total_energy <= eb + 1e-9, "energy {} > {eb}", sel.total_energy);
        }
    }

    #[test]
    fn energy_constraint_binds_independently() {
        // Plenty of data budget, almost no energy: selection must shrink.
        let items = vec![item(0, vec![(100, 1.0), (200, 1.5)])];
        let energy = vec![EnergyProfile::new(vec![0.0, 10.0, 20.0])];
        let generous = select_greedy2(&items, &energy, 10_000, 100.0);
        assert_eq!(generous.levels, vec![2]);
        let starved = select_greedy2(&items, &energy, 10_000, 10.0);
        assert_eq!(starved.levels, vec![1]);
        let none = select_greedy2(&items, &energy, 10_000, 5.0);
        assert_eq!(none.levels, vec![0]);
    }

    #[test]
    fn greedy_matches_exact_on_small_grid() {
        let items = vec![
            item(0, vec![(2, 0.5), (5, 0.9)]),
            item(1, vec![(3, 0.6), (7, 1.0)]),
            item(2, vec![(1, 0.2), (4, 0.55)]),
        ];
        let energy: Vec<EnergyProfile> = items.iter().map(|it| linear_energy(it, 1.0)).collect();
        for db in [0u64, 3, 6, 9, 12, 16] {
            for eb in [0.0f64, 4.0, 8.0, 16.0] {
                let g = select_greedy2(&items, &energy, db, eb);
                let x = select_exact2(&items, &energy, db, eb, 32);
                assert!(
                    x.total_utility + 1e-9 >= g.total_utility,
                    "exact {} < greedy {} at ({db}, {eb})",
                    x.total_utility,
                    g.total_utility
                );
                assert!(x.total_size <= db);
                assert!(x.total_energy <= eb + 1e-9);
                // Greedy should be within one upgrade of exact here.
                assert!(
                    g.total_utility >= x.total_utility - 1.0,
                    "greedy too far off at ({db}, {eb}): {g:?} vs {x:?}"
                );
            }
        }
    }

    #[test]
    fn skipping_oversized_upgrades_keeps_packing() {
        // Item 0's upgrade violates the energy budget; item 1's still fits.
        let items = vec![item(0, vec![(10, 5.0)]), item(1, vec![(10, 0.5)])];
        let energy =
            vec![EnergyProfile::new(vec![0.0, 1_000.0]), EnergyProfile::new(vec![0.0, 1.0])];
        let sel = select_greedy2(&items, &energy, 100, 10.0);
        assert_eq!(sel.levels, vec![0, 1]);
    }

    #[test]
    fn zero_energy_levels_are_free() {
        let items = vec![item(0, vec![(200, 0.01)])];
        let energy = vec![EnergyProfile::new(vec![0.0, 0.0])];
        let sel = select_greedy2(&items, &energy, 1_000, 0.0);
        assert_eq!(sel.levels, vec![1], "zero-energy metadata fits a zero energy budget");
    }

    #[test]
    #[should_panic(expected = "level 0 must cost no energy")]
    fn nonzero_base_energy_panics() {
        let _ = EnergyProfile::new(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_energy_panics() {
        let _ = EnergyProfile::new(vec![0.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        let items = vec![item(0, vec![(10, 1.0)])];
        let _ = select_greedy2(&items, &[], 10, 10.0);
    }

    #[test]
    fn selection2_converts_to_selection() {
        let items = vec![item(0, vec![(10, 1.0)])];
        let energy = vec![linear_energy(&items[0], 0.1)];
        let sel2 = select_greedy2(&items, &energy, 100, 100.0);
        let sel = sel2.clone().into_selection();
        assert_eq!(sel.levels, sel2.levels);
        assert_eq!(sel.total_size, sel2.total_size);
    }
}
