//! The [`Policy`] trait: one interface for every scheduling policy.
//!
//! [`super::scheduler::NotificationScheduler`] (PR 1) is the minimal
//! simulation-facing interface; it has no checkpoint story and no way to
//! watch *why* a policy picked a level. `Policy` is the daemon-facing
//! superset: the same round loop, plus
//!
//! * [`Policy::checkpoint`] / [`Policy::restore`] — every policy can be
//!   captured into a serializable [`PolicyCheckpoint`] and rebuilt, so the
//!   server's checkpoint machinery no longer hard-codes one scheduler;
//! * [`SelectionObserver`] — a per-round hook through which the policy
//!   reports each selection (chosen level, realized utility, and the MCKP
//!   gradient that won the knapsack slot), feeding the observability
//!   layer without the policy knowing about registries or trace rings.
//!
//! The simulator and the server shard are generic over `P: Policy`;
//! `Box<dyn Policy>` also implements `Policy` (restore dispatches on the
//! checkpoint variant), so call sites that pick a policy at runtime stay
//! dynamic with no second code path.

use crate::ids::ContentId;
use crate::scheduler::{
    DeliveredNotification, NotificationScheduler, QueuedNotification, RoundContext,
    SchedulerCheckpoint,
};
use serde::{Deserialize, Serialize};

/// The full context of one selection decision, reported through
/// [`SelectionObserver::on_select`].
///
/// This is what per-publication tracing needs to answer "why was this
/// delivered at level 3": the chosen level, the realized utility, the
/// MCKP gradient that won the knapsack slot, and how much of the round's
/// byte budget was left once this delivery was charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectDecision {
    /// Presentation level chosen.
    pub level: u8,
    /// Bytes of the chosen presentation.
    pub size: u64,
    /// Combined utility realized at the chosen level.
    pub utility: f64,
    /// Utility-per-byte slope of the final upgrade into `level` in the
    /// MCKP instance (0 for base selections and for policies that do not
    /// solve a knapsack).
    pub gradient: f64,
    /// Bytes of the per-round budget still unspent immediately after
    /// this delivery was charged.
    pub budget_remaining: u64,
}

/// The per-round shaping decision of an adaptive policy, reported through
/// [`SelectionObserver::on_adapt`] before any selection happens: what the
/// policy predicted about connectivity and how it reshaped the round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveDecision {
    /// Predicted probability the user is offline next round.
    pub predicted_offline: f64,
    /// Predicted probability the user is on WiFi next round.
    pub predicted_wifi: f64,
    /// Throughput estimate driving the grant scaling (bytes/sec), if any.
    pub throughput: Option<f64>,
    /// The effective data grant after scaling (bytes).
    pub data_grant: u64,
    /// Whether the grant was reduced below the driver's grant.
    pub grant_scaled: bool,
    /// The presentation-level cap imposed this round (`u8::MAX` = none).
    pub level_cap: u8,
}

/// Receives per-selection telemetry during [`Policy::select_round`].
///
/// Implementations must be cheap: the RichNote scheduler calls
/// [`SelectionObserver::on_select`] once per delivered notification inside
/// the round loop.
pub trait SelectionObserver {
    /// One notification was chosen for delivery with `decision`.
    fn on_select(&mut self, round: u64, content: ContentId, decision: &SelectDecision);

    /// An adaptive policy reshaped the round (once per round, before
    /// selections). Defaults to a no-op so non-adaptive observers are
    /// unaffected.
    fn on_adapt(&mut self, round: u64, decision: &AdaptiveDecision) {
        let _ = (round, decision);
    }

    /// A delivery-quality event: one delivery's realized utility and
    /// bytes, or a round's suppression tally, keyed by the
    /// `{policy, connectivity, level}` cohort (see [`crate::quality`]).
    /// Called once per delivery plus at most once per round, right after
    /// the matching [`SelectionObserver::on_select`] calls. Defaults to a
    /// no-op so existing observers are unaffected.
    fn on_quality(&mut self, round: u64, sample: &crate::quality::QualitySample<'_>) {
        let _ = (round, sample);
    }
}

/// An observer that ignores everything (the default for plain
/// `NotificationScheduler` runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SelectionObserver for NoopObserver {
    fn on_select(&mut self, _: u64, _: ContentId, _: &SelectDecision) {}
}

/// Serializable state of one fixed-level baseline scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedLevelCheckpoint {
    /// The configured presentation level.
    pub fixed_level: u8,
    /// Rolled-over data budget (bytes, fractional).
    pub data_budget: f64,
    /// The queue in its exact in-memory order.
    pub queue: Vec<QueuedNotification>,
}

/// A policy-tagged checkpoint: which policy wrote it, plus its state.
///
/// The tag is what lets a restarted daemon rebuild the *same* policy the
/// checkpoint came from — restoring a `Fifo` checkpoint into a RichNote
/// shard fails loudly with [`WrongPolicy`] instead of silently changing
/// scheduling behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyCheckpoint {
    /// [`crate::scheduler::RichNoteScheduler`] state.
    RichNote(SchedulerCheckpoint),
    /// [`crate::scheduler::FifoScheduler`] state.
    Fifo(FixedLevelCheckpoint),
    /// [`crate::scheduler::UtilScheduler`] state.
    Util(FixedLevelCheckpoint),
    /// [`crate::adaptive::AdaptivePolicy`] state (estimators included).
    /// Boxed: the adaptive checkpoint (config + estimator + inner
    /// scheduler) dwarfs the other variants.
    Adaptive(Box<crate::adaptive::AdaptiveCheckpoint>),
}

impl PolicyCheckpoint {
    /// The policy name the checkpoint belongs to.
    pub fn policy_name(&self) -> &'static str {
        match self {
            PolicyCheckpoint::RichNote(_) => "RichNote",
            PolicyCheckpoint::Fifo(_) => "FIFO",
            PolicyCheckpoint::Util(_) => "UTIL",
            PolicyCheckpoint::Adaptive(_) => "Adaptive",
        }
    }
}

/// Restore was handed a checkpoint written by a different policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrongPolicy {
    /// The policy asked to restore.
    pub expected: &'static str,
    /// The policy that wrote the checkpoint.
    pub found: &'static str,
}

impl std::fmt::Display for WrongPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot restore a {} checkpoint into a {} policy", self.found, self.expected)
    }
}

impl std::error::Error for WrongPolicy {}

/// The unified scheduling-policy interface.
///
/// A supertrait of [`NotificationScheduler`], so every policy keeps the
/// simulation-facing `name`/`enqueue`/`run_round`/`backlog` surface and
/// adds checkpointing plus observable rounds on top. Semantically
/// [`Policy::select_round`] is
/// [`NotificationScheduler::run_round`] with telemetry: the two entry
/// points deliver identical notifications for the same inputs.
pub trait Policy: NotificationScheduler {
    /// Admits newly arrived notifications into the scheduling queue.
    fn observe_arrivals(&mut self, arrivals: Vec<QueuedNotification>) {
        for n in arrivals {
            self.enqueue(n);
        }
    }

    /// Runs one round, reporting each selection through `obs` and
    /// returning the deliveries in delivery order.
    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification>;

    /// Captures the policy's complete mutable state.
    fn checkpoint(&self) -> PolicyCheckpoint;

    /// Rebuilds a policy from a checkpoint written by the same policy.
    ///
    /// # Errors
    ///
    /// Returns [`WrongPolicy`] when `ck` was written by a different
    /// policy.
    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy>
    where
        Self: Sized;
}

impl NotificationScheduler for Box<dyn Policy + Send> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn enqueue(&mut self, notification: QueuedNotification) {
        (**self).enqueue(notification);
    }

    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification> {
        (**self).run_round(ctx)
    }

    fn backlog(&self) -> usize {
        (**self).backlog()
    }

    fn backlog_bytes(&self) -> u64 {
        (**self).backlog_bytes()
    }
}

impl Policy for Box<dyn Policy + Send> {
    fn observe_arrivals(&mut self, arrivals: Vec<QueuedNotification>) {
        (**self).observe_arrivals(arrivals);
    }

    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        (**self).select_round(ctx, obs)
    }

    fn checkpoint(&self) -> PolicyCheckpoint {
        (**self).checkpoint()
    }

    /// Rebuilds whichever concrete policy the checkpoint was written by.
    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy> {
        use crate::adaptive::AdaptivePolicy;
        use crate::scheduler::{FifoScheduler, RichNoteScheduler, UtilScheduler};
        Ok(match ck {
            PolicyCheckpoint::RichNote(_) => {
                Box::new(RichNoteScheduler::restore(ck).expect("variant matched"))
            }
            PolicyCheckpoint::Fifo(_) => {
                Box::new(FifoScheduler::restore(ck).expect("variant matched"))
            }
            PolicyCheckpoint::Util(_) => {
                Box::new(UtilScheduler::restore(ck).expect("variant matched"))
            }
            PolicyCheckpoint::Adaptive(_) => {
                Box::new(AdaptivePolicy::restore(ck).expect("variant matched"))
            }
        })
    }
}
