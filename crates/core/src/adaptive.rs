//! Connectivity-aware adaptive delivery: the [`AdaptivePolicy`].
//!
//! The paper's MCKP selection runs against a static per-round budget `θ`,
//! but its own connectivity model (the Sec. V-D3 WiFi/CELL/OFF Markov
//! chain) makes that budget the wrong constant: users on flaky cellular
//! should get metadata-first deliveries while WiFi users get full
//! previews. `AdaptivePolicy` wraps the stock [`RichNoteScheduler`] with an
//! ABR-style shaping layer (cf. volumetric-video rate adaptation):
//!
//! 1. an **EWMA throughput estimator** fed from realized delivery
//!    bytes/latency ([`EwmaThroughput`]);
//! 2. a **one-step connectivity prediction** from the Markov transition
//!    matrix, falling back to the stationary distribution when no state
//!    has ever been observed;
//! 3. per round, the prediction and estimate **scale the data grant** and
//!    **clamp the maximum presentation level** — metadata-only when OFF is
//!    the likely next state, the cell cap on flaky cellular, the full
//!    ladder on stable WiFi.
//!
//! The shaping formulas are specified in DESIGN.md §13. All signals flow
//! through [`NetSignal`] on the [`RoundContext`], so the server shards,
//! the simulator and `richnote-perf` drive the policy through one API.

use crate::ids::ContentId;
use crate::policy::{
    AdaptiveDecision, NoopObserver, Policy, PolicyCheckpoint, SelectDecision, SelectionObserver,
    WrongPolicy,
};
use crate::quality::QualitySample;
use crate::scheduler::{
    DeliveredNotification, NetSignal, NotificationScheduler, QueuedNotification, RichNoteConfig,
    RichNoteScheduler, RoundContext, SchedulerCheckpoint,
};
use richnote_net::{MarkovConnectivity, NetworkState};
use serde::{Deserialize, Serialize};

/// Exponentially weighted moving average of observed link throughput
/// (bytes per second), with the observed extremes retained.
///
/// The estimate is a convex combination of samples, so it is always
/// bounded by the minimum and maximum ever observed, and it responds
/// monotonically to sustained shifts — both properties are pinned by
/// proptests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaThroughput {
    alpha: f64,
    estimate: Option<f64>,
    min_seen: Option<f64>,
    max_seen: Option<f64>,
}

impl EwmaThroughput {
    /// Creates an estimator with smoothing factor `alpha` (the weight of
    /// the newest sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1], got {alpha}");
        Self { alpha, estimate: None, min_seen: None, max_seen: None }
    }

    /// Feeds one realized delivery: `bytes` transferred in `secs` seconds.
    /// Ignored when either is non-positive (no transfer happened, or the
    /// link was modeled as instantaneous).
    pub fn observe(&mut self, bytes: u64, secs: f64) {
        if bytes == 0 || secs <= 0.0 || secs.is_nan() {
            return;
        }
        self.observe_rate(bytes as f64 / secs);
    }

    /// Feeds one throughput sample directly (bytes per second).
    pub fn observe_rate(&mut self, rate: f64) {
        if !rate.is_finite() || rate <= 0.0 {
            return;
        }
        self.min_seen = Some(self.min_seen.map_or(rate, |m| m.min(rate)));
        self.max_seen = Some(self.max_seen.map_or(rate, |m| m.max(rate)));
        self.estimate = Some(match self.estimate {
            Some(e) => e + self.alpha * (rate - e),
            None => rate,
        });
    }

    /// The current throughput estimate, bytes per second. `None` before
    /// the first sample.
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// The `(min, max)` of all samples ever observed.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        Some((self.min_seen?, self.max_seen?))
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for EwmaThroughput {
    fn default() -> Self {
        Self::new(AdaptiveConfig::default().alpha)
    }
}

/// Configuration of the [`AdaptivePolicy`] shaping layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Inner RichNote scheduler configuration.
    pub richnote: RichNoteConfig,
    /// EWMA smoothing factor for the throughput estimator.
    pub alpha: f64,
    /// Safety factor `β` applied to the sustainable-byte estimate when
    /// scaling the grant (headroom against overprediction).
    pub safety: f64,
    /// Predicted-OFF probability at or above which the round is
    /// metadata-only (level cap 1).
    pub off_threshold: f64,
    /// Predicted-WiFi probability at or above which the full ladder is
    /// allowed.
    pub wifi_threshold: f64,
    /// Level cap applied on predicted flaky-cellular rounds (neither
    /// threshold reached).
    pub cell_level_cap: u8,
    /// Markov transition matrix used for one-step prediction, rows and
    /// columns in `[Wifi, Cell, Off]` order.
    pub matrix: [[f64; 3]; 3],
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            richnote: RichNoteConfig::default(),
            alpha: 0.3,
            safety: 0.9,
            off_threshold: 0.5,
            wifi_threshold: 0.5,
            cell_level_cap: 3,
            matrix: *MarkovConnectivity::paper_default(NetworkState::Cell).matrix(),
        }
    }
}

/// Serializable snapshot of an [`AdaptivePolicy`]'s complete mutable
/// state: the inner scheduler, the throughput estimator and the last
/// observed network state all round-trip, so a restored policy predicts
/// and scales exactly as the checkpointed one would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCheckpoint {
    /// Shaping configuration at checkpoint time.
    pub config: AdaptiveConfig,
    /// Inner RichNote scheduler state.
    pub inner: SchedulerCheckpoint,
    /// Throughput estimator state.
    pub ewma: EwmaThroughput,
    /// Last network state observed through [`NetSignal`], if any.
    pub last_state: Option<NetworkState>,
}

/// Builder for [`AdaptivePolicy`];
/// `AdaptivePolicy::builder().build()` yields the defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptivePolicyBuilder {
    cfg: AdaptiveConfig,
}

impl AdaptivePolicyBuilder {
    /// Replaces the whole configuration at once.
    pub fn config(mut self, cfg: AdaptiveConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the inner RichNote scheduler configuration.
    pub fn richnote(mut self, cfg: RichNoteConfig) -> Self {
        self.cfg.richnote = cfg;
        self
    }

    /// Sets the EWMA smoothing factor.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Sets the level cap applied on predicted flaky-cellular rounds.
    pub fn cell_level_cap(mut self, cap: u8) -> Self {
        self.cfg.cell_level_cap = cap;
        self
    }

    /// Sets the Markov transition matrix used for prediction.
    pub fn matrix(mut self, matrix: [[f64; 3]; 3]) -> Self {
        self.cfg.matrix = matrix;
        self
    }

    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if the transition matrix is not row-stochastic or the EWMA
    /// alpha is outside `(0, 1]`.
    pub fn build(self) -> AdaptivePolicy {
        AdaptivePolicy::from_parts(
            self.cfg,
            RichNoteScheduler::builder().config(self.cfg.richnote).build(),
            EwmaThroughput::new(self.cfg.alpha),
            None,
        )
    }
}

/// The connectivity-aware adaptive policy (see module docs).
#[derive(Debug)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    /// Prediction chain built from `cfg.matrix`; its internal state is
    /// never stepped — only `transition_row` and `stationary` are used.
    chain: MarkovConnectivity,
    inner: RichNoteScheduler,
    ewma: EwmaThroughput,
    last_state: Option<NetworkState>,
}

impl AdaptivePolicy {
    /// A builder starting from the default shaping parameters.
    pub fn builder() -> AdaptivePolicyBuilder {
        AdaptivePolicyBuilder::default()
    }

    fn from_parts(
        cfg: AdaptiveConfig,
        inner: RichNoteScheduler,
        ewma: EwmaThroughput,
        last_state: Option<NetworkState>,
    ) -> Self {
        let chain = MarkovConnectivity::new(cfg.matrix, NetworkState::Cell)
            .expect("adaptive transition matrix must be row-stochastic");
        Self { cfg, chain, inner, ewma, last_state }
    }

    /// The current throughput estimator (for telemetry and tests).
    pub fn ewma(&self) -> &EwmaThroughput {
        &self.ewma
    }

    /// The last network state observed through [`NetSignal`].
    pub fn last_state(&self) -> Option<NetworkState> {
        self.last_state
    }

    /// The shaping configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Captures the policy's complete mutable state.
    pub fn checkpoint_state(&self) -> AdaptiveCheckpoint {
        AdaptiveCheckpoint {
            config: self.cfg,
            inner: self.inner.checkpoint(),
            ewma: self.ewma,
            last_state: self.last_state,
        }
    }

    /// Rebuilds a policy from an [`AdaptiveCheckpoint`].
    pub fn from_checkpoint(ck: AdaptiveCheckpoint) -> Self {
        Self::from_parts(
            ck.config,
            RichNoteScheduler::from_checkpoint(ck.inner),
            ck.ewma,
            ck.last_state,
        )
    }

    /// Computes this round's shaping decision from the context's signals
    /// and the policy's own estimator state (DESIGN.md §13).
    fn shape(&self, ctx: &RoundContext<'_>) -> AdaptiveDecision {
        let basis = ctx.net.and_then(|n| n.state).or(self.last_state);
        let p = match basis {
            Some(s) => self.chain.transition_row(s),
            None => self.chain.stationary(),
        };
        let p_wifi = p[0];
        let p_off = p[2];
        let p_online = (p[0] + p[1]).clamp(0.0, 1.0);

        // Level cap from the prediction, tightened by any cap the driver
        // already imposed.
        let predicted_cap = if p_off >= self.cfg.off_threshold {
            1 // metadata only
        } else if p_wifi >= self.cfg.wifi_threshold {
            u8::MAX // full ladder
        } else {
            self.cfg.cell_level_cap.max(1)
        };
        let level_cap = predicted_cap.min(ctx.level_cap());

        // Grant scaling: cap θ at the bytes the link is predicted to
        // sustain. Without any throughput estimate the grant is left
        // untouched — the policy degrades to stock RichNote until its
        // first realized delivery.
        let throughput = ctx.net.and_then(|n| n.throughput).or(self.ewma.estimate());
        let mut data_grant = ctx.data_grant;
        let mut grant_scaled = false;
        if let Some(t) = throughput {
            let sustainable = (t * ctx.round_secs.max(0.0) * p_online * self.cfg.safety).max(0.0);
            let sustainable =
                if sustainable >= u64::MAX as f64 { u64::MAX } else { sustainable as u64 };
            if sustainable < data_grant {
                data_grant = sustainable;
                grant_scaled = true;
            }
        }

        AdaptiveDecision {
            predicted_offline: p_off,
            predicted_wifi: p_wifi,
            throughput,
            data_grant,
            grant_scaled,
            level_cap,
        }
    }

    fn round_impl(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        if let Some(s) = ctx.net.and_then(|n| n.state) {
            self.last_state = Some(s);
        }
        let decision = self.shape(ctx);
        obs.on_adapt(ctx.round, &decision);

        let derived = RoundContext {
            data_grant: decision.data_grant,
            net: Some(NetSignal {
                state: self.last_state,
                throughput: decision.throughput,
                level_cap: Some(decision.level_cap),
            }),
            ..*ctx
        };
        // The inner scheduler self-reports quality as "RichNote"; re-label
        // its samples so cohorts are attributed to the policy the driver
        // actually configured.
        let delivered = self.inner.select_round(&derived, &mut RelabelQuality { inner: obs });

        // Feed the estimator from the realized transfer: the pacing model
        // finishes the last delivery at `now + bytes/link_rate`, so the
        // realized rate is total bytes over that span. Instantaneous links
        // (infinite rate) produce a zero span and are skipped.
        if let Some(last) = delivered.last() {
            let bytes: u64 = delivered.iter().map(|d| d.size).sum();
            self.ewma.observe(bytes, last.delivered_at - ctx.now);
        }
        delivered
    }
}

/// Forwards everything to the wrapped observer but rewrites the policy
/// label of quality samples to "Adaptive".
struct RelabelQuality<'o> {
    inner: &'o mut dyn SelectionObserver,
}

impl SelectionObserver for RelabelQuality<'_> {
    fn on_select(&mut self, round: u64, content: ContentId, decision: &SelectDecision) {
        self.inner.on_select(round, content, decision);
    }

    fn on_adapt(&mut self, round: u64, decision: &AdaptiveDecision) {
        self.inner.on_adapt(round, decision);
    }

    fn on_quality(&mut self, round: u64, sample: &QualitySample<'_>) {
        self.inner.on_quality(round, &QualitySample { policy: "Adaptive", ..*sample });
    }
}

impl NotificationScheduler for AdaptivePolicy {
    fn name(&self) -> &str {
        "Adaptive"
    }

    fn enqueue(&mut self, notification: QueuedNotification) {
        self.inner.enqueue(notification);
    }

    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification> {
        self.round_impl(ctx, &mut NoopObserver)
    }

    fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    fn backlog_bytes(&self) -> u64 {
        self.inner.backlog_bytes()
    }
}

impl Policy for AdaptivePolicy {
    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.round_impl(ctx, obs)
    }

    fn checkpoint(&self) -> PolicyCheckpoint {
        PolicyCheckpoint::Adaptive(Box::new(self.checkpoint_state()))
    }

    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy> {
        match ck {
            PolicyCheckpoint::Adaptive(c) => Ok(Self::from_checkpoint(*c)),
            other => Err(WrongPolicy { expected: "Adaptive", found: other.policy_name() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentFeatures, ContentKind, Interaction};
    use crate::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
    use crate::presentation::AudioPresentationSpec;
    use crate::scheduler::LinearCost;
    use std::sync::Arc;

    fn notification(id: u64, content_utility: f64, enqueued_at: f64) -> QueuedNotification {
        QueuedNotification {
            item: crate::content::ContentItem {
                id: ContentId::new(id),
                recipient: UserId::new(1),
                sender: None,
                kind: ContentKind::FriendFeed,
                track: TrackId::new(id),
                album: AlbumId::new(id),
                artist: ArtistId::new(id),
                arrival: enqueued_at,
                track_secs: 276.0,
                features: ContentFeatures::default(),
                interaction: Interaction::Hovered,
            },
            ladder: Arc::new(AudioPresentationSpec::paper_default().ladder()),
            content_utility,
            enqueued_at,
        }
    }

    const COST: LinearCost = LinearCost { fixed: 5.0, per_byte: 5e-4 };

    fn ctx_with_state(round: u64, grant: u64, state: NetworkState) -> RoundContext<'static> {
        RoundContext::builder(&COST)
            .round(round)
            .now(round as f64 * 3600.0)
            .online(state.is_online())
            .link_capacity(10_000_000)
            .data_grant(grant)
            .energy_grant(3_000.0)
            .net(NetSignal::observed(state))
            .build()
    }

    #[test]
    fn ewma_first_sample_is_the_estimate() {
        let mut e = EwmaThroughput::new(0.3);
        assert_eq!(e.estimate(), None);
        e.observe(1000, 2.0);
        assert_eq!(e.estimate(), Some(500.0));
        assert_eq!(e.bounds(), Some((500.0, 500.0)));
    }

    #[test]
    fn ewma_ignores_degenerate_samples() {
        let mut e = EwmaThroughput::new(0.5);
        e.observe(0, 1.0);
        e.observe(100, 0.0);
        e.observe(100, -1.0);
        e.observe_rate(f64::INFINITY);
        e.observe_rate(f64::NAN);
        assert_eq!(e.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaThroughput::new(0.0);
    }

    #[test]
    fn predicted_off_caps_to_metadata() {
        // Paper matrix: from OFF, P(Off next) = 0.5 ≥ threshold → cap 1.
        let mut p = AdaptivePolicy::builder().build();
        for i in 0..4 {
            p.enqueue(notification(i, 0.9, 0.0));
        }
        let delivered = p.run_round(&ctx_with_state(0, 50_000_000, NetworkState::Off));
        assert!(delivered.is_empty(), "offline round delivers nothing");
        // Next round comes back on cell, but the *last observation* was
        // OFF at the time shaping ran... the new observation (Cell) wins.
        let delivered = p.run_round(&ctx_with_state(1, 50_000_000, NetworkState::Cell));
        assert!(!delivered.is_empty());
        assert!(
            delivered.iter().all(|d| d.level <= 3),
            "flaky-cell rounds are capped at the cell level: {delivered:?}"
        );
    }

    #[test]
    fn stable_wifi_allows_full_ladder() {
        let mut p = AdaptivePolicy::builder().build();
        for i in 0..4 {
            p.enqueue(notification(i, 0.9, 0.0));
        }
        let delivered = p.run_round(&ctx_with_state(0, 50_000_000, NetworkState::Wifi));
        assert!(delivered.iter().any(|d| d.level == 6), "{delivered:?}");
    }

    #[test]
    fn stationary_fallback_when_no_observation() {
        // No NetSignal at all: the paper matrix's stationary distribution
        // is uniform, so P(off) = 1/3 < 0.5 and P(wifi) = 1/3 < 0.5 → the
        // cell cap applies.
        let mut p = AdaptivePolicy::builder().build();
        for i in 0..4 {
            p.enqueue(notification(i, 0.9, 0.0));
        }
        let ctx = RoundContext::builder(&COST)
            .link_capacity(10_000_000)
            .data_grant(50_000_000)
            .energy_grant(3_000.0)
            .build();
        let delivered = p.run_round(&ctx);
        assert!(!delivered.is_empty());
        assert!(delivered.iter().all(|d| d.level <= 3), "{delivered:?}");
        assert_eq!(p.last_state(), None);
    }

    #[test]
    fn deliveries_feed_the_estimator() {
        let mut p = AdaptivePolicy::builder().build();
        p.enqueue(notification(1, 0.9, 0.0));
        assert_eq!(p.ewma().estimate(), None);
        let delivered = p.run_round(&ctx_with_state(0, 50_000_000, NetworkState::Wifi));
        assert!(!delivered.is_empty());
        // link_capacity 10 MB over 3600 s ≈ 2777.8 B/s realized rate.
        let est = p.ewma().estimate().expect("estimator fed");
        assert!((est - 10_000_000.0 / 3_600.0).abs() < 1.0, "{est}");
    }

    #[test]
    fn grant_scales_down_with_low_throughput() {
        // Pre-seed a tiny throughput estimate via the driver signal: the
        // effective grant must drop below θ.
        let p = AdaptivePolicy::builder().build();
        let ctx = RoundContext::builder(&COST)
            .data_grant(1_000_000)
            .net(NetSignal::observed(NetworkState::Cell).with_throughput(10.0))
            .build();
        let d = p.shape(&ctx);
        // 10 B/s · 3600 s · P(online|cell)=0.75 · 0.9 = 24_300 bytes.
        assert!(d.grant_scaled);
        assert_eq!(d.data_grant, 24_300);
        assert_eq!(d.level_cap, 3);
    }

    #[test]
    fn grant_untouched_without_estimate() {
        let p = AdaptivePolicy::builder().build();
        let ctx = RoundContext::builder(&COST)
            .data_grant(1_000_000)
            .net(NetSignal::observed(NetworkState::Wifi))
            .build();
        let d = p.shape(&ctx);
        assert!(!d.grant_scaled);
        assert_eq!(d.data_grant, 1_000_000);
        assert_eq!(d.level_cap, u8::MAX);
    }

    #[test]
    fn driver_level_cap_tightens_prediction() {
        let p = AdaptivePolicy::builder().build();
        let ctx = RoundContext::builder(&COST)
            .data_grant(1_000_000)
            .net(NetSignal::observed(NetworkState::Wifi).with_level_cap(2))
            .build();
        // Prediction says full ladder, driver says ≤ 2: driver wins.
        assert_eq!(p.shape(&ctx).level_cap, 2);
    }

    #[test]
    fn checkpoint_roundtrips_estimator_state() {
        let mut p = AdaptivePolicy::builder().build();
        for i in 0..6 {
            p.enqueue(notification(i, 0.3 + 0.1 * i as f64, 0.0));
        }
        p.run_round(&ctx_with_state(0, 300_000, NetworkState::Cell));
        p.run_round(&ctx_with_state(1, 300_000, NetworkState::Wifi));
        assert!(p.ewma().estimate().is_some());

        let ck = Policy::checkpoint(&p);
        assert_eq!(ck.policy_name(), "Adaptive");
        let json = serde_json::to_string(&ck).unwrap();
        let back: PolicyCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(ck, back, "adaptive checkpoint must survive a JSON round trip");

        let mut restored = AdaptivePolicy::restore(back).unwrap();
        assert_eq!(restored.ewma(), p.ewma());
        assert_eq!(restored.last_state(), p.last_state());
        assert_eq!(restored.backlog(), p.backlog());

        // Both continue identically.
        for r in 2..5 {
            let ctx = ctx_with_state(r, 300_000, NetworkState::Cell);
            assert_eq!(p.run_round(&ctx), restored.run_round(&ctx), "diverged at round {r}");
        }
    }

    #[test]
    fn boxed_restore_dispatches_to_adaptive() {
        let p = AdaptivePolicy::builder().build();
        let restored: Box<dyn Policy + Send> = Policy::restore(Policy::checkpoint(&p)).unwrap();
        assert_eq!(restored.name(), "Adaptive");
    }

    #[test]
    fn wrong_policy_fails_loudly() {
        let p = AdaptivePolicy::builder().build();
        let err = RichNoteScheduler::restore(Policy::checkpoint(&p)).unwrap_err();
        assert_eq!(err, WrongPolicy { expected: "RichNote", found: "Adaptive" });
        let rn = RichNoteScheduler::builder().build();
        let err = AdaptivePolicy::restore(Policy::checkpoint(&rn)).unwrap_err();
        assert_eq!(err, WrongPolicy { expected: "Adaptive", found: "RichNote" });
    }

    #[test]
    fn on_adapt_reports_the_shaping_decision() {
        struct Recorder(Vec<(u64, AdaptiveDecision)>);
        impl SelectionObserver for Recorder {
            fn on_select(&mut self, _: u64, _: ContentId, _: &crate::policy::SelectDecision) {}
            fn on_adapt(&mut self, round: u64, d: &AdaptiveDecision) {
                self.0.push((round, *d));
            }
        }
        let mut p = AdaptivePolicy::builder().build();
        p.enqueue(notification(1, 0.9, 0.0));
        let mut obs = Recorder(Vec::new());
        p.select_round(&ctx_with_state(0, 300_000, NetworkState::Cell), &mut obs);
        assert_eq!(obs.0.len(), 1);
        let (round, d) = obs.0[0];
        assert_eq!(round, 0);
        assert_eq!(d.level_cap, 3);
        assert!((d.predicted_offline - 0.25).abs() < 1e-12);
    }
}
