//! Constants from the RichNote paper's experimental setup (Sec. V-C).
//!
//! These are the defaults used throughout the reproduction; every harness
//! accepts overrides but starts from these values.

/// Duration of one scheduling round: 1 hour (3600 s).
pub const ROUND_SECS: f64 = 3600.0;

/// Number of rounds in the one-week evaluation horizon.
pub const ROUNDS_PER_WEEK: u64 = 7 * 24;

/// Energy budget per round, κ: 3 kJ per hour (paper Sec. V-C).
pub const KAPPA_JOULES_PER_ROUND: f64 = 3_000.0;

/// Weekly energy ceiling implied by κ: 3 kJ/h × 168 h = 504 kJ (the paper
/// quotes "500KJ ... 3KJ per hour for 7 days").
pub const WEEKLY_ENERGY_CEILING_JOULES: f64 = KAPPA_JOULES_PER_ROUND * ROUNDS_PER_WEEK as f64;

/// Lyapunov control knob V (paper Sec. V-C).
pub const LYAPUNOV_V: f64 = 1_000.0;

/// Average notification metadata size: 200 bytes (track/artist/album names
/// plus a URL; paper Sec. V-C, citing its reference 2).
pub const METADATA_BYTES: u64 = 200;

/// Spotify default audio bitrate used for previews: 160 kbps.
pub const PREVIEW_BITRATE_KBPS: u32 = 160;

/// Bytes per second of preview at 160 kbps: the paper approximates a
/// d-second preview as d × 20 KB.
pub const PREVIEW_BYTES_PER_SEC: u64 = 20_000;

/// Preview durations used as presentation levels 2..=6 (seconds).
pub const PREVIEW_DURATIONS_SECS: [f64; 5] = [5.0, 10.0, 20.0, 30.0, 40.0];

/// Fraction of a notification's presentation utility attributed to the
/// metadata alone (paper: "a small portion of utility (about 1%) is due to
/// metadata").
pub const METADATA_UTILITY_FRACTION: f64 = 0.01;

/// Coefficients of the fitted logarithmic duration-utility function
/// `util(d) = A + B·ln(1 + d)` (paper Eq. 8).
pub const LOG_UTILITY_A: f64 = -0.397;
/// See [`LOG_UTILITY_A`].
pub const LOG_UTILITY_B: f64 = 0.352;

/// Coefficients of the fitted polynomial duration-utility function
/// `util(d) = A·(1 − d/D)^B` (paper Eq. 9).
pub const POLY_UTILITY_A: f64 = 0.253;
/// See [`POLY_UTILITY_A`].
pub const POLY_UTILITY_B: f64 = 2.087;
/// See [`POLY_UTILITY_A`].
pub const POLY_UTILITY_D: f64 = 40.0;

/// Number of users simulated in the paper's evaluation (top-10k by
/// delivered notifications).
pub const PAPER_USER_COUNT: usize = 10_000;

/// Budget sweep used in Figures 3–5 (weekly data budgets in MB).
pub const BUDGET_SWEEP_MB: [u64; 8] = [1, 3, 5, 10, 20, 30, 50, 100];

/// Classifier quality reported by the paper for the Spotify traces with a
/// Random Forest: precision 0.700, accuracy 0.689 (five-fold CV).
pub const PAPER_RF_PRECISION: f64 = 0.700;
/// See [`PAPER_RF_PRECISION`].
pub const PAPER_RF_ACCURACY: f64 = 0.689;

/// Average full track duration in the duration survey (seconds).
pub const SURVEY_MEAN_TRACK_SECS: f64 = 276.0;

/// Number of participants in the duration survey.
pub const SURVEY_PARTICIPANTS: usize = 80;

/// Converts a weekly data budget in megabytes into the per-round grant θ.
///
/// ```
/// use richnote_core::paper::{theta_bytes_per_round, ROUNDS_PER_WEEK};
/// let theta = theta_bytes_per_round(168);
/// assert_eq!(theta, 1_000_000); // 168 MB/week == 1 MB per hourly round
/// ```
pub const fn theta_bytes_per_round(weekly_mb: u64) -> u64 {
    weekly_mb * 1_000_000 / ROUNDS_PER_WEEK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_ceiling_matches_paper_quote() {
        // The paper rounds 504 kJ down to "500KJ".
        assert!((WEEKLY_ENERGY_CEILING_JOULES - 504_000.0).abs() < 1e-9);
    }

    #[test]
    fn preview_size_matches_paper_rule_of_thumb() {
        // d × 20KB for a d-second preview.
        assert_eq!(PREVIEW_BYTES_PER_SEC * 10, 200_000);
    }

    #[test]
    fn theta_is_weekly_budget_split_across_rounds() {
        assert_eq!(theta_bytes_per_round(0), 0);
        // 1 MB/week ≈ 5952 bytes/round.
        assert_eq!(theta_bytes_per_round(1), 1_000_000 / 168);
    }

    #[test]
    fn log_utility_is_positive_for_all_paper_durations() {
        for d in PREVIEW_DURATIONS_SECS {
            let u = LOG_UTILITY_A + LOG_UTILITY_B * (1.0 + d).ln();
            assert!(u > 0.0, "util({d}) = {u} must be positive");
        }
    }
}
