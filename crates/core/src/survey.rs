//! Presentation-utility surveys (Sec. V-B).
//!
//! The paper derives presentation utility from two subjective user studies:
//!
//! 1. a **rate × duration grid study**: 4 sampling rates × 5 durations = 20
//!    audio samples rated 0–5; scores ranged 0.3–3.3 and Pareto pruning left
//!    only *six useful presentations* (Fig. 2(a));
//! 2. a **duration study** among 80 users who pressed *stop* when a sample
//!    was "barely enough for a good notification"; the CDF of stop durations
//!    becomes `util(d)`, fitted by a logarithmic and a polynomial model
//!    (Fig. 2(b), Eq. 8/9).
//!
//! The raw Spotify-era survey responses are not available, so this module
//! synthesizes a survey population whose stop-duration distribution follows
//! the paper's fitted logarithmic curve plus noise, and provides the
//! regression machinery that re-derives Eq. 8/9 from the synthetic data.

use crate::error::SurveyFitError;
use crate::paper;
use crate::presentation::CandidatePresentation;
use crate::utility::DurationUtility;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sampling rates of the grid study, in kHz.
pub const SURVEY_RATES_KHZ: [u32; 4] = [8, 16, 32, 44];

/// Durations of the grid study, in seconds.
pub const SURVEY_DURATIONS_SECS: [f64; 5] = [5.0, 10.0, 20.0, 30.0, 40.0];

/// Mean survey scores for each (rate, duration) cell of the grid study,
/// modeled after the paper's description: scores span 0.3–3.3 and exactly
/// six cells survive Pareto pruning.
///
/// Rows follow [`SURVEY_RATES_KHZ`], columns follow
/// [`SURVEY_DURATIONS_SECS`]. Low-rate audio *loses* appeal at long
/// durations (listening to 40 s of 8 kHz audio is unpleasant), which is what
/// produces the dominated region of Fig. 2(a).
pub const SURVEY_GRID_SCORES: [[f64; 5]; 4] = [
    [0.30, 0.50, 0.45, 0.40, 0.35], // 8 kHz
    [0.90, 1.40, 1.60, 1.55, 1.50], // 16 kHz
    [1.10, 1.55, 1.58, 1.60, 1.60], // 32 kHz
    [1.20, 1.55, 2.90, 2.90, 3.30], // 44 kHz
];

/// A labeled cell of the grid study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Sampling rate in kHz.
    pub rate_khz: u32,
    /// Sample duration in seconds.
    pub duration_secs: f64,
    /// Uncompressed sample size in bytes (16-bit mono PCM).
    pub size: u64,
    /// Mean survey score (0–5 scale).
    pub score: f64,
}

impl GridCell {
    /// Converts the cell into a [`CandidatePresentation`] for Pareto
    /// pruning; `label_id` encodes `rate_index * 5 + duration_index`.
    pub fn to_candidate(&self, label_id: usize) -> CandidatePresentation {
        CandidatePresentation { size: self.size, utility: self.score, label_id }
    }
}

/// Materializes the 20-cell grid study (Fig. 2(a) input).
///
/// Sizes assume 16-bit mono PCM: `rate_khz × 1000 × 2` bytes per second.
///
/// ```
/// use richnote_core::survey::survey_grid;
/// let grid = survey_grid();
/// assert_eq!(grid.len(), 20);
/// ```
pub fn survey_grid() -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(20);
    for (ri, &rate) in SURVEY_RATES_KHZ.iter().enumerate() {
        for (di, &d) in SURVEY_DURATIONS_SECS.iter().enumerate() {
            let bytes_per_sec = u64::from(rate) * 1000 * 2;
            cells.push(GridCell {
                rate_khz: rate,
                duration_secs: d,
                size: (d * bytes_per_sec as f64).round() as u64,
                score: SURVEY_GRID_SCORES[ri][di],
            });
        }
    }
    cells
}

/// One participant's stop duration in the duration study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopResponse {
    /// Duration (seconds) at which the participant stopped the sample.
    pub stop_secs: f64,
}

/// Synthesizes a duration-study population of `n` participants.
///
/// Stop durations are drawn so their CDF follows the paper's logarithmic
/// utility curve (Eq. 8) with multiplicative noise of relative magnitude
/// `noise` — inverting `u = a + b·ln(1 + d)` gives
/// `d = exp((u − a)/b) − 1` for a uniform quantile `u`.
pub fn synthesize_stop_survey<R: Rng>(rng: &mut R, n: usize, noise: f64) -> Vec<StopResponse> {
    let (a, b) = (paper::LOG_UTILITY_A, paper::LOG_UTILITY_B);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let d = ((u - a) / b).exp() - 1.0;
            let jitter = 1.0 + noise * rng.gen_range(-1.0..1.0);
            StopResponse { stop_secs: (d * jitter).clamp(0.5, paper::SURVEY_MEAN_TRACK_SECS) }
        })
        .collect()
}

/// Converts stop responses into `(duration, utility)` points by evaluating
/// the empirical CDF at `grid` durations — "CDF of duration is translated
/// into utility value" (Sec. V-B).
pub fn empirical_utility(responses: &[StopResponse], grid: &[f64]) -> Vec<(f64, f64)> {
    let n = responses.len().max(1) as f64;
    grid.iter()
        .map(|&d| {
            let below = responses.iter().filter(|r| r.stop_secs <= d).count() as f64;
            (d, below / n)
        })
        .collect()
}

/// Fits the logarithmic model `util(d) = a + b·ln(1 + d)` (Eq. 8) by
/// ordinary least squares on `x = ln(1 + d)`.
///
/// # Errors
///
/// Returns [`SurveyFitError`] when fewer than two points are supplied or
/// all durations coincide.
pub fn fit_logarithmic(points: &[(f64, f64)]) -> Result<DurationUtility, SurveyFitError> {
    let xy: Vec<(f64, f64)> = points.iter().map(|&(d, u)| ((1.0 + d).ln(), u)).collect();
    let (a, b) = least_squares(&xy)?;
    Ok(DurationUtility::Logarithmic { a, b })
}

/// Fits the polynomial model `util(d) = a·(1 − d/D)^b` (Eq. 9) by linear
/// regression in log–log space: `ln u = ln a + b·ln(1 − d/D)`.
///
/// Points with `u ≤ 0` are skipped (outside the log domain); points with
/// `d ≥ D` are rejected.
///
/// # Errors
///
/// Returns [`SurveyFitError`] on out-of-domain durations or when fewer than
/// two usable points remain.
pub fn fit_polynomial(
    points: &[(f64, f64)],
    d_max: f64,
) -> Result<DurationUtility, SurveyFitError> {
    let mut xy = Vec::with_capacity(points.len());
    for &(d, u) in points {
        if d >= d_max {
            return Err(SurveyFitError::OutOfDomain { duration: d });
        }
        if u > 0.0 {
            xy.push(((1.0 - d / d_max).ln(), u.ln()));
        }
    }
    let (ln_a, b) = least_squares(&xy)?;
    Ok(DurationUtility::Polynomial { a: ln_a.exp(), b, d_max })
}

/// Ordinary least squares for `y = a + b·x`; returns `(a, b)`.
fn least_squares(xy: &[(f64, f64)]) -> Result<(f64, f64), SurveyFitError> {
    if xy.len() < 2 {
        return Err(SurveyFitError::TooFewPoints { found: xy.len() });
    }
    let n = xy.len() as f64;
    let sx: f64 = xy.iter().map(|p| p.0).sum();
    let sy: f64 = xy.iter().map(|p| p.1).sum();
    let sxx: f64 = xy.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = xy.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(SurveyFitError::DegenerateDesign);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Ok((a, b))
}

/// Outcome of the Fig. 2(b) comparison: both fits plus their SSE against the
/// empirical points. The paper finds the logarithmic fit better.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitComparison {
    /// Fitted logarithmic model.
    pub logarithmic: DurationUtility,
    /// Fitted polynomial model.
    pub polynomial: DurationUtility,
    /// Sum of squared errors of the logarithmic fit.
    pub log_sse: f64,
    /// Sum of squared errors of the polynomial fit.
    pub poly_sse: f64,
}

impl FitComparison {
    /// Runs both fits against empirical `(duration, utility)` points.
    ///
    /// # Errors
    ///
    /// Propagates [`SurveyFitError`] from either fit.
    pub fn fit(points: &[(f64, f64)], d_max: f64) -> Result<Self, SurveyFitError> {
        let logarithmic = fit_logarithmic(points)?;
        let polynomial = fit_polynomial(points, d_max)?;
        Ok(Self {
            log_sse: logarithmic.sse(points),
            poly_sse: polynomial.sse(points),
            logarithmic,
            polynomial,
        })
    }

    /// Whether the logarithmic model fits at least as well, as in the paper.
    pub fn log_fits_better(&self) -> bool {
        self.log_sse <= self.poly_sse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::pareto_frontier;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn grid_has_twenty_cells_with_paper_score_range() {
        let grid = survey_grid();
        assert_eq!(grid.len(), 20);
        let min = grid.iter().map(|c| c.score).fold(f64::INFINITY, f64::min);
        let max = grid.iter().map(|c| c.score).fold(f64::NEG_INFINITY, f64::max);
        assert!((min - 0.3).abs() < 1e-12);
        assert!((max - 3.3).abs() < 1e-12);
    }

    #[test]
    fn grid_prunes_to_six_useful_presentations() {
        // Matches the paper: "resulted in only six useful presentations".
        let grid = survey_grid();
        let cands: Vec<_> = grid.iter().enumerate().map(|(i, c)| c.to_candidate(i)).collect();
        let frontier = pareto_frontier(&cands);
        assert_eq!(frontier.len(), 6, "{frontier:?}");
    }

    #[test]
    fn grid_sizes_follow_pcm_arithmetic() {
        let grid = survey_grid();
        let cell = grid.iter().find(|c| c.rate_khz == 16 && c.duration_secs == 10.0).unwrap();
        assert_eq!(cell.size, 320_000);
    }

    #[test]
    fn synthetic_stop_survey_recovers_log_constants() {
        let mut rng = SmallRng::seed_from_u64(7);
        let responses = synthesize_stop_survey(&mut rng, 20_000, 0.02);
        let grid: Vec<f64> = (1..=45).map(f64::from).collect();
        let points = empirical_utility(&responses, &grid);
        let fitted = fit_logarithmic(&points).unwrap();
        match fitted {
            DurationUtility::Logarithmic { a, b } => {
                assert!((a - paper::LOG_UTILITY_A).abs() < 0.08, "a = {a}");
                assert!((b - paper::LOG_UTILITY_B).abs() < 0.04, "b = {b}");
            }
            other => panic!("expected logarithmic, got {other:?}"),
        }
    }

    #[test]
    fn log_fits_better_than_poly_like_fig2b() {
        let mut rng = SmallRng::seed_from_u64(11);
        let responses = synthesize_stop_survey(&mut rng, 5_000, 0.05);
        let grid: Vec<f64> = (2..40).step_by(2).map(f64::from).collect();
        let points = empirical_utility(&responses, &grid);
        let cmp = FitComparison::fit(&points, 60.0).unwrap();
        assert!(cmp.log_fits_better(), "log {} vs poly {}", cmp.log_sse, cmp.poly_sse);
    }

    #[test]
    fn empirical_utility_is_a_cdf() {
        let responses: Vec<StopResponse> =
            [2.0, 4.0, 8.0, 16.0].iter().map(|&d| StopResponse { stop_secs: d }).collect();
        let points = empirical_utility(&responses, &[1.0, 4.0, 20.0]);
        assert_eq!(points[0].1, 0.0);
        assert_eq!(points[1].1, 0.5);
        assert_eq!(points[2].1, 1.0);
    }

    #[test]
    fn fit_rejects_too_few_points() {
        assert!(matches!(
            fit_logarithmic(&[(5.0, 0.2)]),
            Err(SurveyFitError::TooFewPoints { found: 1 })
        ));
    }

    #[test]
    fn fit_rejects_degenerate_design() {
        let pts = [(5.0, 0.2), (5.0, 0.4), (5.0, 0.6)];
        assert_eq!(fit_logarithmic(&pts), Err(SurveyFitError::DegenerateDesign));
    }

    #[test]
    fn poly_fit_rejects_out_of_domain() {
        let pts = [(5.0, 0.2), (45.0, 0.9)];
        assert!(matches!(fit_polynomial(&pts, 40.0), Err(SurveyFitError::OutOfDomain { .. })));
    }

    #[test]
    fn poly_fit_recovers_known_curve() {
        let truth = DurationUtility::Polynomial { a: 0.253, b: 2.087, d_max: 40.0 };
        let pts: Vec<(f64, f64)> =
            [2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0].iter().map(|&d| (d, truth.eval(d))).collect();
        match fit_polynomial(&pts, 40.0).unwrap() {
            DurationUtility::Polynomial { a, b, .. } => {
                assert!((a - 0.253).abs() < 1e-6);
                assert!((b - 2.087).abs() < 1e-6);
            }
            other => panic!("expected polynomial, got {other:?}"),
        }
    }

    #[test]
    fn log_fit_recovers_known_curve_exactly() {
        let truth = DurationUtility::paper_logarithmic();
        let pts: Vec<(f64, f64)> =
            [5.0, 10.0, 20.0, 40.0].iter().map(|&d| (d, truth.eval(d))).collect();
        match fit_logarithmic(&pts).unwrap() {
            DurationUtility::Logarithmic { a, b } => {
                assert!((a - paper::LOG_UTILITY_A).abs() < 1e-9);
                assert!((b - paper::LOG_UTILITY_B).abs() < 1e-9);
            }
            other => panic!("expected logarithmic, got {other:?}"),
        }
    }
}
