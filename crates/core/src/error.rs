//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// Error building or validating a [`PresentationLadder`].
///
/// [`PresentationLadder`]: crate::presentation::PresentationLadder
#[derive(Debug, Clone, PartialEq)]
pub enum LadderError {
    /// The ladder has no presentation beyond level 0.
    Empty,
    /// Two successive levels do not strictly increase in size.
    NonMonotoneSize {
        /// The lower of the two offending levels.
        level: u8,
    },
    /// Two successive levels do not strictly increase in utility.
    NonMonotoneUtility {
        /// The lower of the two offending levels.
        level: u8,
    },
    /// A utility value is not a finite number.
    NonFiniteUtility {
        /// Level carrying the non-finite value.
        level: u8,
    },
    /// Level 0 must have zero size and zero utility.
    NonZeroBase,
}

impl fmt::Display for LadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::Empty => write!(f, "presentation ladder has no deliverable level"),
            LadderError::NonMonotoneSize { level } => write!(
                f,
                "presentation size does not strictly increase between levels {} and {}",
                level,
                level + 1
            ),
            LadderError::NonMonotoneUtility { level } => write!(
                f,
                "presentation utility does not strictly increase between levels {} and {}",
                level,
                level + 1
            ),
            LadderError::NonFiniteUtility { level } => {
                write!(f, "presentation utility at level {level} is not finite")
            }
            LadderError::NonZeroBase => {
                write!(f, "level 0 must have zero size and zero utility")
            }
        }
    }
}

impl Error for LadderError {}

/// Error fitting a duration-utility function to survey data.
#[derive(Debug, Clone, PartialEq)]
pub enum SurveyFitError {
    /// Fewer than two usable data points were supplied.
    TooFewPoints {
        /// Number of usable points found.
        found: usize,
    },
    /// All x-values are identical, so no slope can be estimated.
    DegenerateDesign,
    /// A sample fell outside the domain of the model being fitted
    /// (e.g. a duration at or beyond `D` for the polynomial model).
    OutOfDomain {
        /// The offending duration in seconds.
        duration: f64,
    },
}

impl fmt::Display for SurveyFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurveyFitError::TooFewPoints { found } => {
                write!(f, "need at least two usable survey points, found {found}")
            }
            SurveyFitError::DegenerateDesign => {
                write!(f, "survey points share a single x-value; slope is undefined")
            }
            SurveyFitError::OutOfDomain { duration } => {
                write!(f, "duration {duration}s is outside the model domain")
            }
        }
    }
}

impl Error for SurveyFitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_error_messages_are_lowercase_and_specific() {
        let msg = LadderError::NonMonotoneSize { level: 2 }.to_string();
        assert!(msg.contains("levels 2 and 3"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn survey_error_reports_counts() {
        let msg = SurveyFitError::TooFewPoints { found: 1 }.to_string();
        assert!(msg.contains("found 1"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LadderError>();
        assert_err::<SurveyFitError>();
    }
}
