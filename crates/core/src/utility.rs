//! Utility modeling (Sec. III-A): content utility, presentation utility and
//! their combination `U(i, j) = Uc(i) × Up(i, j)`.

use crate::content::ContentItem;
use crate::paper;
use serde::{Deserialize, Serialize};

/// Source of content utility `Uc(i)` — "how likely the user is to consume
/// content `i`".
///
/// The production implementation is a trained classifier (see the
/// `richnote-forest` crate); tests and baselines use constant or oracle
/// implementations.
pub trait ContentUtility {
    /// Returns `Uc(i) ∈ [0, 1]` for the item.
    fn content_utility(&self, item: &ContentItem) -> f64;
}

/// A constant content utility, useful as a null model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantUtility(pub f64);

impl ContentUtility for ConstantUtility {
    fn content_utility(&self, _item: &ContentItem) -> f64 {
        self.0.clamp(0.0, 1.0)
    }
}

/// An oracle that reads the ground-truth interaction: clicked items get
/// utility 1, everything else 0. Used to upper-bound achievable precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OracleUtility;

impl ContentUtility for OracleUtility {
    fn content_utility(&self, item: &ContentItem) -> f64 {
        if item.interaction.is_click() {
            1.0
        } else {
            0.0
        }
    }
}

impl<F> ContentUtility for F
where
    F: Fn(&ContentItem) -> f64,
{
    fn content_utility(&self, item: &ContentItem) -> f64 {
        self(item)
    }
}

/// Duration→utility model for audio previews, fitted from the user survey
/// (Sec. V-B).
///
/// Two functional forms are supported, exactly as in the paper:
///
/// * logarithmic, Eq. 8: `util(d) = a + b·ln(1 + d)`;
/// * polynomial, Eq. 9: `util(d) = a·(1 − d/D)^b`.
///
/// ```
/// use richnote_core::utility::DurationUtility;
///
/// let log = DurationUtility::paper_logarithmic();
/// assert!(log.eval(40.0) > log.eval(5.0)); // longer previews are better
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DurationUtility {
    /// `util(d) = a + b·ln(1 + d)`.
    Logarithmic {
        /// Intercept `a`.
        a: f64,
        /// Slope `b` on `ln(1 + d)`.
        b: f64,
    },
    /// `util(d) = a·(1 − d/d_max)^b`.
    Polynomial {
        /// Scale `a`.
        a: f64,
        /// Exponent `b`.
        b: f64,
        /// Normalizing duration `D`.
        d_max: f64,
    },
    /// The monotone-increasing counterpart of [`Self::Polynomial`]:
    /// `util(d) = a·(1 − (1 − d/d_max)^b)`, rising from 0 at `d = 0` to
    /// `a` at `d = d_max`. Used by the utility-function ablation, where the
    /// decreasing Eq. 9 form cannot drive a monotone presentation ladder.
    RisingPolynomial {
        /// Asymptotic utility `a`.
        a: f64,
        /// Exponent `b`.
        b: f64,
        /// Saturating duration `D`.
        d_max: f64,
    },
}

impl DurationUtility {
    /// The paper's fitted logarithmic model (Eq. 8):
    /// `util(d) = −0.397 + 0.352·ln(1 + d)`.
    pub fn paper_logarithmic() -> Self {
        DurationUtility::Logarithmic { a: paper::LOG_UTILITY_A, b: paper::LOG_UTILITY_B }
    }

    /// The paper's fitted polynomial model (Eq. 9):
    /// `util(d) = 0.253·(1 − d/40)^2.087`.
    pub fn paper_polynomial() -> Self {
        DurationUtility::Polynomial {
            a: paper::POLY_UTILITY_A,
            b: paper::POLY_UTILITY_B,
            d_max: paper::POLY_UTILITY_D,
        }
    }

    /// Evaluates the model at duration `d` seconds.
    ///
    /// Values are *not* clamped; callers deciding on utilities for a ladder
    /// typically clamp negatives to zero (a 0-second preview has no value).
    pub fn eval(&self, d: f64) -> f64 {
        match *self {
            DurationUtility::Logarithmic { a, b } => a + b * (1.0 + d).ln(),
            DurationUtility::Polynomial { a, b, d_max } => {
                let x = (1.0 - d / d_max).max(0.0);
                a * x.powf(b)
            }
            DurationUtility::RisingPolynomial { a, b, d_max } => {
                let x = (1.0 - d / d_max).max(0.0);
                a * (1.0 - x.powf(b))
            }
        }
    }

    /// The rising counterpart of the paper's Eq. 9 constants, scaled so its
    /// ceiling matches the logarithmic curve at 40 s (for the ablation).
    pub fn paper_rising_polynomial() -> Self {
        DurationUtility::RisingPolynomial {
            a: paper::LOG_UTILITY_A + paper::LOG_UTILITY_B * (1.0 + paper::POLY_UTILITY_D).ln(),
            b: paper::POLY_UTILITY_B,
            d_max: paper::POLY_UTILITY_D,
        }
    }

    /// Sum of squared residuals against observed `(duration, utility)`
    /// points — the goodness-of-fit statistic behind Fig. 2(b).
    pub fn sse(&self, points: &[(f64, f64)]) -> f64 {
        points
            .iter()
            .map(|&(d, u)| {
                let r = self.eval(d) - u;
                r * r
            })
            .sum()
    }
}

/// Combines content and presentation utility per Eq. 1:
/// `U(i, j) = Uc(i) × Up(i, j)`.
///
/// ```
/// use richnote_core::utility::combined_utility;
/// assert_eq!(combined_utility(0.5, 0.8), 0.4);
/// ```
pub fn combined_utility(content_utility: f64, presentation_utility: f64) -> f64 {
    content_utility * presentation_utility
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentFeatures, ContentKind, Interaction};
    use crate::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};

    fn item(interaction: Interaction) -> ContentItem {
        ContentItem {
            id: ContentId::new(1),
            recipient: UserId::new(1),
            sender: None,
            kind: ContentKind::AlbumRelease,
            track: TrackId::new(1),
            album: AlbumId::new(1),
            artist: ArtistId::new(1),
            arrival: 0.0,
            track_secs: 200.0,
            features: ContentFeatures::default(),
            interaction,
        }
    }

    #[test]
    fn paper_log_matches_quoted_values() {
        let f = DurationUtility::paper_logarithmic();
        // util(5) = -0.397 + 0.352 ln 6 ≈ 0.2337
        assert!((f.eval(5.0) - 0.2337).abs() < 1e-3);
        // util(40) = -0.397 + 0.352 ln 41 ≈ 0.9101
        assert!((f.eval(40.0) - 0.9101).abs() < 1e-3);
    }

    #[test]
    fn log_model_is_monotone_increasing() {
        let f = DurationUtility::paper_logarithmic();
        let mut last = f64::NEG_INFINITY;
        for d in [0.0, 5.0, 10.0, 20.0, 30.0, 40.0] {
            let u = f.eval(d);
            assert!(u > last);
            last = u;
        }
    }

    #[test]
    fn poly_model_matches_quoted_constants() {
        let f = DurationUtility::paper_polynomial();
        // At d = 0: a·1^b = 0.253.
        assert!((f.eval(0.0) - 0.253).abs() < 1e-12);
        // At d = D: zero.
        assert!(f.eval(40.0).abs() < 1e-12);
        // Beyond D the base clamps at 0 instead of going NaN.
        assert_eq!(f.eval(45.0), 0.0);
    }

    #[test]
    fn rising_polynomial_is_monotone_and_saturates() {
        let f = DurationUtility::paper_rising_polynomial();
        let mut last = -1.0;
        for d in [0.0, 5.0, 10.0, 20.0, 30.0, 40.0] {
            let u = f.eval(d);
            assert!(u >= last, "util({d}) = {u} dropped below {last}");
            last = u;
        }
        assert!(f.eval(0.0).abs() < 1e-12);
        // Ceiling matches the log curve at 40 s by construction.
        let log = DurationUtility::paper_logarithmic();
        assert!((f.eval(40.0) - log.eval(40.0)).abs() < 1e-9);
        // Saturates past d_max.
        assert_eq!(f.eval(50.0), f.eval(40.0));
    }

    #[test]
    fn sse_is_zero_on_own_curve() {
        let f = DurationUtility::paper_logarithmic();
        let pts: Vec<(f64, f64)> = [5.0, 10.0, 20.0].iter().map(|&d| (d, f.eval(d))).collect();
        assert!(f.sse(&pts) < 1e-20);
        assert!(DurationUtility::paper_polynomial().sse(&pts) > 0.0);
    }

    #[test]
    fn combined_utility_is_a_product() {
        assert_eq!(combined_utility(0.0, 0.9), 0.0);
        assert_eq!(combined_utility(1.0, 0.9), 0.9);
    }

    #[test]
    fn oracle_reads_ground_truth() {
        assert_eq!(OracleUtility.content_utility(&item(Interaction::Clicked { at: 1.0 })), 1.0);
        assert_eq!(OracleUtility.content_utility(&item(Interaction::Hovered)), 0.0);
    }

    #[test]
    fn constant_utility_clamps() {
        assert_eq!(ConstantUtility(2.0).content_utility(&item(Interaction::Hovered)), 1.0);
        assert_eq!(ConstantUtility(-1.0).content_utility(&item(Interaction::Hovered)), 0.0);
    }

    #[test]
    fn closures_implement_content_utility() {
        let f = |it: &ContentItem| it.features.track_popularity / 100.0;
        assert!((f.content_utility(&item(Interaction::Hovered)) - 0.5).abs() < 1e-12);
    }
}
