//! The content-item data model: what a notification is *about*.
//!
//! A [`ContentItem`] corresponds to one candidate notification for one user.
//! It carries the feature values the paper's content-utility classifier
//! consumes (social tie, popularity, temporal features) plus ground-truth
//! interaction data (click/hover) when the item originates from a trace.

use crate::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of publication the notification originates from, mirroring the
/// three Spotify topic families (Sec. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentKind {
    /// A friend started streaming a music track (real-time mode feed).
    FriendFeed,
    /// A followed artist released a new album (batch mode).
    AlbumRelease,
    /// A followed shared playlist was updated (batch mode).
    PlaylistUpdate,
}

impl ContentKind {
    /// All kinds, in a stable order.
    pub const ALL: [ContentKind; 3] =
        [ContentKind::FriendFeed, ContentKind::AlbumRelease, ContentKind::PlaylistUpdate];

    /// Whether Spotify delivers this kind in real-time mode (friend feeds)
    /// rather than batch mode.
    pub fn is_realtime(self) -> bool {
        matches!(self, ContentKind::FriendFeed)
    }
}

impl fmt::Display for ContentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContentKind::FriendFeed => "friend-feed",
            ContentKind::AlbumRelease => "album-release",
            ContentKind::PlaylistUpdate => "playlist-update",
        };
        f.write_str(s)
    }
}

/// Strength of the social tie between the sender and the recipient of a
/// notification, one of the classifier features (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocialTie {
    /// No edge in the social graph (e.g. a global artist notification).
    None,
    /// The recipient follows the sender (one-directional edge).
    Follows,
    /// Mutual follow relationship.
    Mutual,
    /// The sender is one of the recipient's favorite artists.
    FavoriteArtist,
}

impl SocialTie {
    /// Encodes the tie as an ordinal feature value in `[0, 1]`.
    ///
    /// Stronger ties map to larger values, matching the paper's intuition
    /// that "a notification from a friend or favorite artist has a higher
    /// utility".
    pub fn strength(self) -> f64 {
        match self {
            SocialTie::None => 0.0,
            SocialTie::Follows => 0.4,
            SocialTie::Mutual => 0.7,
            SocialTie::FavoriteArtist => 1.0,
        }
    }
}

/// Ground-truth user interaction with a delivered notification, as mined
/// from mouse-activity logs (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Interaction {
    /// The user clicked the notification at the given trace time (seconds).
    Clicked {
        /// Trace time of the click, in seconds from trace start.
        at: f64,
    },
    /// The user hovered over the notification without clicking.
    Hovered,
    /// No recorded mouse activity (filtered out of classifier training).
    NoActivity,
}

impl Interaction {
    /// Whether the interaction is a click.
    pub fn is_click(self) -> bool {
        matches!(self, Interaction::Clicked { .. })
    }

    /// The click time, if the interaction is a click.
    pub fn click_time(self) -> Option<f64> {
        match self {
            Interaction::Clicked { at } => Some(at),
            _ => None,
        }
    }
}

/// The feature vector the content-utility classifier consumes (Sec. V-A):
/// social tie, track/album/artist popularity, and temporal context.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentFeatures {
    /// Social tie between sender and recipient.
    pub tie: SocialTie,
    /// Track popularity, normalized 1–100 (Spotify public API convention).
    pub track_popularity: f64,
    /// Album popularity, normalized 1–100.
    pub album_popularity: f64,
    /// Artist popularity, normalized 1–100.
    pub artist_popularity: f64,
    /// Whether the notification was generated on a weekend.
    pub weekend: bool,
    /// Whether the notification was generated at night (22:00–06:00).
    pub night: bool,
}

impl ContentFeatures {
    /// Flattens the features into the numeric vector fed to the classifier.
    ///
    /// Order: tie strength, track/album/artist popularity (rescaled to
    /// `[0,1]`), weekend flag, night flag.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.tie.strength(),
            self.track_popularity / 100.0,
            self.album_popularity / 100.0,
            self.artist_popularity / 100.0,
            f64::from(u8::from(self.weekend)),
            f64::from(u8::from(self.night)),
        ]
    }

    /// Names of the feature columns, aligned with [`Self::to_vec`].
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "social_tie",
            "track_popularity",
            "album_popularity",
            "artist_popularity",
            "weekend",
            "night",
        ]
    }
}

impl Default for ContentFeatures {
    fn default() -> Self {
        Self {
            tie: SocialTie::None,
            track_popularity: 50.0,
            album_popularity: 50.0,
            artist_popularity: 50.0,
            weekend: false,
            night: false,
        }
    }
}

/// One candidate notification for one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentItem {
    /// Unique identifier of this notification.
    pub id: ContentId,
    /// Recipient user.
    pub recipient: UserId,
    /// Sending user, when the publication has a human sender (friend feeds).
    pub sender: Option<UserId>,
    /// Kind of publication.
    pub kind: ContentKind,
    /// Track the notification is about.
    pub track: TrackId,
    /// Album of the track.
    pub album: AlbumId,
    /// Artist of the track.
    pub artist: ArtistId,
    /// Arrival time at the broker, seconds from trace start.
    pub arrival: f64,
    /// Full duration of the underlying track, seconds.
    pub track_secs: f64,
    /// Classifier features.
    pub features: ContentFeatures,
    /// Ground-truth interaction from the trace (used only for evaluation,
    /// never visible to the scheduler).
    pub interaction: Interaction,
}

impl ContentItem {
    /// Round index this item arrives in, for a given round length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `round_secs` is not positive.
    pub fn arrival_round(&self, round_secs: f64) -> u64 {
        debug_assert!(round_secs > 0.0, "round length must be positive");
        (self.arrival / round_secs).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_item() -> ContentItem {
        ContentItem {
            id: ContentId::new(1),
            recipient: UserId::new(2),
            sender: Some(UserId::new(3)),
            kind: ContentKind::FriendFeed,
            track: TrackId::new(4),
            album: AlbumId::new(5),
            artist: ArtistId::new(6),
            arrival: 7250.0,
            track_secs: 276.0,
            features: ContentFeatures::default(),
            interaction: Interaction::Clicked { at: 9000.0 },
        }
    }

    #[test]
    fn arrival_round_floors() {
        let item = sample_item();
        assert_eq!(item.arrival_round(3600.0), 2);
    }

    #[test]
    fn tie_strength_is_monotone() {
        assert!(SocialTie::None.strength() < SocialTie::Follows.strength());
        assert!(SocialTie::Follows.strength() < SocialTie::Mutual.strength());
        assert!(SocialTie::Mutual.strength() < SocialTie::FavoriteArtist.strength());
    }

    #[test]
    fn feature_vector_matches_names() {
        let v = ContentFeatures::default().to_vec();
        assert_eq!(v.len(), ContentFeatures::feature_names().len());
        assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn interaction_click_accessors() {
        assert!(Interaction::Clicked { at: 1.0 }.is_click());
        assert_eq!(Interaction::Clicked { at: 1.0 }.click_time(), Some(1.0));
        assert!(!Interaction::Hovered.is_click());
        assert_eq!(Interaction::NoActivity.click_time(), None);
    }

    #[test]
    fn only_friend_feed_is_realtime() {
        assert!(ContentKind::FriendFeed.is_realtime());
        assert!(!ContentKind::AlbumRelease.is_realtime());
        assert!(!ContentKind::PlaylistUpdate.is_realtime());
    }

    #[test]
    fn content_kind_display_names() {
        assert_eq!(ContentKind::AlbumRelease.to_string(), "album-release");
    }

    #[test]
    fn item_clone_is_equal() {
        let item = sample_item();
        assert_eq!(item.clone(), item);
    }
}
