//! Name → policy registry: one place that maps the `--policy` flag values
//! (`richnote | fifo | util | adaptive`) to boxed [`Policy`] instances, so
//! the server, the simulator and the bench harness all select policies the
//! same way.

use crate::adaptive::AdaptivePolicy;
use crate::policy::Policy;
use crate::scheduler::{FifoScheduler, RichNoteScheduler, UtilScheduler};
use std::fmt;
use std::str::FromStr;

/// A policy selectable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyName {
    /// The paper's Lyapunov + MCKP scheduler.
    RichNote,
    /// Fixed-level FIFO baseline.
    Fifo,
    /// Fixed-level utility-ordered baseline.
    Util,
    /// Connectivity-aware adaptive wrapper around RichNote.
    Adaptive,
}

impl PolicyName {
    /// Every selectable policy, in flag-table order.
    pub const ALL: [PolicyName; 4] =
        [PolicyName::RichNote, PolicyName::Fifo, PolicyName::Util, PolicyName::Adaptive];

    /// The lowercase CLI/config name (`--policy` value).
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyName::RichNote => "richnote",
            PolicyName::Fifo => "fifo",
            PolicyName::Util => "util",
            PolicyName::Adaptive => "adaptive",
        }
    }

    /// The display name matching [`crate::scheduler::NotificationScheduler::name`]
    /// and [`crate::policy::PolicyCheckpoint::policy_name`].
    pub fn display_name(self) -> &'static str {
        match self {
            PolicyName::RichNote => "RichNote",
            PolicyName::Fifo => "FIFO",
            PolicyName::Util => "UTIL",
            PolicyName::Adaptive => "Adaptive",
        }
    }

    /// A plain-`fn` factory building a default-configured instance of the
    /// policy. `fn` pointers (not closures) so callers that store
    /// factories in `fn() -> P` fields can use them directly.
    pub fn factory(self) -> fn() -> Box<dyn Policy + Send> {
        match self {
            PolicyName::RichNote => || Box::new(RichNoteScheduler::builder().build()),
            PolicyName::Fifo => || Box::new(FifoScheduler::builder().fixed_level(3).build()),
            PolicyName::Util => || Box::new(UtilScheduler::builder().fixed_level(3).build()),
            PolicyName::Adaptive => || Box::new(AdaptivePolicy::builder().build()),
        }
    }

    /// Builds a default-configured instance of the policy.
    pub fn build(self) -> Box<dyn Policy + Send> {
        (self.factory())()
    }
}

impl fmt::Display for PolicyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `--policy` was given a name no policy answers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy {:?} (expected richnote, fifo, util or adaptive)", self.0)
    }
}

impl std::error::Error for UnknownPolicy {}

impl FromStr for PolicyName {
    type Err = UnknownPolicy;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "richnote" => Ok(PolicyName::RichNote),
            "fifo" => Ok(PolicyName::Fifo),
            "util" => Ok(PolicyName::Util),
            "adaptive" => Ok(PolicyName::Adaptive),
            _ => Err(UnknownPolicy(s.to_string())),
        }
    }
}

// Manual serde impls (the server config embeds a PolicyName): the wire
// shape is the plain lowercase name, and configs written before the
// registry existed deserialize to the RichNote default rather than
// failing.
impl serde::Serialize for PolicyName {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl serde::Deserialize for PolicyName {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) => {
                s.parse().map_err(|e: UnknownPolicy| serde::DeError::msg(e.to_string()))
            }
            _ => Err(serde::DeError::msg("expected policy name as a string")),
        }
    }

    fn if_missing() -> Option<Self> {
        // Pre-registry configs (checkpoint configs, capture headers) load
        // with the historical default policy.
        Some(PolicyName::RichNote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::NotificationScheduler;

    #[test]
    fn every_name_parses_and_builds() {
        for name in PolicyName::ALL {
            let parsed: PolicyName = name.as_str().parse().unwrap();
            assert_eq!(parsed, name);
            let policy = name.build();
            assert_eq!(policy.name(), name.display_name());
            assert_eq!(policy.backlog(), 0);
        }
    }

    #[test]
    fn parsing_is_case_insensitive_and_rejects_unknowns() {
        assert_eq!("RichNote".parse::<PolicyName>().unwrap(), PolicyName::RichNote);
        assert_eq!("ADAPTIVE".parse::<PolicyName>().unwrap(), PolicyName::Adaptive);
        let err = "bogus".parse::<PolicyName>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn serde_roundtrip_and_missing_default() {
        for name in PolicyName::ALL {
            let v = serde::Serialize::to_value(&name);
            let back: PolicyName = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, name);
        }
        assert_eq!(<PolicyName as serde::Deserialize>::if_missing(), Some(PolicyName::RichNote));
    }

    #[test]
    fn factory_checkpoint_names_match() {
        use crate::policy::Policy;
        for name in PolicyName::ALL {
            let policy = name.build();
            assert_eq!(policy.checkpoint().policy_name(), name.display_name());
        }
    }
}
