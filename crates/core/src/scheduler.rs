//! Round-based notification scheduling policies (Sec. IV, Algorithm 2).
//!
//! Three policies are provided:
//!
//! * [`RichNoteScheduler`] — the paper's contribution: per round, compute
//!   Lyapunov-adjusted utilities for every (item, level) pair, solve the
//!   MCKP under the accumulated data budget, deliver the winners in
//!   descending utility order, and update the queues.
//! * [`FifoScheduler`] — industry baseline: deliver in arrival order at a
//!   *fixed* presentation level (Spotify real-time mode).
//! * [`UtilScheduler`] — industry baseline: deliver in descending utility
//!   order at a fixed level (Spotify batch mode).
//!
//! All policies operate on the same [`RoundContext`] so the simulator can
//! swap them freely, and all manage a per-user rolled-over data budget.

use crate::content::ContentItem;
use crate::ids::ContentId;
use crate::lyapunov::{LyapunovConfig, LyapunovState};
use crate::mckp::{select_greedy_into, GreedyOptions, GreedyScratch, MckpItem};
use crate::policy::{
    FixedLevelCheckpoint, NoopObserver, Policy, PolicyCheckpoint, SelectDecision,
    SelectionObserver, WrongPolicy,
};
use crate::presentation::PresentationLadder;
use crate::quality::{report_suppressed, ConnectivityCohort, QualitySample};
use crate::utility::combined_utility;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Energy-cost model for downloading bytes under the *current* network
/// conditions — the `ρ(i, j)` of the formulation. Implemented by the
/// `richnote-energy` crate; simple closures/constants suffice for tests.
pub trait TransferCost {
    /// Estimated energy in joules to download `bytes` now.
    fn energy(&self, bytes: u64) -> f64;
}

/// A constant per-byte energy cost (plus fixed overhead), for tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Fixed per-transfer overhead (J).
    pub fixed: f64,
    /// Energy per byte (J/B).
    pub per_byte: f64,
}

impl TransferCost for LinearCost {
    fn energy(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.fixed + self.per_byte * bytes as f64
        }
    }
}

/// Connectivity signals attached to a round — the optional, adaptive part
/// of a [`RoundContext`]. Drivers that know (or predict) the user's network
/// state fill this in; policies that don't care ignore it.
///
/// The contract (DESIGN.md §13):
///
/// * `state` is the network state *observed* by the driver for this round
///   (or predicted by an upstream policy for a derived context). `None`
///   means "no observation" — adaptive policies fall back to their
///   stationary prior.
/// * `throughput` is an estimate of sustainable link throughput in
///   bytes/second. `None` means unknown; policies may substitute their own
///   EWMA estimate.
/// * `level_cap` clamps the maximum presentation level any policy may
///   deliver at this round (`Some(1)` = metadata only). Every policy in
///   this crate honors it; `None` leaves the full ladder available.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetSignal {
    /// Observed (or predicted) network state for this round.
    pub state: Option<richnote_net::NetworkState>,
    /// Estimated sustainable throughput, bytes per second.
    pub throughput: Option<f64>,
    /// Maximum presentation level deliverable this round.
    pub level_cap: Option<u8>,
}

impl NetSignal {
    /// A signal carrying only an observed network state.
    pub fn observed(state: richnote_net::NetworkState) -> Self {
        Self { state: Some(state), throughput: None, level_cap: None }
    }

    /// Sets the throughput estimate (bytes/second).
    pub fn with_throughput(mut self, bytes_per_sec: f64) -> Self {
        self.throughput = Some(bytes_per_sec);
        self
    }

    /// Sets the presentation-level cap.
    pub fn with_level_cap(mut self, cap: u8) -> Self {
        self.level_cap = Some(cap);
        self
    }
}

/// Everything a policy may consult during one round.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RoundContext::builder`], which defaults every field a driver does not
/// care about, so future signal fields stop being breaking changes.
#[derive(Clone, Copy)]
#[non_exhaustive]
pub struct RoundContext<'a> {
    /// Round index `t`.
    pub round: u64,
    /// Wall-clock seconds at the start of the round.
    pub now: f64,
    /// Round length in seconds (used to pace downloads over the link).
    pub round_secs: f64,
    /// Whether the device currently has connectivity.
    pub online: bool,
    /// Maximum bytes the link can move this round (bandwidth × round).
    pub link_capacity: u64,
    /// Data budget granted this round (`θ`, possibly scaled by network).
    pub data_grant: u64,
    /// Energy replenishment this round (`e(t)`, from battery state).
    pub energy_grant: f64,
    /// Connectivity signals, if the driver has any (see [`NetSignal`]).
    pub net: Option<NetSignal>,
    /// Energy model for the current network.
    pub cost: &'a dyn TransferCost,
}

impl<'a> RoundContext<'a> {
    /// A builder over the one mandatory field (the energy model). All other
    /// fields default: round 0 at t = 0, one-hour round, online, unlimited
    /// link, zero grants, no connectivity signal.
    pub fn builder(cost: &'a dyn TransferCost) -> RoundContextBuilder<'a> {
        RoundContextBuilder {
            round: 0,
            now: 0.0,
            round_secs: 3_600.0,
            online: true,
            link_capacity: u64::MAX,
            data_grant: 0,
            energy_grant: 0.0,
            net: None,
            cost,
        }
    }

    /// Link rate in bytes per second implied by capacity and round length.
    pub fn link_rate(&self) -> f64 {
        if self.round_secs <= 0.0 {
            return f64::INFINITY;
        }
        self.link_capacity as f64 / self.round_secs
    }

    /// The wall-clock instant at which a download finishes, given the bytes
    /// already transferred this round before it and its own size — the
    /// delivery-queue pacing of Fig. 1.
    pub fn finish_time(&self, bytes_before: u64, size: u64) -> f64 {
        let rate = self.link_rate();
        if rate <= 0.0 || !rate.is_finite() {
            return self.now;
        }
        self.now + (bytes_before + size) as f64 / rate
    }

    /// The effective presentation-level cap this round: the signal's
    /// `level_cap` clamped to at least 1 (metadata is always allowed), or
    /// `u8::MAX` when no cap is set.
    pub fn level_cap(&self) -> u8 {
        self.net.and_then(|n| n.level_cap).unwrap_or(u8::MAX).max(1)
    }
}

/// Builder for [`RoundContext`]; see [`RoundContext::builder`].
#[derive(Clone, Copy)]
pub struct RoundContextBuilder<'a> {
    round: u64,
    now: f64,
    round_secs: f64,
    online: bool,
    link_capacity: u64,
    data_grant: u64,
    energy_grant: f64,
    net: Option<NetSignal>,
    cost: &'a dyn TransferCost,
}

impl<'a> RoundContextBuilder<'a> {
    /// Sets the round index `t`.
    pub fn round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// Sets the wall-clock seconds at the start of the round.
    pub fn now(mut self, now: f64) -> Self {
        self.now = now;
        self
    }

    /// Sets the round length in seconds.
    pub fn round_secs(mut self, secs: f64) -> Self {
        self.round_secs = secs;
        self
    }

    /// Sets whether the device currently has connectivity.
    pub fn online(mut self, online: bool) -> Self {
        self.online = online;
        self
    }

    /// Sets the link capacity for this round in bytes.
    pub fn link_capacity(mut self, bytes: u64) -> Self {
        self.link_capacity = bytes;
        self
    }

    /// Sets the data grant `θ` for this round in bytes.
    pub fn data_grant(mut self, bytes: u64) -> Self {
        self.data_grant = bytes;
        self
    }

    /// Sets the energy replenishment `e(t)` for this round in joules.
    pub fn energy_grant(mut self, joules: f64) -> Self {
        self.energy_grant = joules;
        self
    }

    /// Attaches connectivity signals.
    pub fn net(mut self, net: NetSignal) -> Self {
        self.net = Some(net);
        self
    }

    /// Builds the context.
    pub fn build(self) -> RoundContext<'a> {
        RoundContext {
            round: self.round,
            now: self.now,
            round_secs: self.round_secs,
            online: self.online,
            link_capacity: self.link_capacity,
            data_grant: self.data_grant,
            energy_grant: self.energy_grant,
            net: self.net,
            cost: self.cost,
        }
    }
}

impl std::fmt::Debug for RoundContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundContext")
            .field("round", &self.round)
            .field("now", &self.now)
            .field("online", &self.online)
            .field("link_capacity", &self.link_capacity)
            .field("data_grant", &self.data_grant)
            .field("energy_grant", &self.energy_grant)
            .field("net", &self.net)
            .finish_non_exhaustive()
    }
}

/// A notification waiting in a policy's scheduling queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedNotification {
    /// The underlying content item.
    pub item: ContentItem,
    /// Its presentation ladder. Shared: every notification minted from
    /// the same spec points at one ladder, so enqueueing never deep-copies
    /// the level table (the dominant per-publication allocation before
    /// the hot-path purge). Serialization is transparent — checkpoints
    /// store the ladder inline exactly as before.
    pub ladder: Arc<PresentationLadder>,
    /// Content utility `Uc(i)` assigned by the utility model.
    pub content_utility: f64,
    /// Broker time at which the notification entered the queue.
    pub enqueued_at: f64,
}

impl QueuedNotification {
    /// Combined utility `U(i, j)` at `level`.
    pub fn utility_at(&self, level: u8) -> f64 {
        combined_utility(self.content_utility, self.ladder.get(level).utility)
    }
}

/// A notification chosen for delivery in some round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveredNotification {
    /// Content identifier.
    pub content: ContentId,
    /// Presentation level it was delivered at.
    pub level: u8,
    /// Bytes transferred.
    pub size: u64,
    /// Combined utility `U(i, j)` realized.
    pub utility: f64,
    /// Energy spent downloading (J).
    pub energy: f64,
    /// When the notification entered the scheduling queue.
    pub enqueued_at: f64,
    /// When it was delivered.
    pub delivered_at: f64,
}

impl DeliveredNotification {
    /// Queuing delay experienced by this notification (seconds).
    pub fn queuing_delay(&self) -> f64 {
        self.delivered_at - self.enqueued_at
    }
}

/// Common interface of all scheduling policies.
pub trait NotificationScheduler {
    /// Short policy name for reports ("RichNote", "FIFO", "UTIL").
    fn name(&self) -> &str;

    /// Adds a notification to the scheduling queue.
    fn enqueue(&mut self, notification: QueuedNotification);

    /// Runs one round: updates budgets, selects notifications and returns
    /// them in delivery order.
    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification>;

    /// Number of items still queued.
    fn backlog(&self) -> usize;

    /// Bytes still queued, measured as `Σ s(i)` over queued items.
    fn backlog_bytes(&self) -> u64;
}

/// Configuration of the RichNote policy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RichNoteConfig {
    /// Lyapunov controller parameters.
    pub lyapunov: LyapunovConfig,
    /// MCKP greedy options.
    pub greedy: GreedyOptions,
    /// Drop notifications that have waited in the scheduling queue longer
    /// than this many seconds (`None` disables expiry). A stale social
    /// notification — a friend's stream from days ago — has no value, and
    /// expiry bounds the queue even when budgets starve.
    pub max_age_secs: Option<f64>,
}

/// A serializable snapshot of a [`RichNoteScheduler`]'s complete mutable
/// state, used by the delivery daemon's checkpoint/restore machinery.
///
/// Restoring from a checkpoint resumes the round loop *byte-identically*:
/// the queue order, Lyapunov queues and rolled-over budgets are all part of
/// the snapshot, so the same subsequent publications and ticks yield the
/// same selections as an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCheckpoint {
    /// Policy configuration at checkpoint time.
    pub config: RichNoteConfig,
    /// Lyapunov queues and rolled-over data budget.
    pub lyapunov: LyapunovState,
    /// The scheduling queue, in its exact in-memory order.
    pub queue: Vec<QueuedNotification>,
    /// Notifications dropped by age expiry so far.
    pub expired: u64,
}

/// The RichNote scheduler (Algorithm 2): Lyapunov-adjusted utilities fed to
/// the greedy MCKP each round.
///
/// ```
/// use richnote_core::scheduler::{
///     LinearCost, NotificationScheduler, RichNoteScheduler, RoundContext,
/// };
///
/// let mut sched = RichNoteScheduler::builder().build();
/// let cost = LinearCost { fixed: 1.0, per_byte: 1e-4 };
/// let ctx = RoundContext::builder(&cost)
///     .data_grant(100_000)
///     .energy_grant(3_000.0)
///     .build();
/// let delivered = sched.run_round(&ctx);
/// assert!(delivered.is_empty()); // nothing queued yet
/// ```
#[derive(Debug)]
pub struct RichNoteScheduler {
    cfg: RichNoteConfig,
    lyap: LyapunovState,
    queue: Vec<QueuedNotification>,
    expired: u64,
    /// Per-round working memory, reused across rounds so the hot path
    /// allocates nothing in steady state. Never checkpointed: a solve's
    /// leftovers carry no policy state.
    scratch: RoundScratch,
}

/// Reusable per-round working memory for [`RichNoteScheduler`]: the MCKP
/// instance, the greedy solver's heap and level vector, and the chosen /
/// removal index vectors. All of it is rebuilt from the queue every
/// round, so it is deliberately excluded from [`SchedulerCheckpoint`].
#[derive(Debug, Default)]
struct RoundScratch {
    items: Vec<MckpItem>,
    greedy: GreedyScratch,
    chosen: Vec<(usize, u8)>,
    indices: Vec<usize>,
}

/// Builder for [`RichNoteScheduler`], mirroring the server's
/// `ServerConfig::builder()` style. `RichNoteScheduler::builder().build()`
/// yields the paper's default parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RichNoteSchedulerBuilder {
    cfg: RichNoteConfig,
}

impl RichNoteSchedulerBuilder {
    /// Replaces the whole configuration at once.
    pub fn config(mut self, cfg: RichNoteConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the Lyapunov controller parameters.
    pub fn lyapunov(mut self, lyapunov: LyapunovConfig) -> Self {
        self.cfg.lyapunov = lyapunov;
        self
    }

    /// Sets the MCKP greedy options.
    pub fn greedy(mut self, greedy: GreedyOptions) -> Self {
        self.cfg.greedy = greedy;
        self
    }

    /// Drops queue entries older than `secs` seconds.
    pub fn max_age_secs(mut self, secs: f64) -> Self {
        self.cfg.max_age_secs = Some(secs);
        self
    }

    /// Builds the scheduler.
    pub fn build(self) -> RichNoteScheduler {
        let cfg = self.cfg;
        RichNoteScheduler {
            lyap: LyapunovState::new(cfg.lyapunov),
            cfg,
            queue: Vec::new(),
            expired: 0,
            scratch: RoundScratch::default(),
        }
    }
}

impl RichNoteScheduler {
    /// A builder starting from the paper's default parameters.
    pub fn builder() -> RichNoteSchedulerBuilder {
        RichNoteSchedulerBuilder::default()
    }

    /// Creates a scheduler with the given configuration.
    #[deprecated(since = "0.1.0", note = "use RichNoteScheduler::builder().config(cfg).build()")]
    pub fn new(cfg: RichNoteConfig) -> Self {
        Self::builder().config(cfg).build()
    }

    /// Creates a scheduler with the paper's default parameters.
    #[deprecated(since = "0.1.0", note = "use RichNoteScheduler::builder().build()")]
    pub fn with_defaults() -> Self {
        Self::builder().build()
    }

    /// Read-only view of the Lyapunov state (for telemetry).
    pub fn lyapunov(&self) -> &LyapunovState {
        &self.lyap
    }

    /// Notifications dropped by queue expiry so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Captures the scheduler's complete mutable state.
    pub fn checkpoint(&self) -> SchedulerCheckpoint {
        SchedulerCheckpoint {
            config: self.cfg,
            lyapunov: self.lyap.clone(),
            queue: self.queue.clone(),
            expired: self.expired,
        }
    }

    /// Rebuilds a scheduler from a [`SchedulerCheckpoint`], resuming the
    /// round loop exactly where the checkpointed instance left off.
    pub fn from_checkpoint(ck: SchedulerCheckpoint) -> Self {
        Self {
            cfg: ck.config,
            lyap: ck.lyapunov,
            queue: ck.queue,
            expired: ck.expired,
            scratch: RoundScratch::default(),
        }
    }

    /// The round body shared by [`NotificationScheduler::run_round`] (noop
    /// observer) and [`Policy::select_round`] (live observer).
    fn round_impl(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.lyap.begin_round(ctx.data_grant, ctx.energy_grant);
        self.expire(ctx.now);
        let cohort = ConnectivityCohort::from_net(ctx.net);
        if !ctx.online || self.queue.is_empty() {
            report_suppressed(obs, ctx.round, "RichNote", cohort, self.queue.len());
            return Vec::new();
        }

        let budget = (self.lyap.data_budget() as u64).min(ctx.link_capacity);
        let level_cap = ctx.level_cap();

        // Build the MCKP instance with Lyapunov-adjusted utilities (Eq. 7),
        // rewriting last round's scratch items in place. Disjoint field
        // borrows: the queue and Lyapunov state are read, the scratch is
        // written. `deliverable()` is ordered by level starting at 1, so
        // truncating at the cap keeps MCKP level indices aligned with
        // ladder levels.
        let queue = &self.queue;
        let lyap = &self.lyap;
        let scratch = &mut self.scratch;
        scratch.items.truncate(queue.len());
        for (idx, n) in queue.iter().enumerate() {
            let s_total = n.ladder.total_size();
            let levels = n.ladder.deliverable().iter().take(level_cap as usize).map(|p| {
                let rho = ctx.cost.energy(p.size);
                let u = combined_utility(n.content_utility, p.utility);
                (p.size, lyap.adjusted_utility(s_total, rho, u))
            });
            match scratch.items.get_mut(idx) {
                Some(item) => item.reset_with(idx, levels),
                None => scratch.items.push(MckpItem::from_levels_iter(idx, levels)),
            }
        }

        select_greedy_into(&scratch.items, budget, self.cfg.greedy, &mut scratch.greedy);

        // Move winners to the delivery queue, sorted in descending combined
        // utility (Algorithm 2, step 1), and update budgets (step 3).
        scratch.chosen.clear();
        scratch.chosen.extend(scratch.greedy.delivered());
        scratch.chosen.sort_by(|a, b| {
            let ua = queue[a.0].utility_at(a.1);
            let ub = queue[b.0].utility_at(b.1);
            ub.total_cmp(&ua)
        });

        // `with_capacity(0)` does not allocate, so rounds that deliver
        // nothing (the common steady-state case between budget refills)
        // stay allocation-free end to end.
        let mut delivered = Vec::with_capacity(self.scratch.chosen.len());
        let mut bytes_before = 0u64;
        for &(idx, level) in &self.scratch.chosen {
            let n = &self.queue[idx];
            let pres = n.ladder.get(level);
            let energy = ctx.cost.energy(pres.size);
            self.lyap.on_deliver(n.ladder.total_size(), pres.size, energy);
            let delivered_at = ctx.finish_time(bytes_before, pres.size);
            bytes_before += pres.size;
            let utility = n.utility_at(level);
            obs.on_select(
                ctx.round,
                n.item.id,
                &SelectDecision {
                    level,
                    size: pres.size,
                    utility,
                    gradient: self.scratch.items[idx].gradient(level - 1),
                    budget_remaining: budget.saturating_sub(bytes_before),
                },
            );
            obs.on_quality(
                ctx.round,
                &QualitySample::delivered("RichNote", cohort, level, utility, pres.size),
            );
            delivered.push(DeliveredNotification {
                content: n.item.id,
                level,
                size: pres.size,
                utility,
                energy,
                enqueued_at: n.enqueued_at,
                delivered_at,
            });
        }

        // Remove delivered items from the scheduling queue (descending
        // index order keeps the remaining indices valid).
        self.scratch.indices.clear();
        self.scratch.indices.extend(self.scratch.chosen.iter().map(|&(i, _)| i));
        self.scratch.indices.sort_unstable_by(|a, b| b.cmp(a));
        for &idx in &self.scratch.indices {
            self.queue.swap_remove(idx);
        }

        report_suppressed(obs, ctx.round, "RichNote", cohort, self.queue.len());
        delivered
    }

    /// Drops queue entries older than the configured `max_age_secs`.
    fn expire(&mut self, now: f64) {
        let Some(max_age) = self.cfg.max_age_secs else {
            return;
        };
        let lyap = &mut self.lyap;
        let expired = &mut self.expired;
        self.queue.retain(|n| {
            if now - n.enqueued_at > max_age {
                lyap.on_drop(n.ladder.total_size());
                *expired += 1;
                false
            } else {
                true
            }
        });
    }
}

impl NotificationScheduler for RichNoteScheduler {
    fn name(&self) -> &str {
        "RichNote"
    }

    fn enqueue(&mut self, notification: QueuedNotification) {
        self.lyap.on_enqueue(notification.ladder.total_size());
        self.queue.push(notification);
    }

    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification> {
        self.round_impl(ctx, &mut NoopObserver)
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.queue.iter().map(|n| n.ladder.total_size()).sum()
    }
}

impl Policy for RichNoteScheduler {
    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.round_impl(ctx, obs)
    }

    fn checkpoint(&self) -> PolicyCheckpoint {
        PolicyCheckpoint::RichNote(RichNoteScheduler::checkpoint(self))
    }

    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy> {
        match ck {
            PolicyCheckpoint::RichNote(c) => Ok(RichNoteScheduler::from_checkpoint(c)),
            other => Err(WrongPolicy { expected: "RichNote", found: other.policy_name() }),
        }
    }
}

/// Shared machinery of the two fixed-level baselines.
#[derive(Debug)]
struct FixedLevelState {
    fixed_level: u8,
    data_budget: f64,
    queue: VecDeque<QueuedNotification>,
}

impl FixedLevelState {
    fn new(fixed_level: u8) -> Self {
        Self { fixed_level, data_budget: 0.0, queue: VecDeque::new() }
    }

    /// Delivers queued items in the queue's current order at the fixed
    /// level until the budget or capacity is exhausted. Stops at the first
    /// item that does not fit (head-of-line blocking, as deployed systems
    /// that preserve ordering do). Selections are reported through `obs`
    /// with gradient 0 (no knapsack is solved).
    fn drain(
        &mut self,
        policy: &'static str,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.data_budget += ctx.data_grant as f64;
        let cohort = ConnectivityCohort::from_net(ctx.net);
        if !ctx.online {
            report_suppressed(obs, ctx.round, policy, cohort, self.queue.len());
            return Vec::new();
        }
        let mut capacity = ctx.link_capacity;
        let mut delivered = Vec::new();
        let mut bytes_before = 0u64;
        let effective_level = self.fixed_level.min(ctx.level_cap());
        while let Some(front) = self.queue.front() {
            let level = front.ladder.clamp_level(effective_level);
            let pres = front.ladder.get(level);
            if pres.size as f64 > self.data_budget || pres.size > capacity {
                break;
            }
            let n = self.queue.pop_front().expect("front exists");
            let energy = ctx.cost.energy(pres.size);
            self.data_budget -= pres.size as f64;
            capacity -= pres.size;
            let delivered_at = ctx.finish_time(bytes_before, pres.size);
            bytes_before += pres.size;
            let utility = n.utility_at(level);
            obs.on_select(
                ctx.round,
                n.item.id,
                &SelectDecision {
                    level,
                    size: pres.size,
                    utility,
                    gradient: 0.0,
                    budget_remaining: (self.data_budget.max(0.0) as u64).min(capacity),
                },
            );
            obs.on_quality(
                ctx.round,
                &QualitySample::delivered(policy, cohort, level, utility, pres.size),
            );
            delivered.push(DeliveredNotification {
                content: n.item.id,
                level,
                size: pres.size,
                utility,
                energy,
                enqueued_at: n.enqueued_at,
                delivered_at,
            });
        }
        report_suppressed(obs, ctx.round, policy, cohort, self.queue.len());
        delivered
    }

    fn checkpoint(&self) -> FixedLevelCheckpoint {
        FixedLevelCheckpoint {
            fixed_level: self.fixed_level,
            data_budget: self.data_budget,
            queue: self.queue.iter().cloned().collect(),
        }
    }

    fn from_checkpoint(ck: FixedLevelCheckpoint) -> Self {
        Self { fixed_level: ck.fixed_level, data_budget: ck.data_budget, queue: ck.queue.into() }
    }

    fn backlog_bytes(&self) -> u64 {
        self.queue.iter().map(|n| n.ladder.total_size()).sum()
    }
}

/// Builder for the fixed-level baselines ([`FifoScheduler`],
/// [`UtilScheduler`]).
#[derive(Debug, Clone, Copy)]
pub struct FixedLevelBuilder<T> {
    fixed_level: u8,
    _marker: std::marker::PhantomData<T>,
}

impl<T> Default for FixedLevelBuilder<T> {
    fn default() -> Self {
        Self { fixed_level: 1, _marker: std::marker::PhantomData }
    }
}

impl<T> FixedLevelBuilder<T> {
    /// Sets the presentation level delivered at (clamped per item to its
    /// ladder depth). Defaults to 1 (metadata only).
    pub fn fixed_level(mut self, level: u8) -> Self {
        self.fixed_level = level;
        self
    }
}

impl FixedLevelBuilder<FifoScheduler> {
    /// Builds the scheduler.
    pub fn build(self) -> FifoScheduler {
        FifoScheduler { state: FixedLevelState::new(self.fixed_level) }
    }
}

impl FixedLevelBuilder<UtilScheduler> {
    /// Builds the scheduler.
    pub fn build(self) -> UtilScheduler {
        UtilScheduler { state: FixedLevelState::new(self.fixed_level) }
    }
}

/// FIFO baseline: notifications delivered in arrival order at a fixed
/// presentation level (Spotify real-time mode behaviour).
#[derive(Debug)]
pub struct FifoScheduler {
    state: FixedLevelState,
}

impl FifoScheduler {
    /// A builder; `FifoScheduler::builder().fixed_level(n).build()`.
    pub fn builder() -> FixedLevelBuilder<FifoScheduler> {
        FixedLevelBuilder::default()
    }

    /// Creates a FIFO scheduler delivering at `fixed_level` (clamped to
    /// each item's ladder depth).
    #[deprecated(since = "0.1.0", note = "use FifoScheduler::builder().fixed_level(n).build()")]
    pub fn new(fixed_level: u8) -> Self {
        Self::builder().fixed_level(fixed_level).build()
    }

    /// The configured fixed level.
    pub fn fixed_level(&self) -> u8 {
        self.state.fixed_level
    }
}

impl NotificationScheduler for FifoScheduler {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn enqueue(&mut self, notification: QueuedNotification) {
        self.state.queue.push_back(notification);
    }

    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification> {
        self.state.drain("FIFO", ctx, &mut NoopObserver)
    }

    fn backlog(&self) -> usize {
        self.state.queue.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.state.backlog_bytes()
    }
}

impl Policy for FifoScheduler {
    fn observe_arrivals(&mut self, arrivals: Vec<QueuedNotification>) {
        self.state.queue.extend(arrivals);
    }

    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.state.drain("FIFO", ctx, obs)
    }

    fn checkpoint(&self) -> PolicyCheckpoint {
        PolicyCheckpoint::Fifo(self.state.checkpoint())
    }

    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy> {
        match ck {
            PolicyCheckpoint::Fifo(c) => Ok(Self { state: FixedLevelState::from_checkpoint(c) }),
            other => Err(WrongPolicy { expected: "FIFO", found: other.policy_name() }),
        }
    }
}

/// UTIL baseline: notifications delivered in descending utility order at a
/// fixed presentation level (Spotify batch mode behaviour).
#[derive(Debug)]
pub struct UtilScheduler {
    state: FixedLevelState,
}

impl UtilScheduler {
    /// A builder; `UtilScheduler::builder().fixed_level(n).build()`.
    pub fn builder() -> FixedLevelBuilder<UtilScheduler> {
        FixedLevelBuilder::default()
    }

    /// Creates a UTIL scheduler delivering at `fixed_level`.
    #[deprecated(since = "0.1.0", note = "use UtilScheduler::builder().fixed_level(n).build()")]
    pub fn new(fixed_level: u8) -> Self {
        Self::builder().fixed_level(fixed_level).build()
    }

    /// The configured fixed level.
    pub fn fixed_level(&self) -> u8 {
        self.state.fixed_level
    }

    fn resort(&mut self) {
        let level = self.state.fixed_level;
        self.state.queue.make_contiguous().sort_by(|a, b| {
            let ua = a.utility_at(a.ladder.clamp_level(level));
            let ub = b.utility_at(b.ladder.clamp_level(level));
            ub.total_cmp(&ua)
        });
    }
}

impl NotificationScheduler for UtilScheduler {
    fn name(&self) -> &str {
        "UTIL"
    }

    fn enqueue(&mut self, notification: QueuedNotification) {
        self.state.queue.push_back(notification);
    }

    fn run_round(&mut self, ctx: &RoundContext<'_>) -> Vec<DeliveredNotification> {
        self.resort();
        self.state.drain("UTIL", ctx, &mut NoopObserver)
    }

    fn backlog(&self) -> usize {
        self.state.queue.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.state.backlog_bytes()
    }
}

impl Policy for UtilScheduler {
    fn observe_arrivals(&mut self, arrivals: Vec<QueuedNotification>) {
        self.state.queue.extend(arrivals);
    }

    fn select_round(
        &mut self,
        ctx: &RoundContext<'_>,
        obs: &mut dyn SelectionObserver,
    ) -> Vec<DeliveredNotification> {
        self.resort();
        self.state.drain("UTIL", ctx, obs)
    }

    fn checkpoint(&self) -> PolicyCheckpoint {
        PolicyCheckpoint::Util(self.state.checkpoint())
    }

    fn restore(ck: PolicyCheckpoint) -> Result<Self, WrongPolicy> {
        match ck {
            PolicyCheckpoint::Util(c) => Ok(Self { state: FixedLevelState::from_checkpoint(c) }),
            other => Err(WrongPolicy { expected: "UTIL", found: other.policy_name() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentFeatures, ContentKind, Interaction};
    use crate::ids::{AlbumId, ArtistId, ContentId, TrackId, UserId};
    use crate::presentation::AudioPresentationSpec;

    fn notification(id: u64, content_utility: f64, enqueued_at: f64) -> QueuedNotification {
        QueuedNotification {
            item: ContentItem {
                id: ContentId::new(id),
                recipient: UserId::new(1),
                sender: None,
                kind: ContentKind::FriendFeed,
                track: TrackId::new(id),
                album: AlbumId::new(id),
                artist: ArtistId::new(id),
                arrival: enqueued_at,
                track_secs: 276.0,
                features: ContentFeatures::default(),
                interaction: Interaction::Hovered,
            },
            ladder: Arc::new(AudioPresentationSpec::paper_default().ladder()),
            content_utility,
            enqueued_at,
        }
    }

    const COST: LinearCost = LinearCost { fixed: 5.0, per_byte: 5e-4 };

    fn online_ctx(round: u64, grant: u64) -> RoundContext<'static> {
        RoundContext::builder(&COST)
            .round(round)
            .now(round as f64 * 3600.0)
            .data_grant(grant)
            .energy_grant(3_000.0)
            .build()
    }

    #[test]
    fn richnote_delivers_nothing_when_offline() {
        let mut s = RichNoteScheduler::builder().build();
        s.enqueue(notification(1, 0.9, 0.0));
        let ctx = RoundContext { online: false, ..online_ctx(0, 1_000_000) };
        assert!(s.run_round(&ctx).is_empty());
        // Budget still accrues while offline.
        assert_eq!(s.lyapunov().data_budget(), 1_000_000.0);
    }

    #[test]
    fn richnote_adapts_level_to_budget() {
        // Tiny budget → metadata only; huge budget → full previews.
        let mut small = RichNoteScheduler::builder().build();
        let mut large = RichNoteScheduler::builder().build();
        for i in 0..5 {
            small.enqueue(notification(i, 0.8, 0.0));
            large.enqueue(notification(i, 0.8, 0.0));
        }
        let d_small = small.run_round(&online_ctx(0, 1_500));
        let d_large = large.run_round(&online_ctx(0, 50_000_000));
        assert!(!d_small.is_empty());
        assert!(d_small.iter().all(|d| d.level == 1), "{d_small:?}");
        assert_eq!(d_large.len(), 5);
        assert!(d_large.iter().all(|d| d.level == 6), "{d_large:?}");
    }

    #[test]
    fn richnote_delivery_sorted_by_utility() {
        let mut s = RichNoteScheduler::builder().build();
        s.enqueue(notification(1, 0.2, 0.0));
        s.enqueue(notification(2, 0.9, 0.0));
        s.enqueue(notification(3, 0.5, 0.0));
        let delivered = s.run_round(&online_ctx(0, 50_000_000));
        let utils: Vec<f64> = delivered.iter().map(|d| d.utility).collect();
        for w in utils.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(delivered[0].content, ContentId::new(2));
    }

    #[test]
    fn richnote_queue_drains_and_backlog_tracks() {
        let mut s = RichNoteScheduler::builder().build();
        for i in 0..10 {
            s.enqueue(notification(i, 0.5, 0.0));
        }
        assert_eq!(s.backlog(), 10);
        let ladder_total = AudioPresentationSpec::paper_default().ladder().total_size();
        assert_eq!(s.backlog_bytes(), 10 * ladder_total);
        let delivered = s.run_round(&online_ctx(0, u64::MAX >> 8));
        assert_eq!(delivered.len(), 10);
        assert_eq!(s.backlog(), 0);
        assert_eq!(s.backlog_bytes(), 0);
        assert_eq!(s.lyapunov().q(), 0.0);
    }

    #[test]
    fn richnote_budget_rolls_over_when_offline() {
        let mut s = RichNoteScheduler::builder().build();
        s.enqueue(notification(1, 0.9, 0.0));
        // Three offline rounds bank 3θ...
        for r in 0..3 {
            let ctx = RoundContext { online: false, ..online_ctx(r, 40_000) };
            assert!(s.run_round(&ctx).is_empty());
        }
        // ...enough for a 5-second preview (100_200 B) in round 3 even
        // though a single round's grant (40 kB) is not.
        let delivered = s.run_round(&online_ctx(3, 40_000));
        assert_eq!(delivered.len(), 1);
        assert!(delivered[0].level >= 2, "{delivered:?}");
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut s = FifoScheduler::builder().fixed_level(1).build();
        s.enqueue(notification(1, 0.1, 0.0));
        s.enqueue(notification(2, 0.9, 10.0));
        let delivered = s.run_round(&online_ctx(0, 1_000_000));
        let ids: Vec<u64> = delivered.iter().map(|d| d.content.value()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn util_orders_by_utility() {
        let mut s = UtilScheduler::builder().fixed_level(1).build();
        s.enqueue(notification(1, 0.1, 0.0));
        s.enqueue(notification(2, 0.9, 10.0));
        s.enqueue(notification(3, 0.5, 20.0));
        let delivered = s.run_round(&online_ctx(0, 1_000_000));
        let ids: Vec<u64> = delivered.iter().map(|d| d.content.value()).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn baselines_block_on_fixed_level_size() {
        // Level 3 = metadata + 10s preview = 200_200 bytes. Budget for one.
        let mut fifo = FifoScheduler::builder().fixed_level(3).build();
        fifo.enqueue(notification(1, 0.9, 0.0));
        fifo.enqueue(notification(2, 0.9, 0.0));
        let delivered = fifo.run_round(&online_ctx(0, 250_000));
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].size, 200_200);
        assert_eq!(fifo.backlog(), 1);
    }

    #[test]
    fn baseline_budget_rolls_over() {
        let mut fifo = FifoScheduler::builder().fixed_level(3).build();
        fifo.enqueue(notification(1, 0.9, 0.0));
        // One round with half the needed budget: nothing delivered.
        assert!(fifo.run_round(&online_ctx(0, 110_000)).is_empty());
        // Next round the rolled-over budget suffices.
        assert_eq!(fifo.run_round(&online_ctx(1, 110_000)).len(), 1);
    }

    #[test]
    fn baseline_clamps_missing_levels() {
        let ladder = crate::presentation::PresentationLadder::new(vec![(200, 0.01)]).unwrap();
        let mut n = notification(1, 0.9, 0.0);
        n.ladder = Arc::new(ladder);
        let mut fifo = FifoScheduler::builder().fixed_level(6).build();
        fifo.enqueue(n);
        let delivered = fifo.run_round(&online_ctx(0, 1_000));
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].level, 1);
    }

    #[test]
    fn link_capacity_caps_deliveries() {
        let mut s = RichNoteScheduler::builder().build();
        for i in 0..4 {
            s.enqueue(notification(i, 0.9, 0.0));
        }
        let ctx = RoundContext { link_capacity: 500, ..online_ctx(0, 10_000_000) };
        let delivered = s.run_round(&ctx);
        let bytes: u64 = delivered.iter().map(|d| d.size).sum();
        assert!(bytes <= 500);
    }

    #[test]
    fn queuing_delay_is_measured() {
        let mut s = FifoScheduler::builder().fixed_level(1).build();
        s.enqueue(notification(1, 0.9, 100.0));
        let ctx = online_ctx(2, 1_000_000); // now = 7200
        let delivered = s.run_round(&ctx);
        assert!((delivered[0].queuing_delay() - 7_100.0).abs() < 1e-9);
    }

    #[test]
    fn expiry_drops_stale_items_and_shrinks_q() {
        let cfg = RichNoteConfig { max_age_secs: Some(2.0 * 3600.0), ..RichNoteConfig::default() };
        let mut s = RichNoteScheduler::builder().config(cfg).build();
        s.enqueue(notification(1, 0.9, 0.0));
        s.enqueue(notification(2, 0.9, 9_000.0));
        assert_eq!(s.backlog(), 2);
        // Offline round at t = 3 h: item 1 (age 3 h) expires, item 2 stays.
        let ctx = RoundContext { online: false, now: 3.0 * 3600.0, ..online_ctx(2, 0) };
        assert!(s.run_round(&ctx).is_empty());
        assert_eq!(s.backlog(), 1);
        assert_eq!(s.expired(), 1);
        let remaining_total = AudioPresentationSpec::paper_default().ladder().total_size();
        assert_eq!(s.lyapunov().q(), remaining_total as f64);
    }

    #[test]
    fn expiry_disabled_by_default() {
        let mut s = RichNoteScheduler::builder().build();
        s.enqueue(notification(1, 0.9, 0.0));
        let ctx = RoundContext { online: false, now: 1e9, ..online_ctx(0, 0) };
        assert!(s.run_round(&ctx).is_empty());
        assert_eq!(s.backlog(), 1);
        assert_eq!(s.expired(), 0);
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        // Two schedulers fed identical streams; one is checkpointed and
        // restored mid-run. Subsequent rounds must be identical, and the
        // snapshot itself must survive a JSON round trip unchanged.
        let mut reference = RichNoteScheduler::builder().build();
        let mut victim = RichNoteScheduler::builder().build();
        for i in 0..6 {
            reference.enqueue(notification(i, 0.3 + 0.1 * i as f64, 0.0));
            victim.enqueue(notification(i, 0.3 + 0.1 * i as f64, 0.0));
        }
        assert_eq!(
            reference.run_round(&online_ctx(0, 120_000)),
            victim.run_round(&online_ctx(0, 120_000))
        );

        let ck = victim.checkpoint();
        let json = serde_json::to_string(&ck).unwrap();
        let back: SchedulerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(ck, back, "checkpoint must survive a JSON round trip");
        let mut restored = RichNoteScheduler::from_checkpoint(back);

        for r in 1..5 {
            reference.enqueue(notification(100 + r, 0.7, r as f64 * 3600.0));
            restored.enqueue(notification(100 + r, 0.7, r as f64 * 3600.0));
            let ctx = online_ctx(r, 90_000);
            assert_eq!(
                reference.run_round(&ctx),
                restored.run_round(&ctx),
                "selections diverged after restore at round {r}"
            );
        }
        assert_eq!(reference.backlog(), restored.backlog());
        assert_eq!(reference.lyapunov(), restored.lyapunov());
    }

    #[test]
    fn energy_depletion_steers_selection_to_smaller_levels() {
        // Drain the virtual energy queue far below κ: the (P−κ)·ρ term then
        // penalizes big transfers, so RichNote should pick smaller levels
        // than an energy-rich scheduler would under the same data budget.
        let cfg = RichNoteConfig {
            lyapunov: LyapunovConfig { v: 1_000.0, kappa: 3_000.0, initial_energy: 0.0 },
            ..RichNoteConfig::default()
        };
        let mut poor = RichNoteScheduler::builder().config(cfg).build();
        let mut rich = RichNoteScheduler::builder().build();
        for i in 0..3 {
            poor.enqueue(notification(i, 0.9, 0.0));
            rich.enqueue(notification(i, 0.9, 0.0));
        }
        // Strongly energy-costly link.
        let cost = LinearCost { fixed: 50.0, per_byte: 5e-3 };
        let ctx = RoundContext::builder(&cost).data_grant(10_000_000).build();
        let d_poor = poor.run_round(&ctx);
        let ctx_rich = RoundContext { energy_grant: 3_000.0, ..ctx };
        let d_rich = rich.run_round(&ctx_rich);
        let max_poor = d_poor.iter().map(|d| d.level).max().unwrap_or(0);
        let max_rich = d_rich.iter().map(|d| d.level).max().unwrap_or(0);
        assert!(
            max_poor <= max_rich,
            "energy-poor scheduler must not pick richer levels ({max_poor} vs {max_rich})"
        );
    }

    /// Records every on_select call for assertions.
    #[derive(Default)]
    struct RecordingObserver {
        selects: Vec<(u64, ContentId, SelectDecision)>,
    }

    impl SelectionObserver for RecordingObserver {
        fn on_select(&mut self, round: u64, content: ContentId, decision: &SelectDecision) {
            self.selects.push((round, content, *decision));
        }
    }

    #[test]
    fn select_round_matches_run_round() {
        let mut via_trait = RichNoteScheduler::builder().build();
        let mut via_policy = RichNoteScheduler::builder().build();
        for i in 0..8 {
            via_trait.enqueue(notification(i, 0.2 + 0.1 * i as f64, 0.0));
        }
        via_policy
            .observe_arrivals((0..8).map(|i| notification(i, 0.2 + 0.1 * i as f64, 0.0)).collect());
        let mut obs = RecordingObserver::default();
        let a = via_trait.run_round(&online_ctx(0, 400_000));
        let b = via_policy.select_round(&online_ctx(0, 400_000), &mut obs);
        assert_eq!(a, b, "select_round must deliver exactly what run_round does");
        assert_eq!(obs.selects.len(), b.len(), "one on_select per delivery");
        let mut remaining_prev = u64::MAX;
        for (ev, d) in obs.selects.iter().zip(&b) {
            assert_eq!(ev.1, d.content);
            assert_eq!(ev.2.level, d.level);
            assert_eq!(ev.2.size, d.size);
            assert!(ev.2.gradient.is_finite(), "gradient must be a real slope: {ev:?}");
            assert!(
                ev.2.budget_remaining <= remaining_prev,
                "budget remaining must be non-increasing within a round: {ev:?}"
            );
            remaining_prev = ev.2.budget_remaining;
        }
    }

    #[test]
    fn baseline_observer_reports_zero_gradient() {
        let mut fifo = FifoScheduler::builder().fixed_level(1).build();
        Policy::observe_arrivals(&mut fifo, vec![notification(1, 0.9, 0.0)]);
        let mut obs = RecordingObserver::default();
        let d = fifo.select_round(&online_ctx(0, 1_000_000), &mut obs);
        assert_eq!(d.len(), 1);
        assert_eq!(obs.selects.len(), 1);
        assert_eq!(obs.selects[0].2.gradient, 0.0);
    }

    #[test]
    fn policy_checkpoints_roundtrip_for_all_policies() {
        let mut rn = RichNoteScheduler::builder().build();
        let mut fifo = FifoScheduler::builder().fixed_level(3).build();
        let mut util = UtilScheduler::builder().fixed_level(2).build();
        for i in 0..4 {
            rn.enqueue(notification(i, 0.5, 0.0));
            fifo.enqueue(notification(i, 0.5, 0.0));
            util.enqueue(notification(i, 0.5, 0.0));
        }
        // Advance the baselines so rolled-over budget state is nontrivial.
        fifo.run_round(&online_ctx(0, 110_000));
        util.run_round(&online_ctx(0, 110_000));

        for (ck, name) in [
            (Policy::checkpoint(&rn), "RichNote"),
            (Policy::checkpoint(&fifo), "FIFO"),
            (Policy::checkpoint(&util), "UTIL"),
        ] {
            assert_eq!(ck.policy_name(), name);
            let json = serde_json::to_string(&ck).unwrap();
            let back: PolicyCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(ck, back, "{name} checkpoint must survive a JSON round trip");
            let restored: Box<dyn Policy + Send> = Policy::restore(back).unwrap();
            assert_eq!(restored.name(), name);
        }

        // Restored baselines resume with identical budgets and queues.
        let mut fifo2 = FifoScheduler::restore(Policy::checkpoint(&fifo)).unwrap();
        assert_eq!(fifo2.backlog(), fifo.backlog());
        assert_eq!(fifo2.fixed_level(), 3);
        assert_eq!(
            fifo2.run_round(&online_ctx(1, 110_000)),
            fifo.run_round(&online_ctx(1, 110_000))
        );
    }

    #[test]
    fn restoring_into_the_wrong_policy_fails_loudly() {
        let fifo = FifoScheduler::builder().fixed_level(1).build();
        let err = RichNoteScheduler::restore(Policy::checkpoint(&fifo)).unwrap_err();
        assert_eq!(err, WrongPolicy { expected: "RichNote", found: "FIFO" });
        assert!(err.to_string().contains("FIFO"), "{err}");
        let rn = RichNoteScheduler::builder().build();
        assert!(UtilScheduler::restore(Policy::checkpoint(&rn)).is_err());
    }
}
