//! Strongly-typed identifiers for the entities in the RichNote data model.
//!
//! Every identifier is a newtype over `u64` ([C-NEWTYPE]): a [`UserId`] can
//! never be confused with a [`ContentId`] at compile time even though both
//! are plain integers in the trace files.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates a new identifier from a raw integer.
            ///
            /// ```
            /// # use richnote_core::ids::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.value(), 7);
            /// ```
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a notification/content item flowing through the system.
    ContentId,
    "c"
);
id_type!(
    /// Identifier of a (de-identified) user.
    UserId,
    "u"
);
id_type!(
    /// Identifier of a music track in the catalog.
    TrackId,
    "t"
);
id_type!(
    /// Identifier of an artist in the catalog.
    ArtistId,
    "ar"
);
id_type!(
    /// Identifier of an album in the catalog.
    AlbumId,
    "al"
);
id_type!(
    /// Identifier of a shared playlist.
    PlaylistId,
    "pl"
);
id_type!(
    /// Identifier of a pub/sub topic (friend feed, artist page, playlist).
    TopicId,
    "tp"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_u64() {
        let id = ContentId::new(42);
        let raw: u64 = id.into();
        assert_eq!(raw, 42);
        assert_eq!(ContentId::from(raw), id);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(ArtistId::new(9).to_string(), "ar9");
        assert_eq!(TopicId::new(1).to_string(), "tp1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TrackId::new(1));
        set.insert(TrackId::new(1));
        set.insert(TrackId::new(2));
        assert_eq!(set.len(), 2);
        assert!(TrackId::new(1) < TrackId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AlbumId::default().value(), 0);
    }

    #[test]
    fn distinct_types_do_not_unify() {
        // Compile-time property: UserId and ContentId are different types.
        fn takes_user(_: UserId) {}
        takes_user(UserId::new(1));
    }
}
