//! Crowdsourced presentation-utility surveys — the paper's future-work
//! suggestion made concrete.
//!
//! Sec. V-B closes with: "These surveys, though limited in scale, give
//! useful insights ... A wide scale survey through crowdsourcing can give
//! better results." This module models exactly that: a heterogeneous crowd
//! of raters with per-rater bias and noise (as crowdsourcing platforms
//! exhibit), robust aggregation of their responses, and the machinery to
//! measure how fit quality improves with crowd size — quantifying how much
//! "better" the wide-scale survey actually gets.

use crate::error::SurveyFitError;
use crate::paper;
use crate::survey::{empirical_utility, fit_logarithmic, StopResponse};
use crate::utility::DurationUtility;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A simulated crowd rater: systematic bias plus idiosyncratic noise, and
/// a small probability of being a *spammer* who answers uniformly at
/// random — the standard contamination model for crowdsourcing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaterProfile {
    /// Multiplicative bias on the rater's stop duration (patient raters
    /// > 1, impatient < 1).
    pub bias: f64,
    /// Relative magnitude of the rater's per-response noise.
    pub noise: f64,
    /// Whether the rater is a spammer.
    pub spammer: bool,
}

/// Crowd composition parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Standard deviation of the log-bias across raters.
    pub bias_spread: f64,
    /// Mean per-response noise.
    pub response_noise: f64,
    /// Fraction of spammers in the crowd.
    pub spammer_rate: f64,
    /// Responses collected per rater.
    pub responses_per_rater: usize,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        Self {
            // Rater bias flattens the observed stop-duration CDF and puts a
            // *floor* under the fit error that no crowd size removes — the
            // quantitative caveat to the paper's "crowdsourcing can give
            // better results" conjecture. The default keeps the bias small
            // so variance (which crowd size does fix) dominates.
            bias_spread: 0.08,
            response_noise: 0.25,
            spammer_rate: 0.05,
            responses_per_rater: 3,
        }
    }
}

/// Draws a crowd of `n` rater profiles.
pub fn sample_crowd<R: Rng>(rng: &mut R, n: usize, cfg: &CrowdConfig) -> Vec<RaterProfile> {
    (0..n)
        .map(|_| {
            let z: f64 = {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            RaterProfile {
                bias: (cfg.bias_spread * z).exp(),
                noise: cfg.response_noise * rng.gen_range(0.5..1.5),
                spammer: rng.gen_bool(cfg.spammer_rate.clamp(0.0, 1.0)),
            }
        })
        .collect()
}

/// Collects stop-duration responses from a crowd. Honest raters invert the
/// ground-truth logarithmic curve (Eq. 8) at a personal quantile with bias
/// and noise; spammers answer uniformly in `(0, 60]` seconds.
pub fn collect_responses<R: Rng>(
    rng: &mut R,
    crowd: &[RaterProfile],
    cfg: &CrowdConfig,
) -> Vec<StopResponse> {
    let (a, b) = (paper::LOG_UTILITY_A, paper::LOG_UTILITY_B);
    let mut responses = Vec::with_capacity(crowd.len() * cfg.responses_per_rater);
    for rater in crowd {
        for _ in 0..cfg.responses_per_rater {
            let stop = if rater.spammer {
                rng.gen_range(0.5..60.0)
            } else {
                let u: f64 = rng.gen_range(0.0..1.0);
                let d = ((u - a) / b).exp() - 1.0;
                let jitter = 1.0 + rater.noise * rng.gen_range(-1.0..1.0);
                (d * rater.bias * jitter).clamp(0.5, paper::SURVEY_MEAN_TRACK_SECS)
            };
            responses.push(StopResponse { stop_secs: stop });
        }
    }
    responses
}

/// Trims the fastest and slowest `trim_fraction` of stop durations.
///
/// Note the statistical caveat: trimming is the right defense for *mean*
/// aggregation, but the survey pipeline fits the empirical **CDF**, where
/// removing tail mass rescales every quantile — so aggressive trimming can
/// *hurt* the fit. The CDF estimator is already fairly robust to uniform
/// spam (a bounded mixture component); see the crate tests for the
/// measured behaviour.
///
/// # Panics
///
/// Panics if `trim_fraction` is not within `[0, 0.5)`.
pub fn trim_responses(mut responses: Vec<StopResponse>, trim_fraction: f64) -> Vec<StopResponse> {
    assert!((0.0..0.5).contains(&trim_fraction), "trim fraction must be in [0, 0.5)");
    responses.sort_by(|x, y| x.stop_secs.total_cmp(&y.stop_secs));
    let n = responses.len();
    let cut = (n as f64 * trim_fraction) as usize;
    responses.into_iter().skip(cut).take(n - 2 * cut.min(n / 2)).collect()
}

/// One point of the crowd-size study: fit error against the ground truth
/// at a given crowd size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdSizePoint {
    /// Number of raters.
    pub raters: usize,
    /// Total responses used after trimming.
    pub responses: usize,
    /// Absolute error of the fitted intercept vs Eq. 8's `a`.
    pub err_a: f64,
    /// Absolute error of the fitted slope vs Eq. 8's `b`.
    pub err_b: f64,
}

/// Runs the crowd-size study: for each size, sample a crowd, collect and
/// trim responses, fit Eq. 8 and record the coefficient errors.
///
/// # Errors
///
/// Propagates [`SurveyFitError`] if a fit degenerates (cannot happen for
/// sizes ≥ 2 with the default grid).
pub fn crowd_size_study<R: Rng>(
    rng: &mut R,
    sizes: &[usize],
    cfg: &CrowdConfig,
    trim_fraction: f64,
) -> Result<Vec<CrowdSizePoint>, SurveyFitError> {
    let grid: Vec<f64> = (1..=9).map(|i| i as f64 * 5.0).collect();
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let crowd = sample_crowd(rng, n, cfg);
        let responses = trim_responses(collect_responses(rng, &crowd, cfg), trim_fraction);
        let points = empirical_utility(&responses, &grid);
        let fitted = fit_logarithmic(&points)?;
        let (err_a, err_b) = match fitted {
            DurationUtility::Logarithmic { a, b } => {
                ((a - paper::LOG_UTILITY_A).abs(), (b - paper::LOG_UTILITY_B).abs())
            }
            _ => unreachable!("fit_logarithmic returns the logarithmic variant"),
        };
        out.push(CrowdSizePoint { raters: n, responses: responses.len(), err_a, err_b });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn crowd_has_configured_composition() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = CrowdConfig { spammer_rate: 0.2, ..CrowdConfig::default() };
        let crowd = sample_crowd(&mut rng, 5_000, &cfg);
        let spammers = crowd.iter().filter(|r| r.spammer).count();
        let rate = spammers as f64 / crowd.len() as f64;
        assert!((rate - 0.2).abs() < 0.03, "spammer rate {rate}");
        // Biases center on 1 in log space.
        let mean_log_bias: f64 =
            crowd.iter().map(|r| r.bias.ln()).sum::<f64>() / crowd.len() as f64;
        assert!(mean_log_bias.abs() < 0.05, "mean log bias {mean_log_bias}");
    }

    #[test]
    fn trimming_removes_extremes() {
        let responses: Vec<StopResponse> =
            (1..=100).map(|i| StopResponse { stop_secs: i as f64 }).collect();
        let trimmed = trim_responses(responses, 0.1);
        assert_eq!(trimmed.len(), 80);
        assert!(trimmed.first().unwrap().stop_secs >= 11.0);
        assert!(trimmed.last().unwrap().stop_secs <= 90.0);
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn bad_trim_fraction_panics() {
        let _ = trim_responses(vec![], 0.5);
    }

    #[test]
    fn larger_crowds_fit_better() {
        // The paper's conjecture: wide-scale crowdsourcing improves the
        // fit. Slope error at 5000 raters must beat 80 raters (the paper's
        // in-house survey size), averaged over a few repetitions.
        let cfg = CrowdConfig::default();
        let mut small_err = 0.0;
        let mut large_err = 0.0;
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pts = crowd_size_study(&mut rng, &[80, 5_000], &cfg, 0.0).unwrap();
            small_err += pts[0].err_b;
            large_err += pts[1].err_b;
        }
        assert!(
            large_err < small_err,
            "5000-rater slope error {large_err} must beat 80-rater {small_err}"
        );
    }

    #[test]
    fn trimming_distorts_cdf_fits() {
        // Regression-documenting test: tail-trimming before *CDF* fitting
        // rescales every quantile and badly biases the slope — the reason
        // crowd_size_study defaults to no trimming and the docs warn
        // against it.
        let cfg = CrowdConfig::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let raw = crowd_size_study(&mut rng, &[5_000], &cfg, 0.0).unwrap()[0].err_b;
        let mut rng = SmallRng::seed_from_u64(7);
        let trimmed = crowd_size_study(&mut rng, &[5_000], &cfg, 0.05).unwrap()[0].err_b;
        assert!(
            trimmed > 3.0 * raw.max(1e-4),
            "expected trimming to visibly distort: raw {raw}, trimmed {trimmed}"
        );
    }

    #[test]
    fn cdf_fitting_degrades_gracefully_under_spam() {
        // The CDF estimator absorbs a bounded uniform-spam mixture: with
        // 30% spammers the slope error stays small in absolute terms.
        let clean = CrowdConfig { spammer_rate: 0.0, ..CrowdConfig::default() };
        let spammy = CrowdConfig { spammer_rate: 0.30, ..CrowdConfig::default() };
        let grid: Vec<f64> = (1..=9).map(|i| i as f64 * 5.0).collect();

        let fit_err = |cfg: &CrowdConfig, seed: u64| -> f64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let crowd = sample_crowd(&mut rng, 2_000, cfg);
            let responses = collect_responses(&mut rng, &crowd, cfg);
            let pts = empirical_utility(&responses, &grid);
            match fit_logarithmic(&pts).unwrap() {
                DurationUtility::Logarithmic { b, .. } => (b - paper::LOG_UTILITY_B).abs(),
                _ => unreachable!(),
            }
        };
        let clean_err = fit_err(&clean, 42);
        let spam_err = fit_err(&spammy, 42);
        assert!(spam_err < 0.06, "spam-contaminated slope error {spam_err} too large");
        assert!(
            spam_err >= clean_err * 0.5,
            "spam should not magically *improve* the fit: {spam_err} vs {clean_err}"
        );
    }

    #[test]
    fn responses_per_rater_scales_volume() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = CrowdConfig { responses_per_rater: 4, ..CrowdConfig::default() };
        let crowd = sample_crowd(&mut rng, 25, &cfg);
        let responses = collect_responses(&mut rng, &crowd, &cfg);
        assert_eq!(responses.len(), 100);
        for r in &responses {
            assert!(r.stop_secs > 0.0 && r.stop_secs <= paper::SURVEY_MEAN_TRACK_SECS);
        }
    }
}
