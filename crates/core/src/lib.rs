//! # richnote-core
//!
//! Core algorithms and data model of the RichNote framework (ICDCS 2016):
//! *adaptive selection and delivery of rich media notifications to mobile
//! users*.
//!
//! The crate implements, from the paper:
//!
//! * the **data model** for notifications about rich media content
//!   ([`content`], [`ids`]);
//! * **presentation levels** — progressively richer renderings of a content
//!   item, from "metadata only" up to long audio previews, with Pareto
//!   pruning of dominated presentations ([`presentation`], Fig. 2(a));
//! * the **utility model** `U(i, j) = Uc(i) × Up(i, j)` combining content
//!   utility with presentation utility, including the survey-derived
//!   logarithmic and polynomial duration-utility functions (Eq. 8/9)
//!   ([`utility`], [`survey`]);
//! * the **multi-choice knapsack (MCKP) selection heuristic**
//!   (`SelectPresentations`, Algorithm 1) with greedy, fractional and exact
//!   dynamic-programming solvers ([`mckp`]);
//! * the **Lyapunov drift-plus-penalty scheduler** (Algorithm 2) with the
//!   scheduling queue `Q(t)`, the virtual energy queue `P(t)` and the
//!   adjusted utility `Ua(i,j) = Q(t)·s(i) + (P(t)−κ)·ρ(i,j) + V·U(i,j)`
//!   ([`lyapunov`]);
//! * the round-based **scheduling policies**: `RichNote` and the two
//!   industry baselines, `FIFO` and `UTIL` ([`scheduler`]), unified under
//!   the checkpointable, observable [`Policy`] trait ([`policy`]).
//!
//! # Quick example
//!
//! Select presentations for three notifications under a 500 KB budget:
//!
//! ```
//! use richnote_core::mckp::{select_greedy, MckpItem};
//! use richnote_core::presentation::AudioPresentationSpec;
//!
//! let ladder = AudioPresentationSpec::paper_default().ladder();
//! let items: Vec<MckpItem> = (0..3)
//!     .map(|i| MckpItem::from_ladder(i, &ladder, 1.0))
//!     .collect();
//! let selection = select_greedy(&items, 500_000);
//! assert!(selection.total_size <= 500_000);
//! assert_eq!(selection.levels.len(), 3);
//! ```

pub mod adaptive;
pub mod content;
pub mod crowdsurvey;
pub mod error;
pub mod generators;
pub mod ids;
pub mod lyapunov;
pub mod mckp;
pub mod mckp2;
pub mod paper;
pub mod policy;
pub mod presentation;
pub mod quality;
pub mod registry;
pub mod scheduler;
pub mod survey;
pub mod transport;
pub mod utility;

pub use adaptive::{AdaptiveCheckpoint, AdaptiveConfig, AdaptivePolicy, EwmaThroughput};
pub use content::{ContentItem, ContentKind};
pub use error::{LadderError, SurveyFitError};
pub use ids::{AlbumId, ArtistId, ContentId, PlaylistId, TopicId, TrackId, UserId};
pub use lyapunov::{LyapunovConfig, LyapunovState};
pub use mckp::{select_exact, select_fractional, select_greedy, MckpItem, Selection};
pub use policy::{
    AdaptiveDecision, FixedLevelCheckpoint, NoopObserver, Policy, PolicyCheckpoint, SelectDecision,
    SelectionObserver, WrongPolicy,
};
pub use presentation::{AudioPresentationSpec, Presentation, PresentationLadder};
pub use quality::{CohortCell, CohortLedger, ConnectivityCohort, QualitySample};
pub use registry::{PolicyName, UnknownPolicy};
pub use scheduler::{
    DeliveredNotification, FifoScheduler, NetSignal, NotificationScheduler, QueuedNotification,
    RichNoteScheduler, RoundContext, RoundContextBuilder, TransferCost, UtilScheduler,
};
pub use utility::{combined_utility, ContentUtility, DurationUtility};
