//! Lyapunov drift-plus-penalty control for notification scheduling (Sec. IV).
//!
//! The scheduler maintains two queues:
//!
//! * the **scheduling queue** `Q(t)` measured in bytes of *all*
//!   presentations of the queued items (`s(i) = Σ_j s(i,j)`), and
//! * a **virtual energy queue** `P(t)` that tracks how much energy the
//!   device is allowed to spend; it is replenished at rate `e(t)` up to the
//!   per-round budget `κ`.
//!
//! With the Lyapunov function `L(t) = ½(Q²(t) + (P(t) − κ)²)`, minimizing
//! the drift-plus-penalty bound `Δ(L(t)) − V·U_t` reduces to per-round
//! maximization of the **adjusted utility**
//!
//! ```text
//! Ua(i,j) = Q(t)·s(i) + (P(t) − κ)·ρ(i,j) + V·U(i,j)
//! ```
//!
//! under the data-budget constraint — an MCKP instance solved by
//! [`crate::mckp::select_greedy`].

use crate::paper;
use serde::{Deserialize, Serialize};

/// Configuration of the Lyapunov controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LyapunovConfig {
    /// Control knob `V`: larger values weight utility over queue backlog.
    pub v: f64,
    /// Per-round energy budget `κ` in joules.
    pub kappa: f64,
    /// Initial virtual energy queue value `P(0)`.
    pub initial_energy: f64,
}

impl LyapunovConfig {
    /// The paper's settings: `V = 1000`, `κ = 3 kJ` per hourly round.
    pub fn paper_default() -> Self {
        Self {
            v: paper::LYAPUNOV_V,
            kappa: paper::KAPPA_JOULES_PER_ROUND,
            initial_energy: paper::KAPPA_JOULES_PER_ROUND,
        }
    }
}

impl Default for LyapunovConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Mutable state of the Lyapunov controller: the two queues plus the
/// rolled-over data budget `B(t)`.
///
/// ```
/// use richnote_core::lyapunov::{LyapunovConfig, LyapunovState};
///
/// let mut state = LyapunovState::new(LyapunovConfig::paper_default());
/// state.begin_round(100_000, 3_000.0); // grant θ bytes and e(t) joules
/// state.on_enqueue(2_000_000);         // an item's presentations arrive
/// // A large backlog makes *any* delivery highly valuable:
/// let ua = state.adjusted_utility(2_000_000, 15.0, 0.4);
/// assert!(ua > 0.0);
/// state.on_deliver(2_000_000, 200, 15.0);
/// assert_eq!(state.q(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LyapunovState {
    cfg: LyapunovConfig,
    q: f64,
    p: f64,
    data_budget: f64,
}

impl LyapunovState {
    /// Creates fresh state with empty queues and zero data budget.
    pub fn new(cfg: LyapunovConfig) -> Self {
        Self { q: 0.0, p: cfg.initial_energy, data_budget: 0.0, cfg }
    }

    /// Current scheduling-queue backlog `Q(t)` (bytes).
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Current virtual energy queue `P(t)` (joules).
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Currently accumulated data budget `B(t)` (bytes).
    pub fn data_budget(&self) -> f64 {
        self.data_budget
    }

    /// The controller configuration.
    pub fn config(&self) -> &LyapunovConfig {
        &self.cfg
    }

    /// The Lyapunov function `L(t) = ½(Q² + (P − κ)²)`.
    pub fn lyapunov_value(&self) -> f64 {
        0.5 * (self.q * self.q + (self.p - self.cfg.kappa).powi(2))
    }

    /// The adjusted utility `Ua(i,j)` for a presentation of size-sum `s(i)`,
    /// energy cost `ρ(i,j)` and combined utility `U(i,j)` (Eq. 7).
    pub fn adjusted_utility(&self, item_total_size: u64, energy: f64, utility: f64) -> f64 {
        self.q * item_total_size as f64 + (self.p - self.cfg.kappa) * energy + self.cfg.v * utility
    }

    /// Round bookkeeping (Algorithm 2, step 2): grant `θ` bytes of data
    /// budget and add `e(t)` joules to `P(t)` **iff** `P(t) ≤ κ`.
    pub fn begin_round(&mut self, data_grant: u64, energy_grant: f64) {
        self.data_budget += data_grant as f64;
        if self.p <= self.cfg.kappa {
            self.p += energy_grant.max(0.0);
        }
    }

    /// Records arrival of an item whose presentations total
    /// `item_total_size` bytes (the `ν(t)` term of Eq. 4).
    pub fn on_enqueue(&mut self, item_total_size: u64) {
        self.q += item_total_size as f64;
    }

    /// Records delivery of an item (Algorithm 2, step 3): deduct the
    /// delivered bytes from `B(t)`, the energy from `P(t)`, and drop all of
    /// the item's presentations from `Q(t)`.
    pub fn on_deliver(&mut self, item_total_size: u64, delivered_bytes: u64, energy: f64) {
        self.data_budget = (self.data_budget - delivered_bytes as f64).max(0.0);
        self.p = (self.p - energy).max(0.0);
        self.q = (self.q - item_total_size as f64).max(0.0);
    }

    /// Drops an item from the scheduling queue without delivering it
    /// (e.g. expiry), removing its bytes from `Q(t)`.
    pub fn on_drop(&mut self, item_total_size: u64) {
        self.q = (self.q - item_total_size as f64).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> LyapunovState {
        LyapunovState::new(LyapunovConfig::paper_default())
    }

    #[test]
    fn paper_defaults_match_constants() {
        let cfg = LyapunovConfig::paper_default();
        assert_eq!(cfg.v, 1000.0);
        assert_eq!(cfg.kappa, 3000.0);
    }

    #[test]
    fn new_state_is_empty() {
        let s = state();
        assert_eq!(s.q(), 0.0);
        assert_eq!(s.data_budget(), 0.0);
        assert_eq!(s.p(), 3000.0);
    }

    #[test]
    fn enqueue_and_deliver_balance_q() {
        let mut s = state();
        s.on_enqueue(1_000);
        s.on_enqueue(2_000);
        assert_eq!(s.q(), 3_000.0);
        s.on_deliver(1_000, 400, 10.0);
        assert_eq!(s.q(), 2_000.0);
        s.on_drop(2_000);
        assert_eq!(s.q(), 0.0);
    }

    #[test]
    fn q_never_goes_negative() {
        let mut s = state();
        s.on_enqueue(100);
        s.on_deliver(500, 0, 0.0);
        assert_eq!(s.q(), 0.0);
    }

    #[test]
    fn energy_replenish_gated_by_kappa() {
        let mut s = state();
        // P(0) = κ, so the gate (P ≤ κ) is open.
        s.begin_round(0, 500.0);
        assert_eq!(s.p(), 3500.0);
        // Now P > κ: further grants are ignored.
        s.begin_round(0, 500.0);
        assert_eq!(s.p(), 3500.0);
        // Spend energy below κ and the gate reopens.
        s.on_deliver(0, 0, 1000.0);
        assert_eq!(s.p(), 2500.0);
        s.begin_round(0, 500.0);
        assert_eq!(s.p(), 3000.0);
    }

    #[test]
    fn negative_energy_grants_are_ignored() {
        let mut s = state();
        s.begin_round(0, -100.0);
        assert_eq!(s.p(), 3000.0);
    }

    #[test]
    fn data_budget_rolls_over() {
        let mut s = state();
        s.begin_round(1_000, 0.0);
        s.begin_round(1_000, 0.0);
        assert_eq!(s.data_budget(), 2_000.0);
        s.on_deliver(10, 500, 0.0);
        assert_eq!(s.data_budget(), 1_500.0);
    }

    #[test]
    fn adjusted_utility_follows_eq7() {
        let mut s = state();
        s.on_enqueue(1_000);
        // Q = 1000, P = 3000 = κ, V = 1000.
        let ua = s.adjusted_utility(1_000, 50.0, 0.2);
        assert!((ua - (1_000.0 * 1_000.0 + 0.0 * 50.0 + 1_000.0 * 0.2)).abs() < 1e-9);
        // Deplete energy: the (P − κ) term penalizes energy-hungry levels.
        s.on_deliver(0, 0, 2_000.0);
        let ua2 = s.adjusted_utility(1_000, 50.0, 0.2);
        assert!(ua2 < ua);
        assert!((ua2 - (1_000_000.0 - 2_000.0 * 50.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn lyapunov_value_is_half_sum_of_squares() {
        let mut s = state();
        s.on_enqueue(10);
        // Q = 10, P − κ = 0.
        assert!((s.lyapunov_value() - 50.0).abs() < 1e-12);
        s.on_deliver(0, 0, 1_000.0);
        // P − κ = −1000.
        assert!((s.lyapunov_value() - (50.0 + 500_000.0)).abs() < 1e-9);
    }

    #[test]
    fn delivering_backlog_reduces_the_lyapunov_drift() {
        // The theoretical backbone of Sec. IV: with a large backlog,
        // delivering items strictly reduces L(t+1) − L(t) compared to
        // idling, which is why drift minimization implies queue stability.
        let mut idle = state();
        let mut active = state();
        for s in [50_000u64, 80_000, 20_000] {
            idle.on_enqueue(s);
            active.on_enqueue(s);
        }
        let l0 = idle.lyapunov_value();

        // One round: both receive the same grants and arrivals; only the
        // active scheduler delivers.
        idle.begin_round(10_000, 0.0);
        active.begin_round(10_000, 0.0);
        idle.on_enqueue(5_000);
        active.on_enqueue(5_000);
        active.on_deliver(80_000, 40_000, 100.0);

        let drift_idle = idle.lyapunov_value() - l0;
        let drift_active = active.lyapunov_value() - l0;
        assert!(
            drift_active < drift_idle,
            "delivery must shrink the drift: {drift_active} vs {drift_idle}"
        );
    }

    #[test]
    fn larger_v_weights_utility_more() {
        let mut hi =
            LyapunovState::new(LyapunovConfig { v: 10_000.0, ..LyapunovConfig::paper_default() });
        let mut lo =
            LyapunovState::new(LyapunovConfig { v: 10.0, ..LyapunovConfig::paper_default() });
        hi.on_enqueue(100);
        lo.on_enqueue(100);
        let d_hi = hi.adjusted_utility(100, 0.0, 1.0) - hi.adjusted_utility(100, 0.0, 0.0);
        let d_lo = lo.adjusted_utility(100, 0.0, 1.0) - lo.adjusted_utility(100, 0.0, 0.0);
        assert!(d_hi > d_lo);
    }
}
