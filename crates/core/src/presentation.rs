//! Presentation levels for rich notifications (Sec. III-B).
//!
//! A content item can be notified at one of several discrete *presentation
//! levels*: level 0 means "not sent" (zero size, zero utility), level 1 is
//! the smallest deliverable presentation (essential metadata only), and
//! successive levels enrich the notification with progressively longer media
//! samples. Levels are strictly ordered by size *and* utility — dominated
//! combinations are pruned away, which is exactly the Pareto-frontier
//! argument of Fig. 2(a).

use crate::error::LadderError;
use crate::paper;
use crate::utility::DurationUtility;
use serde::{Deserialize, Serialize};

/// One presentation of a content item: a (size, utility) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Presentation {
    /// Level index within the ladder (0 = not sent).
    pub level: u8,
    /// Size in bytes of this presentation, `s(i, j)`.
    pub size: u64,
    /// Presentation utility `Up(i, j)` relative to the full content.
    pub utility: f64,
}

/// An ordered, validated set of presentations for one content item.
///
/// Invariants (checked at construction):
/// * level 0 exists, with zero size and zero utility;
/// * at least one deliverable level (level ≥ 1) exists;
/// * sizes and utilities are strictly increasing with level;
/// * all utilities are finite.
///
/// # Examples
///
/// ```
/// use richnote_core::presentation::AudioPresentationSpec;
///
/// let ladder = AudioPresentationSpec::paper_default().ladder();
/// assert_eq!(ladder.max_level(), 6); // metadata + five preview durations
/// assert_eq!(ladder.get(1).size, 200); // metadata-only level
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresentationLadder {
    levels: Vec<Presentation>,
}

impl PresentationLadder {
    /// Builds a ladder from deliverable presentations (level 0 is implied
    /// and prepended automatically).
    ///
    /// The `(size, utility)` pairs must be given in increasing level order.
    ///
    /// # Errors
    ///
    /// Returns [`LadderError`] if the pairs are empty, non-monotone, or
    /// contain non-finite utilities.
    pub fn new(deliverable: Vec<(u64, f64)>) -> Result<Self, LadderError> {
        if deliverable.is_empty() {
            return Err(LadderError::Empty);
        }
        let mut levels = Vec::with_capacity(deliverable.len() + 1);
        levels.push(Presentation { level: 0, size: 0, utility: 0.0 });
        for (idx, (size, utility)) in deliverable.into_iter().enumerate() {
            let level = (idx + 1) as u8;
            if !utility.is_finite() {
                return Err(LadderError::NonFiniteUtility { level });
            }
            levels.push(Presentation { level, size, utility });
        }
        Self::validate(&levels)?;
        Ok(Self { levels })
    }

    fn validate(levels: &[Presentation]) -> Result<(), LadderError> {
        let base = &levels[0];
        if base.size != 0 || base.utility != 0.0 {
            return Err(LadderError::NonZeroBase);
        }
        for pair in levels.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if hi.size <= lo.size {
                return Err(LadderError::NonMonotoneSize { level: lo.level });
            }
            if hi.utility <= lo.utility {
                return Err(LadderError::NonMonotoneUtility { level: lo.level });
            }
        }
        Ok(())
    }

    /// The presentation at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > self.max_level()`.
    pub fn get(&self, level: u8) -> Presentation {
        self.levels[level as usize]
    }

    /// Highest available level, `k_i`.
    pub fn max_level(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Clamps a requested level to the highest available one. Useful for
    /// fixed-level baselines applied to ladders of differing depth.
    pub fn clamp_level(&self, level: u8) -> u8 {
        level.min(self.max_level())
    }

    /// Iterates over all levels including level 0.
    pub fn iter(&self) -> std::slice::Iter<'_, Presentation> {
        self.levels.iter()
    }

    /// Total size of **all** presentations of the item,
    /// `s(i) = Σ_j s(i, j)` — the quantity the Lyapunov scheduling queue
    /// `Q(t)` is measured in (Sec. IV).
    pub fn total_size(&self) -> u64 {
        self.levels.iter().map(|p| p.size).sum()
    }

    /// Size of the largest single presentation.
    pub fn max_size(&self) -> u64 {
        self.levels.last().map(|p| p.size).unwrap_or(0)
    }

    /// The (size, utility) pairs of deliverable levels (level ≥ 1).
    pub fn deliverable(&self) -> &[Presentation] {
        &self.levels[1..]
    }
}

impl<'a> IntoIterator for &'a PresentationLadder {
    type Item = &'a Presentation;
    type IntoIter = std::slice::Iter<'a, Presentation>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

/// Specification of audio presentations: metadata plus preview clips of
/// increasing duration at a fixed bitrate (the paper's Spotify setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioPresentationSpec {
    /// Metadata size in bytes (level 1).
    pub metadata_bytes: u64,
    /// Preview durations in seconds for levels 2..
    pub preview_secs: Vec<f64>,
    /// Bytes per second of preview audio.
    pub bytes_per_sec: u64,
    /// Fraction of total presentation utility attributed to metadata.
    pub metadata_utility_fraction: f64,
    /// Duration→utility model for the audio part.
    pub duration_utility: DurationUtility,
}

impl AudioPresentationSpec {
    /// The paper's configuration: 200-byte metadata, previews of
    /// 5/10/20/30/40 s at 20 KB/s (160 kbps), 1% metadata utility, and the
    /// logarithmic duration-utility function of Eq. 8.
    pub fn paper_default() -> Self {
        Self {
            metadata_bytes: paper::METADATA_BYTES,
            preview_secs: paper::PREVIEW_DURATIONS_SECS.to_vec(),
            bytes_per_sec: paper::PREVIEW_BYTES_PER_SEC,
            metadata_utility_fraction: paper::METADATA_UTILITY_FRACTION,
            duration_utility: DurationUtility::paper_logarithmic(),
        }
    }

    /// Materializes the presentation ladder for this spec.
    ///
    /// Level 1 carries `metadata_utility_fraction` of the utility scale;
    /// levels 2.. add the duration-utility of their preview on top.
    ///
    /// # Panics
    ///
    /// Panics if the spec produces a non-monotone ladder (cannot happen for
    /// positive durations with a monotone duration-utility model).
    pub fn ladder(&self) -> PresentationLadder {
        self.try_ladder().expect("audio presentation spec must produce a monotone ladder")
    }

    /// Fallible variant of [`Self::ladder`].
    ///
    /// # Errors
    ///
    /// Returns [`LadderError`] when the configured durations or utility
    /// model yield non-monotone sizes or utilities.
    pub fn try_ladder(&self) -> Result<PresentationLadder, LadderError> {
        let mut levels = Vec::with_capacity(self.preview_secs.len() + 1);
        levels.push((self.metadata_bytes, self.metadata_utility_fraction));
        for &d in &self.preview_secs {
            let size = self.metadata_bytes + (d * self.bytes_per_sec as f64).round() as u64;
            let audio_utility = self.duration_utility.eval(d).max(0.0);
            let utility = self.metadata_utility_fraction
                + (1.0 - self.metadata_utility_fraction) * audio_utility;
            levels.push((size, utility));
        }
        PresentationLadder::new(levels)
    }
}

impl Default for AudioPresentationSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A raw candidate presentation from a survey cell, before Pareto pruning
/// (Fig. 2(a)): e.g. one (sampling-rate × duration) combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidatePresentation {
    /// Size in bytes.
    pub size: u64,
    /// Surveyed utility score.
    pub utility: f64,
    /// Free-form label (e.g. "16KHz/10s") carried through pruning.
    pub label_id: usize,
}

/// Computes the Pareto frontier of useful presentations (Fig. 2(a)).
///
/// A candidate is *useful* iff no other candidate has both `size ≤` and
/// `utility ≥` it (with at least one strict). The survey in the paper
/// reduced 20 sampling-rate × duration combinations to six useful ones this
/// way. The result is sorted by size and strictly increasing in both size
/// and utility, so it is directly usable as a [`PresentationLadder`].
///
/// # Examples
///
/// ```
/// use richnote_core::presentation::{pareto_frontier, CandidatePresentation};
///
/// let cands = vec![
///     CandidatePresentation { size: 100, utility: 1.0, label_id: 0 }, // A
///     CandidatePresentation { size: 200, utility: 1.0, label_id: 1 }, // B: dominated by A
///     CandidatePresentation { size: 200, utility: 2.0, label_id: 2 }, // D
/// ];
/// let frontier = pareto_frontier(&cands);
/// assert_eq!(frontier.iter().map(|c| c.label_id).collect::<Vec<_>>(), vec![0, 2]);
/// ```
pub fn pareto_frontier(candidates: &[CandidatePresentation]) -> Vec<CandidatePresentation> {
    let mut sorted: Vec<CandidatePresentation> = candidates.to_vec();
    // Sort by size ascending; among equal sizes keep the highest utility first.
    sorted.sort_by(|a, b| {
        a.size
            .cmp(&b.size)
            .then(b.utility.partial_cmp(&a.utility).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut frontier: Vec<CandidatePresentation> = Vec::new();
    for cand in sorted {
        match frontier.last() {
            Some(last) if cand.size == last.size => continue, // same size, lower utility
            Some(last) if cand.utility <= last.utility => continue, // bigger but not better
            _ => frontier.push(cand),
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_has_six_deliverable_levels() {
        let ladder = AudioPresentationSpec::paper_default().ladder();
        assert_eq!(ladder.max_level(), 6);
        assert_eq!(ladder.get(0).size, 0);
        assert_eq!(ladder.get(1).size, 200);
        // 5-second preview: 200 + 5×20000 bytes.
        assert_eq!(ladder.get(2).size, 100_200);
        // 40-second preview.
        assert_eq!(ladder.get(6).size, 800_200);
    }

    #[test]
    fn paper_ladder_utilities_are_strictly_increasing() {
        let ladder = AudioPresentationSpec::paper_default().ladder();
        let utils: Vec<f64> = ladder.iter().map(|p| p.utility).collect();
        for w in utils.windows(2) {
            assert!(w[1] > w[0], "{:?}", utils);
        }
    }

    #[test]
    fn paper_ladder_shows_diminishing_returns_per_byte() {
        // The marginal utility per byte must decrease with level — the
        // "diminishing returns" property of Sec. III-A.
        let ladder = AudioPresentationSpec::paper_default().ladder();
        let mut last_gradient = f64::INFINITY;
        for w in ladder.deliverable().windows(2) {
            let g = (w[1].utility - w[0].utility) / (w[1].size - w[0].size) as f64;
            assert!(g < last_gradient, "gradient must shrink: {g} vs {last_gradient}");
            last_gradient = g;
        }
    }

    #[test]
    fn empty_ladder_is_rejected() {
        assert_eq!(PresentationLadder::new(vec![]), Err(LadderError::Empty));
    }

    #[test]
    fn non_monotone_size_is_rejected() {
        let err = PresentationLadder::new(vec![(100, 0.1), (100, 0.2)]).unwrap_err();
        assert_eq!(err, LadderError::NonMonotoneSize { level: 1 });
    }

    #[test]
    fn non_monotone_utility_is_rejected() {
        let err = PresentationLadder::new(vec![(100, 0.2), (200, 0.2)]).unwrap_err();
        assert_eq!(err, LadderError::NonMonotoneUtility { level: 1 });
    }

    #[test]
    fn non_finite_utility_is_rejected() {
        let err = PresentationLadder::new(vec![(100, f64::NAN)]).unwrap_err();
        assert_eq!(err, LadderError::NonFiniteUtility { level: 1 });
    }

    #[test]
    fn total_size_sums_all_presentations() {
        let ladder = PresentationLadder::new(vec![(100, 0.1), (300, 0.2)]).unwrap();
        assert_eq!(ladder.total_size(), 400);
        assert_eq!(ladder.max_size(), 300);
    }

    #[test]
    fn clamp_level_saturates() {
        let ladder = PresentationLadder::new(vec![(100, 0.1), (300, 0.2)]).unwrap();
        assert_eq!(ladder.clamp_level(1), 1);
        assert_eq!(ladder.clamp_level(9), 2);
    }

    #[test]
    fn pareto_drops_dominated_points_like_fig2a() {
        // Mirror of Fig. 2(a): B is useless given A (same utility, larger),
        // C is useless given D (same size, lower utility).
        let cands = vec![
            CandidatePresentation { size: 10, utility: 1.0, label_id: 0 }, // A
            CandidatePresentation { size: 20, utility: 1.0, label_id: 1 }, // B
            CandidatePresentation { size: 30, utility: 1.5, label_id: 2 }, // C
            CandidatePresentation { size: 30, utility: 2.0, label_id: 3 }, // D
            CandidatePresentation { size: 40, utility: 3.0, label_id: 4 }, // E
        ];
        let f = pareto_frontier(&cands);
        let ids: Vec<usize> = f.iter().map(|c| c.label_id).collect();
        assert_eq!(ids, vec![0, 3, 4]);
    }

    #[test]
    fn pareto_frontier_is_strictly_monotone() {
        let cands: Vec<CandidatePresentation> = (0..50)
            .map(|i| CandidatePresentation {
                size: (i * 37) % 101 + 1,
                utility: ((i * 53) % 17) as f64 / 4.0,
                label_id: i as usize,
            })
            .collect();
        let f = pareto_frontier(&cands);
        for w in f.windows(2) {
            assert!(w[1].size > w[0].size);
            assert!(w[1].utility > w[0].utility);
        }
    }

    #[test]
    fn pareto_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn frontier_forms_a_valid_ladder() {
        let cands = vec![
            CandidatePresentation { size: 10, utility: 0.5, label_id: 0 },
            CandidatePresentation { size: 25, utility: 1.25, label_id: 1 },
            CandidatePresentation { size: 12, utility: 0.4, label_id: 2 },
        ];
        let f = pareto_frontier(&cands);
        let ladder =
            PresentationLadder::new(f.iter().map(|c| (c.size, c.utility)).collect()).unwrap();
        assert_eq!(ladder.max_level(), 2);
    }
}
