//! Presentation generators for different media types (Sec. III-B).
//!
//! The paper assumes "a certain *generator* exists that produces these
//! presentations at different level of details. Different generators may
//! exist for different content types, which are developed by the content
//! providers." This module provides that abstraction plus three concrete
//! generators:
//!
//! * audio previews ([`crate::presentation::AudioPresentationSpec`], the
//!   Spotify use case),
//! * scalable **video** (duration × quality layers, in the spirit of the
//!   H.264/SVC layering the related-work section points to),
//! * **images** (thumbnail pyramid, e.g. album cover art).
//!
//! Every generator yields a validated [`PresentationLadder`]; candidates
//! that are not on the size/utility Pareto frontier are pruned exactly as
//! in Fig. 2(a).

use crate::error::LadderError;
use crate::presentation::{
    pareto_frontier, AudioPresentationSpec, CandidatePresentation, PresentationLadder,
};
use crate::utility::DurationUtility;
use serde::{Deserialize, Serialize};

/// A producer of presentation ladders for one media type.
///
/// Implementations are expected to be cheap to call — the broker invokes
/// them once per incoming content item.
pub trait PresentationGenerator {
    /// Generates the ladder for a content item with the given full media
    /// duration (seconds; ignored by duration-free media such as images).
    ///
    /// # Errors
    ///
    /// Returns [`LadderError`] when the configured parameters cannot yield
    /// a monotone ladder.
    fn generate(&self, full_duration_secs: f64) -> Result<PresentationLadder, LadderError>;

    /// A short name for reports ("audio", "video", "image").
    fn media_type(&self) -> &'static str;
}

impl PresentationGenerator for AudioPresentationSpec {
    fn generate(&self, full_duration_secs: f64) -> Result<PresentationLadder, LadderError> {
        // Previews never exceed the track itself.
        let mut spec = self.clone();
        spec.preview_secs.retain(|&d| d <= full_duration_secs);
        if spec.preview_secs.is_empty() {
            // Degenerate short clips: metadata only.
            return PresentationLadder::new(vec![(
                self.metadata_bytes,
                self.metadata_utility_fraction,
            )]);
        }
        spec.try_ladder()
    }

    fn media_type(&self) -> &'static str {
        "audio"
    }
}

/// A quality layer of a scalable video encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoLayer {
    /// Bitrate of the layer in kbit/s (cumulative, i.e. total stream rate
    /// when this layer is the top one).
    pub bitrate_kbps: u32,
    /// Subjective quality factor of the layer in `(0, 1]`, relative to the
    /// best layer.
    pub quality: f64,
}

/// Video presentation generator: metadata, poster frame, then preview
/// clips over the Cartesian product of durations × quality layers — with
/// dominated combinations pruned to a Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoPresentationSpec {
    /// Metadata size in bytes (level 1).
    pub metadata_bytes: u64,
    /// Poster-frame (single image) size in bytes.
    pub poster_bytes: u64,
    /// Preview durations in seconds.
    pub preview_secs: Vec<f64>,
    /// Quality layers, ascending bitrate.
    pub layers: Vec<VideoLayer>,
    /// Fraction of utility attributed to metadata alone.
    pub metadata_utility_fraction: f64,
    /// Fraction of utility attributed to the poster frame (on top of
    /// metadata).
    pub poster_utility_fraction: f64,
    /// Duration→utility model for the moving-picture part.
    pub duration_utility: DurationUtility,
}

impl VideoPresentationSpec {
    /// A plausible default: 300-byte metadata, 40 KB poster, 5/10/20-second
    /// previews at 400/1200 kbit/s layers.
    pub fn default_spec() -> Self {
        Self {
            metadata_bytes: 300,
            poster_bytes: 40_000,
            preview_secs: vec![5.0, 10.0, 20.0],
            layers: vec![
                VideoLayer { bitrate_kbps: 400, quality: 0.6 },
                VideoLayer { bitrate_kbps: 1_200, quality: 1.0 },
            ],
            metadata_utility_fraction: 0.01,
            poster_utility_fraction: 0.05,
            duration_utility: DurationUtility::paper_logarithmic(),
        }
    }
}

impl PresentationGenerator for VideoPresentationSpec {
    fn generate(&self, full_duration_secs: f64) -> Result<PresentationLadder, LadderError> {
        let meta_u = self.metadata_utility_fraction;
        let poster_u = meta_u + self.poster_utility_fraction;
        let media_scale = 1.0 - poster_u;

        // Enumerate duration × layer candidates, then prune.
        let mut cands = vec![
            CandidatePresentation { size: self.metadata_bytes, utility: meta_u, label_id: 0 },
            CandidatePresentation {
                size: self.metadata_bytes + self.poster_bytes,
                utility: poster_u,
                label_id: 1,
            },
        ];
        let mut label = 2usize;
        for &d in &self.preview_secs {
            if d > full_duration_secs {
                continue;
            }
            for layer in &self.layers {
                let clip_bytes = (d * f64::from(layer.bitrate_kbps) * 1000.0 / 8.0) as u64;
                let duration_u = self.duration_utility.eval(d).max(0.0);
                cands.push(CandidatePresentation {
                    size: self.metadata_bytes + self.poster_bytes + clip_bytes,
                    utility: poster_u + media_scale * duration_u * layer.quality,
                    label_id: label,
                });
                label += 1;
            }
        }
        let frontier = pareto_frontier(&cands);
        PresentationLadder::new(frontier.iter().map(|c| (c.size, c.utility)).collect())
    }

    fn media_type(&self) -> &'static str {
        "video"
    }
}

/// Image presentation generator: a thumbnail pyramid (e.g. album art),
/// each level a larger rendition with diminishing-returns utility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImagePresentationSpec {
    /// Metadata size in bytes.
    pub metadata_bytes: u64,
    /// Rendition edge sizes in pixels, ascending.
    pub edge_px: Vec<u32>,
    /// Compressed bytes per pixel (JPEG-ish ≈ 0.25).
    pub bytes_per_pixel: f64,
    /// Fraction of utility attributed to metadata alone.
    pub metadata_utility_fraction: f64,
}

impl ImagePresentationSpec {
    /// Album-art default: 64/160/320/640-pixel renditions.
    pub fn default_spec() -> Self {
        Self {
            metadata_bytes: 200,
            edge_px: vec![64, 160, 320, 640],
            bytes_per_pixel: 0.25,
            metadata_utility_fraction: 0.05,
        }
    }
}

impl PresentationGenerator for ImagePresentationSpec {
    fn generate(&self, _full_duration_secs: f64) -> Result<PresentationLadder, LadderError> {
        let meta_u = self.metadata_utility_fraction;
        let max_px = self.edge_px.iter().copied().max().unwrap_or(1).max(1);
        let mut levels = vec![(self.metadata_bytes, meta_u)];
        for &edge in &self.edge_px {
            let px = u64::from(edge) * u64::from(edge);
            let size = self.metadata_bytes + (px as f64 * self.bytes_per_pixel) as u64;
            // Perceptual quality scales roughly with log resolution.
            let quality =
                (1.0 + px as f64).ln() / (1.0 + f64::from(max_px) * f64::from(max_px)).ln();
            levels.push((size, meta_u + (1.0 - meta_u) * quality));
        }
        let cands: Vec<CandidatePresentation> = levels
            .iter()
            .enumerate()
            .map(|(i, &(size, utility))| CandidatePresentation { size, utility, label_id: i })
            .collect();
        let frontier = pareto_frontier(&cands);
        PresentationLadder::new(frontier.iter().map(|c| (c.size, c.utility)).collect())
    }

    fn media_type(&self) -> &'static str {
        "image"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_generator_matches_spec_ladder() {
        let spec = AudioPresentationSpec::paper_default();
        let ladder = spec.generate(276.0).unwrap();
        assert_eq!(ladder, spec.ladder());
        assert_eq!(spec.media_type(), "audio");
    }

    #[test]
    fn audio_generator_truncates_previews_to_track_length() {
        let spec = AudioPresentationSpec::paper_default();
        // A 12-second jingle: only the 5 and 10-second previews survive.
        let ladder = spec.generate(12.0).unwrap();
        assert_eq!(ladder.max_level(), 3); // metadata + 5s + 10s
                                           // A 3-second sting: metadata only.
        let tiny = spec.generate(3.0).unwrap();
        assert_eq!(tiny.max_level(), 1);
    }

    #[test]
    fn video_ladder_is_monotone_and_pruned() {
        let spec = VideoPresentationSpec::default_spec();
        let ladder = spec.generate(600.0).unwrap();
        assert!(ladder.max_level() >= 3, "{ladder:?}");
        let mut last = (0u64, 0.0f64);
        for p in ladder.deliverable() {
            assert!(p.size > last.0);
            assert!(p.utility > last.1);
            last = (p.size, p.utility);
        }
        assert_eq!(spec.media_type(), "video");
    }

    #[test]
    fn video_low_quality_long_clip_can_be_dominated() {
        // A low-quality 20 s clip is bigger than a high-quality 5 s clip;
        // whether it survives depends on the utility trade-off. Verify the
        // frontier drops at least one of the 2×3 = 6 raw combinations or
        // keeps all monotone — i.e., the ladder never exceeds
        // metadata + poster + 6 levels.
        let ladder = VideoPresentationSpec::default_spec().generate(600.0).unwrap();
        assert!(ladder.max_level() as usize <= 8);
    }

    #[test]
    fn video_respects_short_content() {
        let spec = VideoPresentationSpec::default_spec();
        let ladder = spec.generate(6.0).unwrap();
        // Only the 5-second previews (two layers) are candidates.
        assert!(ladder.max_level() <= 4);
    }

    #[test]
    fn image_pyramid_is_monotone() {
        let spec = ImagePresentationSpec::default_spec();
        let ladder = spec.generate(0.0).unwrap();
        assert_eq!(ladder.max_level(), 5); // metadata + four renditions
        for w in ladder.deliverable().windows(2) {
            assert!(w[1].utility > w[0].utility);
            assert!(w[1].size > w[0].size);
        }
        assert_eq!(spec.media_type(), "image");
    }

    #[test]
    fn image_utility_shows_diminishing_returns() {
        let ladder = ImagePresentationSpec::default_spec().generate(0.0).unwrap();
        let mut last_gradient = f64::INFINITY;
        for w in ladder.deliverable().windows(2) {
            let g = (w[1].utility - w[0].utility) / (w[1].size - w[0].size) as f64;
            assert!(g < last_gradient);
            last_gradient = g;
        }
    }

    #[test]
    fn generators_are_object_safe() {
        let generators: Vec<Box<dyn PresentationGenerator>> = vec![
            Box::new(AudioPresentationSpec::paper_default()),
            Box::new(VideoPresentationSpec::default_spec()),
            Box::new(ImagePresentationSpec::default_spec()),
        ];
        for g in &generators {
            let ladder = g.generate(300.0).unwrap();
            assert!(ladder.max_level() >= 1, "{} ladder empty", g.media_type());
        }
    }
}
