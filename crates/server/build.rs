//! Captures the git commit at compile time so the daemon can report its
//! build identity (`richnote_build_info` gauge, `Stats` wire response)
//! without a runtime dependency on git being installed where it runs.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=RICHNOTE_GIT_SHA={sha}");
    // Rebuild when HEAD moves (best effort; absent outside a checkout).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=build.rs");
}
