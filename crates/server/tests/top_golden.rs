//! Golden-output test for `richnote-top --once`: the headless dashboard
//! frame is part of the operator interface, so its shape only changes
//! when someone *means* to change it.
//!
//! The frame is normalized before comparison — digits, durations, the
//! git sha, and health verdicts are machine- and commit-dependent, the
//! layout is not. Regenerate the golden after an intentional format
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p richnote-server --test top_golden
//! ```

use richnote_core::ContentItem;
use richnote_pubsub::Topic;
use richnote_server::{Client, Server, ServerConfig};
use richnote_trace::{TraceConfig, TraceGenerator};
use std::path::PathBuf;

/// Collapses every run of digits to `N`, so counts, rates, ports, and
/// timestamps compare equal across machines.
fn collapse_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_run = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_run {
                out.push('N');
                in_run = true;
            }
        } else {
            out.push(c);
            in_run = false;
        }
    }
    out
}

/// Makes a rendered frame machine-independent: git sha → `GITSHA`,
/// profile → `PROFILE`, digits → `N`, `Nµs`/`N.Nms`/`N.Ns` → `DUR`,
/// health verdicts → `STATUS`, sparkline bars → `#`.
fn normalize(frame: &str) -> String {
    let mut s = frame.replace(env!("RICHNOTE_GIT_SHA"), "GITSHA");
    for profile in ["debug", "release"] {
        s = s.replace(&format!("GITSHA, {profile})"), "GITSHA, PROFILE)");
    }
    let mut s = collapse_digits(&s);
    // Durations carry a magnitude-dependent unit; fold all three forms.
    for unit in ["N.Ns", "N.Nms", "Nµs"] {
        s = s.replace(unit, "DUR");
    }
    // Health verdicts depend on machine speed, not formatting.
    for verdict in ["ok", "degraded", "violating"] {
        s = s.replace(&format!("health {verdict}"), "health STATUS");
        s = s.replace(&format!(" {verdict} (budget"), " STATUS (budget");
    }
    // The level sparkline scales counts into block glyphs; keep only
    // whether a cell is lit.
    s = s
        .chars()
        .map(|c| match c {
            '▁' | '▂' | '▃' | '▄' | '▅' | '▆' | '▇' | '█' => '#',
            other => other,
        })
        .collect();
    s
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/richnote_top_once.txt")
}

#[test]
fn top_once_frame_matches_golden() {
    let cfg = ServerConfig::builder().addr("127.0.0.1:0").shards(2).build().expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    // A fixed small workload so every pane has content (deterministic
    // items; the daemon's virtual-time rounds keep selection repeatable).
    let items: Vec<ContentItem> = TraceGenerator::new(TraceConfig::small(23)).generate().items;
    for item in &items {
        client.subscribe(item.recipient, Topic::FriendFeed(item.recipient)).expect("subscribe");
    }
    for item in items {
        let topic = Topic::FriendFeed(item.recipient);
        client.publish(topic, item).expect("publish");
    }
    client.sync().expect("sync");
    client.tick(3).expect("tick");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_richnote-top"))
        .args(["--addr", &addr.to_string(), "--once"])
        .output()
        .expect("run richnote-top");
    assert!(
        out.status.success(),
        "richnote-top --once failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame = normalize(&String::from_utf8_lossy(&out.stdout));

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, &frame).expect("write golden");
        eprintln!("updated {}", path.display());
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            frame, golden,
            "richnote-top --once frame drifted from the golden; if the change is \
             intentional, regenerate with UPDATE_GOLDEN=1"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
