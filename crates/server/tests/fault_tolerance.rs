//! Fault-tolerance integration tests: kill-and-restart determinism,
//! client retry under injected connection drops, drain semantics, and
//! loud failure on corrupt checkpoints.

use richnote_core::scheduler::{NotificationScheduler, QueuedNotification, RichNoteScheduler};
use richnote_core::{ContentId, ContentItem, UserId};
use richnote_pubsub::Topic;
use richnote_server::shard::content_utility;
use richnote_server::wire::{read_frame, write_frame, ErrorCode, Request, Response};
use richnote_server::{
    read_flight_file, shard_of, CaptureReader, Client, CodecKind, FaultPlan, FaultRng, Server,
    ServerConfig, ServerError, ShardPanicFault, SpanStage, PROTO_VERSION,
};
use richnote_trace::{TraceConfig, TraceGenerator};
use std::collections::BTreeSet;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

const ROUNDS: usize = 12;

/// A fresh scratch directory under the system temp dir; unique per test
/// invocation so parallel test runs cannot collide.
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "richnote-ft-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn trace_items() -> Vec<ContentItem> {
    TraceGenerator::new(TraceConfig::small(7)).generate().items
}

/// Items partitioned into per-round arrival batches of virtual time.
fn arrival_batches(items: &[ContentItem], round_secs: f64) -> Vec<Vec<ContentItem>> {
    let mut batches = vec![Vec::new(); ROUNDS];
    for item in items {
        let round = ((item.arrival / round_secs) as usize).min(ROUNDS - 1);
        batches[round].push(item.clone());
    }
    batches
}

/// One delivery as the paper's reference scheduler would log it.
type Log = Vec<(u64, UserId, ContentId, u8)>;

/// The uninterrupted single-threaded reference: one RichNoteScheduler per
/// user, driven directly through every round.
fn run_reference(cfg: &ServerConfig, batches: &[Vec<ContentItem>]) -> Log {
    let ladder =
        std::sync::Arc::new(richnote_core::AudioPresentationSpec::paper_default().ladder());
    let mut schedulers: std::collections::BTreeMap<UserId, RichNoteScheduler> = Default::default();
    let mut log = Log::new();
    for (round, batch) in batches.iter().enumerate() {
        let now = round as f64 * cfg.round_secs;
        for item in batch {
            schedulers
                .entry(item.recipient)
                .or_insert_with(|| RichNoteScheduler::builder().build())
                .enqueue(QueuedNotification {
                    item: item.clone(),
                    ladder: ladder.clone(),
                    content_utility: content_utility(item),
                    enqueued_at: now,
                });
        }
        let ctx = richnote_core::scheduler::RoundContext::builder(&cfg.cost)
            .round(round as u64)
            .now(now)
            .round_secs(cfg.round_secs)
            .link_capacity(cfg.link_capacity)
            .data_grant(cfg.data_grant)
            .energy_grant(cfg.energy_grant)
            .build();
        let mut per_round: Vec<_> = Vec::new();
        for (&user, scheduler) in &mut schedulers {
            for d in scheduler.run_round(&ctx) {
                per_round.push((round as u64, user, d.content, d.level));
            }
        }
        // Same order the daemon reports: by (round, user).
        per_round.sort_by_key(|&(r, u, ..)| (r, u.value()));
        log.extend(per_round);
    }
    log
}

/// Publishes `batch`, fences it with `sync`, then ticks one round and
/// appends the reported deliveries to `log`.
fn drive_round(client: &mut Client, batch: &[ContentItem], log: &mut Log) {
    for item in batch {
        client.publish(Topic::FriendFeed(item.recipient), item.clone()).expect("publish");
    }
    client.sync().expect("sync");
    let (_, deliveries) = client.tick_report(1).expect("tick");
    log.extend(deliveries.into_iter().map(|d| (d.round, d.user, d.content, d.level)));
}

/// The tentpole acceptance test: kill the daemon partway through the
/// trace (Shutdown = crash semantics, no final checkpoint), restart it
/// from the periodic checkpoints, finish the trace, and require the
/// combined delivery log to be byte-identical to an uninterrupted
/// single-threaded reference run.
#[test]
fn kill_and_restart_restores_byte_identical_selections() {
    const KILL_AT: usize = 5;
    let dir = scratch_dir("kill-restart");
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .checkpoint_dir(dir.to_str().unwrap())
        .checkpoint_every_rounds(1)
        .build()
        .expect("config");
    let batches = arrival_batches(&trace_items(), cfg.round_secs);
    let reference = run_reference(&cfg, &batches);
    assert!(reference.len() > 50, "trace too small to be a meaningful determinism check");

    let mut log = Log::new();
    let users: BTreeSet<UserId> = batches.iter().flatten().map(|i| i.recipient).collect();

    // Phase 1: run the first KILL_AT rounds, then crash.
    let (addr, handle) = Server::spawn(cfg.clone()).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");
    for &user in &users {
        client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    }
    for batch in &batches[..KILL_AT] {
        drive_round(&mut client, batch, &mut log);
    }
    client.shutdown().expect("kill");
    handle.join().expect("server thread");

    // Phase 2: restart from the checkpoint directory and finish. The
    // subscription table rides the checkpoint, so no re-subscribing.
    let server = Server::bind(cfg).expect("rebind");
    let restored = server.restored().expect("restart must restore the checkpoint");
    assert_eq!(restored.round, KILL_AT as u64, "checkpoint cut at the kill boundary");
    // Only users who have ingested something carry scheduler state.
    assert!(restored.users > 0 && restored.users as usize <= users.len());
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    let mut client = Client::builder(addr).connect().expect("reconnect");
    for batch in &batches[KILL_AT..] {
        drive_round(&mut client, batch, &mut log);
    }
    let snap = client.metrics().expect("metrics");
    assert!(snap.restored_users() > 0, "shards must report restored users");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");

    assert_eq!(log, reference, "interrupted run diverged from the uninterrupted reference");
    let _ = std::fs::remove_dir_all(&dir);
}

/// ~5% injected connection drops across the whole publish phase must not
/// lose a single acked publication: every offered item is ingested
/// exactly once (reconnect replay is deduplicated by the session
/// watermark).
#[test]
fn zero_acked_loss_under_connection_drops() {
    let cfg = ServerConfig::builder().addr("127.0.0.1:0").shards(2).build().expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    let items = trace_items();
    let users: BTreeSet<UserId> = items.iter().map(|i| i.recipient).collect();
    for &user in &users {
        client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    }

    let mut chaos = FaultRng::new(0xC0FFEE);
    let mut injected = 0u32;
    for item in &items {
        if chaos.next_f64() < 0.05 {
            client.inject_connection_reset();
            injected += 1;
        }
        client.publish(Topic::FriendFeed(item.recipient), item.clone()).expect("publish");
    }
    client.sync().expect("sync");
    assert!(injected > 20, "the fault schedule must actually fire (got {injected})");
    assert!(client.reconnects() > 0, "drops must force reconnects");

    // Tick until the backlog drains, then check the books.
    for _ in 0..400 {
        client.tick(1).expect("tick");
        if client.metrics().expect("metrics").backlog() == 0 {
            break;
        }
    }
    let snap = client.metrics().expect("metrics");
    assert_eq!(
        snap.ingested(),
        items.len() as u64,
        "acked publications lost or duplicated across {injected} injected drops"
    );
    assert_eq!(snap.dropped(), 0);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A client that dies mid-frame (length prefix promises more bytes than
/// ever arrive) must only kill its own connection; the daemon keeps
/// serving others.
#[test]
fn connection_reset_mid_frame_leaves_server_serving() {
    let cfg = ServerConfig::builder().addr("127.0.0.1:0").shards(1).build().expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");

    {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        // 64-byte payload promised, 3 bytes delivered, then a hard close.
        let partial = [64u8, 0, 0, 0, PROTO_VERSION as u8, b'{', b'"', b'H'];
        raw.write_all(&partial).expect("partial frame");
        raw.flush().expect("flush");
    }

    let mut client = Client::builder(addr).connect().expect("connect after partial frame");
    let user = UserId::new(1);
    client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    let item = trace_items().remove(0);
    client.publish(Topic::FriendFeed(user), item).expect("publish");
    client.sync().expect("sync");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A truncated newest checkpoint must fail the restart loudly — silently
/// falling back to an older checkpoint would replay rounds the outside
/// world already observed.
#[test]
fn truncated_checkpoint_fails_loudly_on_restore() {
    let dir = scratch_dir("truncated");
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .checkpoint_dir(dir.to_str().unwrap())
        .build()
        .expect("config");
    let (addr, handle) = Server::spawn(cfg.clone()).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");
    let user = UserId::new(9);
    client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    let item = trace_items().remove(0);
    client.publish(Topic::FriendFeed(user), item).expect("publish");
    client.sync().expect("sync");
    client.tick(1).expect("tick");
    client.checkpoint().expect("checkpoint");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");

    let newest = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rnck"))
        .max()
        .expect("a checkpoint file");
    let bytes = std::fs::read(&newest).expect("read checkpoint");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate");

    match Server::bind(cfg) {
        Err(ServerError::Checkpoint { .. }) => {}
        Err(other) => panic!("expected a Checkpoint error, got {other}"),
        Ok(_) => panic!("bind must refuse a truncated checkpoint"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected shard-worker panic is contained: the tick that hits it
/// reports a typed Internal error instead of hanging or crashing the
/// daemon, and the connection (and broker paths that bypass the dead
/// shard) keep working.
#[test]
fn shard_panic_is_contained() {
    let faults = FaultPlan {
        shard_panic: Some(ShardPanicFault { shard: 1, round: 2 }),
        ..FaultPlan::none()
    };
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .faults(faults)
        .build()
        .expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    client.tick(1).expect("round 0");
    client.tick(1).expect("round 1");
    match client.tick(1) {
        Err(ServerError::Rejected { code: ErrorCode::Internal, .. }) => {}
        other => panic!("expected a typed Internal rejection, got {other:?}"),
    }
    // The connection survived the dead shard; non-tick requests still work.
    let user = UserId::new(3);
    client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe after panic");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// An injected shard panic dumps the dead shard's flight recorder to a
/// CRC-framed `flight-shard-N.rnfl` file, and the file verifies and
/// still contains the span tree of a publication traced through the
/// shard before it died.
#[test]
fn shard_panic_writes_crc_valid_flight_dump() {
    let dir = scratch_dir("flight-panic");
    let faults = FaultPlan {
        shard_panic: Some(ShardPanicFault { shard: 1, round: 2 }),
        ..FaultPlan::none()
    };
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .trace_capacity(1024)
        .flight_dir(dir.to_str().unwrap())
        .faults(faults)
        .build()
        .expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    // A user living on the doomed shard.
    let user = (0..).map(UserId::new).find(|&u| shard_of(u, 2) == 1).expect("a shard-1 user");
    client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    let mut item = trace_items().remove(0);
    item.recipient = user;
    const TRACE: u64 = 0xDEAD_BEEF_0BAD_F00D;
    client.publish_traced(Topic::FriendFeed(user), item, Some(TRACE)).expect("publish");
    client.sync().expect("sync");

    client.tick(1).expect("round 0 selects the traced publication");
    client.tick(1).expect("round 1");
    match client.tick(1) {
        Err(ServerError::Rejected { code: ErrorCode::Internal, .. }) => {}
        other => panic!("expected the injected panic, got {other:?}"),
    }

    // The dump is written on the worker's panic path, concurrently with
    // the tick error propagating back; give it a moment to land.
    let path = dir.join("flight-shard-1.rnfl");
    let mut dump = None;
    for _ in 0..100 {
        if let Ok(d) = read_flight_file(&path) {
            dump = Some(d);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let dump = dump.expect("panic must leave a CRC-valid flight file");
    assert_eq!(dump.shard, 1);
    assert_eq!(dump.reason, "shard_panic");
    let tree = dump.trees.iter().find(|t| t.trace == TRACE).expect("traced publication retained");
    assert!(tree.stage(SpanStage::Select).is_some(), "tree carries the selection span");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected checkpoint-write failures surface as typed CheckpointFailed
/// rejections, and a drain that cannot persist reopens ingest instead of
/// exiting with unpersisted state.
#[test]
fn checkpoint_write_failure_is_typed_and_drain_aborts() {
    let dir = scratch_dir("ckfail");
    let faults = FaultPlan { checkpoint_fail_every: 1, ..FaultPlan::none() };
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .checkpoint_dir(dir.to_str().unwrap())
        .faults(faults)
        .build()
        .expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    match client.checkpoint() {
        Err(ServerError::Rejected { code: ErrorCode::CheckpointFailed, .. }) => {}
        other => panic!("expected CheckpointFailed, got {other:?}"),
    }
    match client.drain() {
        Err(ServerError::Rejected { code: ErrorCode::CheckpointFailed, .. }) => {}
        other => panic!("drain without a checkpoint must abort, got {other:?}"),
    }
    // The failed drain reopened ingest: publications flow again.
    let user = UserId::new(4);
    client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    let item = trace_items().remove(0);
    client.publish(Topic::FriendFeed(user), item).expect("publish after aborted drain");
    client.sync().expect("sync");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A successful drain flushes queued work through one final round,
/// checkpoints, and exits; the checkpoint restores on the next bind.
#[test]
fn drain_checkpoints_and_restores() {
    let dir = scratch_dir("drain");
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .checkpoint_dir(dir.to_str().unwrap())
        .build()
        .expect("config");
    let (addr, handle) = Server::spawn(cfg.clone()).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");

    let items = trace_items();
    let users: BTreeSet<UserId> = items.iter().map(|i| i.recipient).collect();
    for &user in &users {
        client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    }
    for item in items.iter().take(100) {
        client.publish(Topic::FriendFeed(item.recipient), item.clone()).expect("publish");
    }
    client.sync().expect("sync");

    let (rounds, drained_users, checkpointed) = client.drain().expect("drain");
    assert!(rounds >= 1, "drain must run the final flush round");
    assert!(drained_users > 0, "the flush round must have reached users with state");
    assert!(checkpointed, "drain with a checkpoint dir must persist");
    handle.join().expect("server thread");

    let server = Server::bind(cfg).expect("rebind");
    let restored = server.restored().expect("restore after drain");
    assert_eq!(restored.users, drained_users);
    assert_eq!(restored.round, rounds);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stats snapshots survive checkpoint/restore with the documented split:
/// lifetime counters (pubs, selected, rounds, bytes) are re-seeded from
/// the checkpointed shard state, while wall-clock histograms (round and
/// stage durations) and the queue-drop counter restart from zero — a
/// restarted process has fresh clocks and a fresh queue, and pretending
/// otherwise would corrupt rate math on the scraping side.
#[test]
fn stats_counters_survive_checkpoint_restore() {
    const CUT_AT: usize = 6;
    let dir = scratch_dir("stats-restore");
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .checkpoint_dir(dir.to_str().unwrap())
        .build()
        .expect("config");
    let batches = arrival_batches(&trace_items(), cfg.round_secs);
    let users: BTreeSet<UserId> = batches.iter().flatten().map(|i| i.recipient).collect();

    // Phase 1: drive some rounds, cut a checkpoint, then crash without a
    // final checkpoint (Shutdown = crash semantics).
    let (addr, handle) = Server::spawn(cfg.clone()).expect("spawn");
    let mut client = Client::builder(addr).connect().expect("connect");
    for &user in &users {
        client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
    }
    let mut log = Log::new();
    for batch in &batches[..CUT_AT] {
        drive_round(&mut client, batch, &mut log);
    }
    client.checkpoint().expect("checkpoint");
    let before = client.stats().expect("stats before crash").snapshot;
    client.shutdown().expect("kill");
    handle.join().expect("server thread");

    let pubs = before.counter_total("richnote_pubs_total");
    let selected = before.counter_total("richnote_selected_total");
    let rounds = before.counter_total("richnote_rounds_total");
    let bytes_spent = before.counter_total("richnote_bytes_spent_total");
    assert!(pubs > 0, "the driven rounds must have ingested publications");
    assert!(selected > 0 && rounds > 0 && bytes_spent > 0);
    assert!(
        before.histogram_merged("richnote_round_duration_us").count() > 0,
        "round timing must have been observed before the crash"
    );

    // Phase 2: restart from the checkpoint; counters come back, clocks
    // do not.
    let server = Server::bind(cfg).expect("rebind");
    assert!(server.restored().is_some(), "restart must restore the checkpoint");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    let mut client = Client::builder(addr).connect().expect("reconnect");
    let after = client.stats().expect("stats after restore").snapshot;

    assert_eq!(after.counter_total("richnote_pubs_total"), pubs, "pubs_total must be restored");
    assert_eq!(after.counter_total("richnote_selected_total"), selected);
    assert_eq!(after.counter_total("richnote_rounds_total"), rounds);
    assert_eq!(after.counter_total("richnote_bytes_spent_total"), bytes_spent);
    assert_eq!(
        after.counter_total("richnote_queue_dropped_total"),
        0,
        "the rebuilt queue owns the drop counter; it must restart from zero"
    );
    assert_eq!(
        after.histogram_merged("richnote_round_duration_us").count(),
        0,
        "wall-clock histograms must restart from zero in the new process"
    );
    assert_eq!(after.histogram_merged("richnote_selection_latency_us").count(), 0);

    // The restored counters keep advancing from their seeds, not from zero.
    drive_round(&mut client, &batches[CUT_AT], &mut log);
    let resumed = client.stats().expect("stats after resumed round").snapshot;
    assert!(resumed.counter_total("richnote_rounds_total") > rounds);
    assert!(resumed.counter_total("richnote_pubs_total") >= pubs);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client speaking an older protocol version gets a typed rejection at
/// the handshake, not a hang or a silent close.
#[test]
fn proto_mismatch_is_rejected_with_a_typed_error() {
    let cfg = ServerConfig::builder().addr("127.0.0.1:0").shards(1).build().expect("config");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");

    let stream = TcpStream::connect(addr).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &Request::Hello { proto: 1, session: 0, codec: None })
        .expect("hello v1");
    match read_frame::<_, Response>(&mut reader).expect("response").expect("frame") {
        Response::Error { code: ErrorCode::ProtoMismatch, message } => {
            assert!(message.contains(&format!("v{PROTO_VERSION}")), "message names our version");
        }
        other => panic!("expected a ProtoMismatch rejection, got {other:?}"),
    }
    drop(writer);
    drop(reader);

    let mut client = Client::builder(addr).connect().expect("current-version client still welcome");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A v2 client that predates codec negotiation — its `Hello` carries no
/// `codec` field at all — must keep working against a binary-preferring
/// server: the handshake falls back to JSON framing and the whole
/// conversation (publish, ack, drain, shutdown) stays plain v2 JSON.
#[test]
fn legacy_json_v2_client_negotiates_down_and_publishes() {
    let cfg = ServerConfig::builder().addr("127.0.0.1:0").shards(1).build().expect("config");
    assert_eq!(ServerConfig::default().codec, CodecKind::Binary, "server prefers binary");
    let (addr, handle) = Server::spawn(cfg).expect("spawn");

    let stream = TcpStream::connect(addr).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Byte-for-byte what a pre-codec v2 client sends: no codec offer.
    write_frame(&mut writer, &Request::Hello { proto: PROTO_VERSION, session: 41, codec: None })
        .expect("hello");
    match read_frame::<_, Response>(&mut reader).expect("response").expect("frame") {
        Response::Hello { proto, codec, .. } => {
            assert_eq!(proto, PROTO_VERSION);
            assert_eq!(codec.as_deref(), Some("json"), "server must fall back to JSON framing");
        }
        other => panic!("expected a Hello reply, got {other:?}"),
    }

    // Every later frame still speaks the legacy JSON framing.
    let item = trace_items().into_iter().next().expect("an item");
    let user = item.recipient;
    write_frame(&mut writer, &Request::Subscribe { user, topic: Topic::FriendFeed(user) })
        .expect("subscribe");
    match read_frame::<_, Response>(&mut reader).expect("response").expect("frame") {
        Response::Subscribed => {}
        other => panic!("expected Subscribed, got {other:?}"),
    }
    write_frame(
        &mut writer,
        &Request::Publish { seq: 1, topic: Topic::FriendFeed(user), item, trace: None },
    )
    .expect("publish");
    match read_frame::<_, Response>(&mut reader).expect("response").expect("frame") {
        Response::PubAck { seq } => assert_eq!(seq, 1),
        other => panic!("expected PubAck, got {other:?}"),
    }
    // Drain stops the daemon after its reply, closing the connection.
    write_frame(&mut writer, &Request::Drain).expect("drain");
    match read_frame::<_, Response>(&mut reader).expect("response").expect("frame") {
        Response::Drained { users, .. } => assert!(users >= 1, "the publish reached a shard"),
        other => panic!("expected Drained, got {other:?}"),
    }
    drop(writer);
    drop(reader);
    handle.join().expect("server thread");
}

/// Every cell of the negotiation matrix meets at the floor of what the
/// two sides allow, and traffic flows under whichever codec won.
#[test]
fn codec_negotiation_matrix_always_meets_at_the_floor() {
    let cases = [
        (CodecKind::Binary, CodecKind::Binary, CodecKind::Binary),
        (CodecKind::Binary, CodecKind::Json, CodecKind::Json),
        (CodecKind::Json, CodecKind::Binary, CodecKind::Json),
        (CodecKind::Json, CodecKind::Json, CodecKind::Json),
    ];
    let item = trace_items().into_iter().next().expect("an item");
    for (server_cap, client_offer, expected) in cases {
        let cfg = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .shards(1)
            .codec(server_cap)
            .build()
            .expect("config");
        let (addr, handle) = Server::spawn(cfg).expect("spawn");
        let mut client = Client::builder(addr).codec(client_offer).connect().expect("connect");
        assert_eq!(
            client.codec(),
            Some(expected),
            "server {server_cap} x client {client_offer} must negotiate {expected}"
        );
        let user = item.recipient;
        client.subscribe(user, Topic::FriendFeed(user)).expect("subscribe");
        client.publish(Topic::FriendFeed(user), item.clone()).expect("publish");
        let (_, users, _) = client.drain().expect("drain");
        assert!(users >= 1, "the publish reached a shard under {expected}");
        handle.join().expect("server thread");
    }
}

/// The capture path has one encode point — canonical JSON — upstream of
/// the wire codec, so recording the same workload under JSON and binary
/// connections must produce identical frame payloads. This is what lets
/// a capture recorded today replay against any future codec lineup.
#[test]
fn captures_record_identical_frames_across_wire_codecs() {
    let dir = scratch_dir("codec-capture");
    let items: Vec<ContentItem> = trace_items().into_iter().take(16).collect();

    let mut recorded: Vec<Vec<(u64, String)>> = Vec::new();
    for codec in [CodecKind::Json, CodecKind::Binary] {
        let path = dir.join(format!("capture-{codec}.rncap"));
        let cfg = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .shards(2)
            .record(path.display().to_string())
            .build()
            .expect("config");
        let (addr, handle) = Server::spawn(cfg).expect("spawn");
        let mut client = Client::builder(addr).codec(codec).session(7).connect().expect("connect");
        assert_eq!(client.codec(), Some(codec), "offer accepted");
        for item in &items {
            client.publish(Topic::FriendFeed(item.recipient), item.clone()).expect("publish");
        }
        client.drain().expect("drain");
        handle.join().expect("server thread");

        let mut reader = CaptureReader::open(&path).expect("open capture");
        let mut frames = Vec::new();
        while let Some(rec) = reader.next_record().expect("valid record") {
            frames.push((rec.session, rec.frame));
        }
        assert!(frames.len() >= items.len(), "{codec}: every publish was captured");
        recorded.push(frames);
    }

    assert_eq!(
        recorded[0], recorded[1],
        "JSON-framed and binary-framed connections must capture identical frame payloads"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
