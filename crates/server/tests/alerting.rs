//! End-to-end tests for the self-watching plane: the alert-rule engine
//! evaluated at tick boundaries, the shard stall watchdog, the `Alerts`
//! wire request with its `/alerts` HTTP twin, the `/healthz` folding of
//! both, and the `.rnincident` forensic bundles written at detection.

use richnote_obs::frame::crc32;
use richnote_server::{
    read_incident_file, AlertRule, AlertRuleKind, AlertState, Client, FaultPlan, Server,
    ServerConfig, ShardPanicFault, SloStatus, WatchdogConfig,
};
use richnote_trace::{TraceConfig, TraceGenerator};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// One plain HTTP/1.0 GET against the scrape listener.
fn scrape(metrics: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(metrics).expect("connect scrape listener");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: richnote\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// A fresh, empty scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rn-alerting-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// A rule that fires as soon as any publication lands in the window —
/// the deterministic canary the virtual-time tests key on.
fn pubs_active_rule() -> AlertRule {
    AlertRule {
        name: "pubs_active".to_string(),
        kind: AlertRuleKind::Rate {
            family: "richnote_pubs_total".to_string(),
            labels: Vec::new(),
            window_secs: 60.0,
            per: None,
            above: 0.0,
        },
        for_secs: 0.0,
    }
}

/// Two publish-then-tick batches, so the metrics history holds two
/// samples with publications moving between them (a windowed rate needs
/// a baseline to be nonzero).
fn publish_two_rounds(client: &mut Client) {
    let items = TraceGenerator::new(TraceConfig::small(11)).generate().items;
    let (first, second) = items.split_at(items.len() / 2);
    for batch in [first, second] {
        for item in batch {
            use richnote_pubsub::Topic;
            client.subscribe(item.recipient, Topic::FriendFeed(item.recipient)).expect("subscribe");
            client.publish(Topic::FriendFeed(item.recipient), item.clone()).expect("publish");
        }
        client.sync().expect("sync");
        client.tick(1).expect("tick");
    }
}

#[test]
fn alerts_request_reports_quiet_defaults_and_the_http_route_agrees() {
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .metrics_addr("127.0.0.1:0")
        .build()
        .expect("config");
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics_local_addr().expect("metrics listener");
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    let mut client = Client::builder(addr).connect().expect("connect");

    let reply = client.alerts().expect("alerts");
    let names: Vec<&str> = reply.alerts.iter().map(|a| a.rule.as_str()).collect();
    assert_eq!(names, ["shed_rate", "ack_p99", "queue_contention"]);
    assert_eq!(reply.firing, 0);
    assert_eq!(reply.pending, 0);
    assert!(reply.timeline.is_empty(), "no transitions on an idle daemon: {:?}", reply.timeline);
    assert!(reply.watchdog.is_empty(), "all shards healthy: {:?}", reply.watchdog);
    assert_eq!(reply.last_incident, None);
    for a in &reply.alerts {
        assert_eq!(a.state, AlertState::Inactive);
    }

    let response = scrape(metrics, "/alerts");
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "unexpected status in {head:?}");
    assert!(head.contains("application/json"), "alerts must answer JSON");
    for rule in ["shed_rate", "ack_p99", "queue_contention"] {
        assert!(body.contains(rule), "rule {rule} missing from {body}");
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// The virtual-time pin: alert transitions happen at `rounds ×
/// round_secs`, carry the windowed rate as evidence, degrade `/healthz`,
/// write a verifiable incident bundle — and two identical runs produce
/// byte-identical timelines.
#[test]
fn a_firing_alert_is_deterministic_and_writes_a_verifiable_bundle() {
    let run = |tag: &str| -> (String, PathBuf) {
        let dir = scratch_dir(tag);
        let cfg = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .shards(2)
            .metrics_addr("127.0.0.1:0")
            .alert_rules(vec![pubs_active_rule()])
            .incident_dir(dir.display().to_string())
            .build()
            .expect("config");
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr();
        let metrics = server.metrics_local_addr().expect("metrics listener");
        let handle = std::thread::spawn(move || {
            let _ = server.run();
        });
        let mut client = Client::builder(addr).connect().expect("connect");
        publish_two_rounds(&mut client);

        let reply = client.alerts().expect("alerts");
        assert_eq!(reply.firing, 1, "pubs_active must fire: {:?}", reply.alerts);
        let fired: Vec<_> = reply.timeline.iter().filter(|e| e.to == AlertState::Firing).collect();
        assert_eq!(fired.len(), 1, "exactly one firing transition: {:?}", reply.timeline);
        // Virtual time: the transition lands exactly on a tick boundary
        // (round 1 of 3600 s rounds — the startup baseline sample gives
        // the window its zero point), never on a wallclock instant.
        assert_eq!(fired[0].at_secs, 3_600.0, "transition off the round clock");
        assert!(fired[0].value.unwrap_or(0.0) > 0.0, "evidence value missing");

        // A firing alert degrades health without taking the daemon out
        // of rotation: /healthz stays 200.
        let report = client.health().expect("health");
        assert_eq!(report.status, SloStatus::Degraded);
        assert_eq!(report.alerts_firing, 1);
        let response = scrape(metrics, "/healthz");
        let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
        assert!(head.starts_with("HTTP/1.0 200 OK"), "degraded still serves: {head:?}");
        assert!(body.contains("\"alerts_firing\":1"), "fold missing from {body}");

        let incident = reply.last_incident.clone().expect("incident path recorded");
        assert!(incident.contains("alert-pubs_active"), "unexpected name {incident}");
        let timeline = serde_json::to_string(&reply.timeline).expect("serialize timeline");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        (timeline, PathBuf::from(incident))
    };

    let (timeline_a, bundle_a) = run("det-a");
    let (timeline_b, _) = run("det-b");
    assert_eq!(timeline_a, timeline_b, "same workload, same seed, different timelines");

    // The bundle survives its writer and verifies end to end.
    let bundle = read_incident_file(&bundle_a).expect("read bundle");
    assert_eq!(bundle.meta.trigger, "alert:pubs_active");
    assert!(bundle.meta.reason.contains("pubs_active"), "reason: {}", bundle.meta.reason);
    for section in ["config", "registry", "slos", "alerts", "watchdog", "history", "flights"] {
        assert!(bundle.section(section).is_some(), "bundle missing section {section}");
    }

    // The offline reader agrees: verification passes (exit 0), and a
    // tampered copy is rejected (exit 2) even with its CRC re-stamped.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_richnote-incident"))
        .args(["print", &bundle_a.display().to_string()])
        .output()
        .expect("run richnote-incident");
    assert!(out.status.success(), "print failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alert:pubs_active"), "trigger missing from output: {text}");

    let tampered = bundle_a.with_extension("tampered.rnincident");
    let mut blob = std::fs::read(&bundle_a).expect("read bundle bytes");
    let magic = richnote_server::INCIDENT_MAGIC.len();
    let len = u32::from_le_bytes(blob[magic..magic + 4].try_into().unwrap()) as usize;
    let body = magic + 8;
    blob[body + len / 2] ^= 0x01;
    let fixed = crc32(&blob[body..body + len]);
    blob[magic + 4..magic + 8].copy_from_slice(&fixed.to_le_bytes());
    std::fs::write(&tampered, &blob).expect("write tampered copy");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_richnote-incident"))
        .args(["print", &tampered.display().to_string()])
        .output()
        .expect("run richnote-incident");
    assert_eq!(out.status.code(), Some(2), "tampered bundle must be rejected");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("chain mismatch"),
        "expected the seal to catch it: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(bundle_a.parent().unwrap());
}

/// The watchdog pin: a shard that dies mid-run reads `degraded`
/// immediately (shard liveness), then escalates to `violating` once it
/// has been wedged past the stall budget — and the trip itself writes a
/// readable forensic bundle.
#[test]
fn a_wedged_shard_escalates_healthz_to_violating_after_the_stall_budget() {
    let dir = scratch_dir("wedged");
    let faults = FaultPlan {
        shard_panic: Some(ShardPanicFault { shard: 1, round: 1 }),
        ..FaultPlan::none()
    };
    let cfg = ServerConfig::builder()
        .addr("127.0.0.1:0")
        .shards(2)
        .metrics_addr("127.0.0.1:0")
        .faults(faults)
        .watchdog(WatchdogConfig { stall_secs: 0.2, ..WatchdogConfig::default() })
        .incident_dir(dir.display().to_string())
        .build()
        .expect("config");
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics_local_addr().expect("metrics listener");
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    let mut client = Client::builder(addr).connect().expect("connect");

    let response = scrape(metrics, "/healthz");
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "healthy start: {head:?}");
    assert!(body.contains("\"status\":\"ok\""), "healthy verdict expected in {body}");

    // Round 0 is fine; the worker panics entering round 1.
    client.tick(1).expect("round 0");
    let _ = client.tick(1);

    // Give the wedge time to outlive the (tiny) stall budget, then the
    // watchdog escalates: 503, violating, and a verdict naming the shard.
    std::thread::sleep(Duration::from_millis(400));
    let response = scrape(metrics, "/healthz");
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
    assert!(head.starts_with("HTTP/1.0 503"), "a wedged shard is a violation: {head:?}");
    assert!(body.contains("\"status\":\"violating\""), "expected violating in {body}");
    assert!(body.contains("\"wedged\""), "verdict missing from {body}");

    let reply = client.alerts().expect("alerts");
    assert_eq!(reply.watchdog.len(), 1, "one shard in trouble: {:?}", reply.watchdog);
    assert_eq!(reply.watchdog[0].shard, 1);
    assert_eq!(reply.watchdog[0].problem, "wedged");
    let incident = reply.last_incident.clone().expect("watchdog trip writes a bundle");
    let bundle = read_incident_file(PathBuf::from(&incident).as_path()).expect("read bundle");
    assert_eq!(bundle.meta.trigger, "watchdog:shard-1:wedged");
    assert!(bundle.meta.reason.contains("shard 1 wedged"), "reason: {}", bundle.meta.reason);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
